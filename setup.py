"""Legacy-install shim.

The execution environment has setuptools < 70 and no `wheel` package, so
PEP 660 editable installs (which need bdist_wheel) fail.  This shim lets
`pip install -e . --no-build-isolation` fall back to the classic
`setup.py develop` code path.  All project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
