"""E11 — engine ablation: fixpoint vs literal Theorem 3.4 vs baseline.

The paper proves decidability through the zero-set enumeration of
Theorem 3.4 (exponential in the number of class unknowns) and notes
"there are many possible criteria for decreasing the complexity of the
method".  This benchmark quantifies one: the maximal-support fixpoint
engine decides the same questions with polynomially many LP calls per
expansion.  The Lenzerini–Nobili baseline [15] is included on an
ISA-free projection as the historical reference point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import paper_row
from repro.cr.baseline import baseline_satisfiable_classes
from repro.cr.builder import SchemaBuilder
from repro.cr.satisfiability import is_class_satisfiable
from repro.paper import meeting_schema, refined_meeting_schema


@pytest.mark.parametrize("engine", ["fixpoint", "naive"])
def test_meeting_satisfiable_case(benchmark, meeting, engine):
    result = benchmark(is_class_satisfiable, meeting, "Speaker", engine)
    assert result.satisfiable


@pytest.mark.parametrize("engine", ["fixpoint", "naive"])
def test_meeting_unsatisfiable_case(benchmark, refined_meeting, engine):
    """Unsatisfiable inputs are the naive engine's worst case: every
    zero-set must be refuted."""
    result = benchmark(is_class_satisfiable, refined_meeting, "Speaker", engine)
    assert not result.satisfiable


def test_engines_agree_on_both_paper_schemas(benchmark):
    def agreement():
        verdicts = []
        for schema in (meeting_schema(), refined_meeting_schema()):
            fixpoint = is_class_satisfiable(schema, "Speaker", engine="fixpoint")
            naive = is_class_satisfiable(schema, "Speaker", engine="naive")
            verdicts.append((fixpoint.satisfiable, naive.satisfiable))
        return verdicts

    verdicts = benchmark(agreement)
    assert verdicts == [(True, True), (False, False)]
    paper_row(
        "E11/agreement",
        "Theorem 3.4 and the fixpoint engine decide the same problem",
        "verdicts agree on the meeting schema and its Sec-3.3 refinement",
    )


def isa_free_meeting():
    """The meeting schema with the ISA (and hence the refinement)
    dropped — the fragment [15] can handle."""
    return (
        SchemaBuilder("FlatMeeting")
        .classes("Speaker", "Discussant", "Talk")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .relationship("Participates", U3="Discussant", U4="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .card("Discussant", "Participates", "U3", minc=1, maxc=1)
        .card("Talk", "Participates", "U4", minc=1)
        .build()
    )


def test_lenzerini_nobili_baseline(benchmark):
    schema = isa_free_meeting()
    verdicts = benchmark(baseline_satisfiable_classes, schema)
    assert all(verdicts.values())
    paper_row(
        "E11/baseline",
        "[15] decides the ISA-free fragment with one unknown per symbol",
        f"baseline verdicts: {verdicts}",
    )


def test_full_procedure_on_the_isa_free_projection(benchmark):
    from repro.cr.satisfiability import satisfiable_classes

    schema = isa_free_meeting()
    verdicts = benchmark(satisfiable_classes, schema)
    assert verdicts == baseline_satisfiable_classes(schema)
