"""E6 — Section 3.3's negative example.

Paper content: adding ``minc(Discussant, Holds, U1) = 2`` ("each
speaker that is allowed to participate in a discussion must hold at
least two talks") contributes the disequations
``2·c_i ≤ h_i3 + h_i5 + h_i7`` for ``i ∈ {4, 7}``, and the system
(with the Speaker-positivity row) becomes unsolvable.

Reproduction: the generated system contains exactly those strengthened
rows, and every class of the refined schema is reported unsatisfiable.
The benchmark measures unsatisfiability detection, which exercises the
full fixpoint (supports shrink to the empty set).
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.expansion import Expansion
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.cr.system import build_system


def test_strengthened_rows_present(benchmark, refined_meeting):
    cr_system = benchmark(
        lambda: build_system(Expansion(refined_meeting), mode="pruned")
    )
    rendered = {c.pretty() for c in cr_system.system.constraints}
    assert "2*c4 <= h43 + h45 + h47" in rendered
    assert "2*c7 <= h73 + h75 + h77" in rendered
    paper_row(
        "E6/Sec3.3",
        "the refinement adds 2*ci <= hi3 + hi5 + hi7 for i in {4,7}",
        "both rows present in the generated system",
    )


def test_speaker_becomes_unsatisfiable(benchmark, refined_meeting):
    result = benchmark(is_class_satisfiable, refined_meeting, "Speaker")
    assert not result.satisfiable
    paper_row(
        "E6/Sec3.3",
        "the system with c1 + c4 + c5 + c7 > 0 becomes unsolvable",
        "Speaker reported finitely unsatisfiable",
    )


def test_whole_schema_collapses(benchmark, refined_meeting):
    verdicts = benchmark(satisfiable_classes, refined_meeting)
    assert verdicts == {"Speaker": False, "Discussant": False, "Talk": False}
