"""E13 — cached reasoning sessions: cold vs. warm query latency.

Paper context: the Section-3.1 expansion is exponential in the class
set, and the stateless API pays it on *every* query.  The session layer
(:mod:`repro.session`) builds it once per schema fingerprint and
answers every further satisfiability/implication query from the cached
maximal acceptable support.

This module is both a pytest-benchmark suite (``pytest
benchmarks/bench_session.py --benchmark-only``) and a standalone runner
that emits the repo's perf-trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_session.py --quick \
        --output BENCH_session.json

The report records, per workload (the paper's Figures 1–7 schemas plus
synthetic ISA chains and antichains): cold-batch total (a fresh session
per query — what the stateless API does), warm-batch total (one shared
session), the speedup, expansion builds performed either way, and the
pruned enumeration's search-node counts.  ``validate_report`` is the
schema check CI runs against the emitted JSON.
"""

from __future__ import annotations

import sys
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import IsaStatement
from repro.cr.expansion import Expansion
from repro.cr.schema import CRSchema
from repro.paper import (
    figure1_schema,
    figure7_queries,
    meeting_schema,
    refined_meeting_schema,
)
from repro.session import ReasoningSession, SessionCache

BATCH_SIZE = 50
"""Queries per workload batch (the ISSUE-2 acceptance scenario)."""


def chain_schema(k: int) -> CRSchema:
    """``K(k-1) ≼ ... ≼ K0`` — the expansion stays linear."""
    builder = SchemaBuilder(f"Chain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    for i in range(1, k):
        builder.isa(f"K{i}", f"K{i-1}")
    builder.relationship("R", U1="K0", U2="K0")
    builder.card("K0", "R", "U1", minc=1)
    return builder.build()


def antichain_schema(k: int) -> CRSchema:
    """``k`` ISA-unrelated classes — the expansion is ``2^k - 1``."""
    builder = SchemaBuilder(f"Antichain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    builder.relationship("R", U1="K0", U2="K0")
    builder.card("K0", "R", "U1", minc=1)
    return builder.build()


def batch_queries(schema: CRSchema, size: int = BATCH_SIZE) -> list:
    """A deterministic mixed batch: per-class satisfiability plus ISA
    implication pairs, cycled to ``size`` queries."""
    base: list = [("sat", cls) for cls in schema.classes]
    classes = schema.classes
    for sub in classes[:4]:
        for sup in classes[:4]:
            if sub != sup:
                base.append(("implies", IsaStatement(sub, sup)))
    return [base[i % len(base)] for i in range(size)]


def _answer(session: ReasoningSession, query) -> None:
    kind, payload = query
    if kind == "sat":
        session.is_class_satisfiable(payload)
    else:
        session.implies(payload)


def run_workload(label: str, schema: CRSchema, size: int = BATCH_SIZE) -> dict:
    """Cold-batch vs. warm-batch totals for one schema."""
    queries = batch_queries(schema, size)

    cold_builds_before = Expansion.build_count
    cold_start = time.perf_counter()
    for query in queries:
        _answer(ReasoningSession(schema, cache=SessionCache()), query)
    cold_total = time.perf_counter() - cold_start
    cold_builds = Expansion.build_count - cold_builds_before

    session = ReasoningSession(schema)
    _answer(session, queries[0])  # prime the cache entry
    warm_builds_before = Expansion.build_count
    warm_start = time.perf_counter()
    for query in queries:
        _answer(session, query)
    warm_total = time.perf_counter() - warm_start
    warm_builds = Expansion.build_count - warm_builds_before

    expansion = session.cache.artifacts(schema, session.fingerprint).expansion
    summary = expansion.size_summary()
    return {
        "workload": label,
        "schema": schema.name,
        "classes": summary["classes"],
        "queries": len(queries),
        "cold_total_s": cold_total,
        "warm_total_s": warm_total,
        "speedup": cold_total / warm_total if warm_total > 0 else float("inf"),
        "cold_expansion_builds": cold_builds,
        "warm_expansion_builds": warm_builds,
        "all_compound_classes": summary["all_compound_classes"],
        "consistent_compound_classes": summary["consistent_compound_classes"],
        "expansion_nodes_visited": summary["expansion_nodes_visited"],
    }


def workloads(quick: bool) -> list[tuple[str, CRSchema]]:
    entries: list[tuple[str, CRSchema]] = [
        ("figure1", figure1_schema()),
        ("figures3-5:meeting", meeting_schema()),
        ("figure6:refined-meeting", refined_meeting_schema()),
    ]
    chain_sizes = (8, 16) if quick else (8, 16, 32, 64)
    antichain_sizes = (4, 6) if quick else (4, 6, 8)
    entries.extend(
        (f"synthetic:chain{k}", chain_schema(k)) for k in chain_sizes
    )
    entries.extend(
        (f"synthetic:antichain{k}", antichain_schema(k))
        for k in antichain_sizes
    )
    return entries


def run_benchmarks(quick: bool = False, size: int = BATCH_SIZE) -> dict:
    entries = [
        run_workload(label, schema, size)
        for label, schema in workloads(quick)
    ]
    # Figure-7 implication batch against the warm meeting session.
    meeting = meeting_schema()
    session = ReasoningSession(meeting)
    session.satisfiable_classes()
    start = time.perf_counter()
    results = session.implies_all(figure7_queries())
    figure7_total = time.perf_counter() - start
    speedups = [entry["speedup"] for entry in entries]
    return {
        "benchmark": "session",
        "version": 1,
        "quick": quick,
        "batch_size": size,
        "entries": entries,
        "figure7": {
            "queries": len(results),
            "implied": sum(1 for r in results if r.implied),
            "warm_total_s": figure7_total,
        },
        "summary": {
            "workloads": len(entries),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "schema": str,
    "classes": int,
    "queries": int,
    "cold_total_s": float,
    "warm_total_s": float,
    "speedup": float,
    "cold_expansion_builds": int,
    "warm_expansion_builds": int,
    "all_compound_classes": int,
    "consistent_compound_classes": int,
    "expansion_nodes_visited": int,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_session.json payload; returns the report for chaining."""
    entries = check_report_shape(report, "session")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if entry["warm_expansion_builds"] != 0:
            raise ValueError(
                f"entry {entry.get('workload')!r}: warm batch rebuilt the "
                f"expansion {entry['warm_expansion_builds']} time(s)"
            )
        if entry["cold_expansion_builds"] < entry["queries"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: cold batch should build "
                "at least one expansion per query"
            )
    summary = check_summary(report)
    if not isinstance(summary.get("min_speedup"), float):
        raise ValueError("summary.min_speedup must be a float")
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_warm_batch_is_faster_and_buildless(benchmark):
    from benchmarks.conftest import paper_row

    schema = meeting_schema()
    session = ReasoningSession(schema)
    queries = batch_queries(schema)
    for query in queries:
        _answer(session, query)
    builds_before = Expansion.build_count

    def warm_batch():
        for query in queries:
            _answer(session, query)

    benchmark(warm_batch)
    assert Expansion.build_count == builds_before
    paper_row(
        "E13/session",
        "one expansion build amortised over the whole batch",
        f"{len(queries)} warm queries, 0 expansion rebuilds",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
    )
    validate_report(report)
    assert report["summary"]["min_speedup"] > 1.0


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description="cold vs warm session benchmark; emits BENCH_session.json",
        default_output="BENCH_session.json",
        quick_help="smaller synthetic sizes (CI)",
        add_arguments=lambda parser: parser.add_argument(
            "--batch-size", type=int, default=BATCH_SIZE, metavar="N"
        ),
        run=lambda args: run_benchmarks(
            quick=args.quick, size=args.batch_size
        ),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<24} cold {entry['cold_total_s']*1e3:9.1f} ms"
            f"  warm {entry['warm_total_s']*1e3:8.1f} ms"
            f"  speedup {entry['speedup']:7.1f}x"
            f"  nodes {entry['expansion_nodes_visited']}"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads, "
            f"speedup {report['summary']['min_speedup']:.1f}x–"
            f"{report['summary']['max_speedup']:.1f}x"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
