"""E8 — the complexity claim of Section 3.3.

Paper claim: "our method can be turned into an algorithm running in
exponential time with respect to the size of the schema", and the
problem is "polynomially intractable" — the expansion is the
exponential step.

Reproduction: on a family of schemas with ``k`` mutually unrelated
classes all usable in one relationship role, the number of consistent
compound classes is exactly ``2^k − 1`` and the end-to-end
satisfiability time grows accordingly; with an ISA *chain* instead, the
consistent compound classes grow only linearly (``k`` upward-closed
sets) — locating the blow-up precisely where the paper puts it
(overlapping, ISA-unrelated classes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import paper_row
from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.satisfiability import is_class_satisfiable


def antichain_schema(k: int):
    """k ISA-unrelated classes, one shared relationship."""
    builder = SchemaBuilder(f"Antichain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    builder.relationship("R", U1="K0", U2="K0")
    builder.card("K0", "R", "U1", minc=1)
    return builder.build()


def chain_schema(k: int):
    """K(k-1) <= ... <= K0, one shared relationship."""
    builder = SchemaBuilder(f"Chain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    for i in range(1, k):
        builder.isa(f"K{i}", f"K{i-1}")
    builder.relationship("R", U1="K0", U2="K0")
    builder.card("K0", "R", "U1", minc=1)
    return builder.build()


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
def test_antichain_expansion_grows_exponentially(benchmark, k):
    schema = antichain_schema(k)
    expansion = benchmark(Expansion, schema)
    count = len(expansion.consistent_compound_classes())
    assert count == 2**k - 1
    paper_row(
        "E8/antichain",
        "exponential expansion in the schema size",
        f"k={k}: {count} consistent compound classes (= 2^{k} - 1)",
    )


@pytest.mark.parametrize("k", [2, 4, 6, 8, 10])
def test_chain_expansion_grows_linearly(benchmark, k):
    schema = chain_schema(k)
    expansion = benchmark(Expansion, schema)
    count = len(expansion.consistent_compound_classes())
    assert count == k
    paper_row(
        "E8/chain",
        "ISA chains keep the consistent expansion linear",
        f"k={k}: {count} consistent compound classes",
    )


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_antichain_satisfiability_end_to_end(benchmark, k):
    schema = antichain_schema(k)
    result = benchmark(is_class_satisfiable, schema, "K0")
    assert result.satisfiable


@pytest.mark.parametrize("k", [2, 4, 6])
def test_chain_satisfiability_end_to_end(benchmark, k):
    schema = chain_schema(k)
    result = benchmark(is_class_satisfiable, schema, f"K{k-1}")
    assert result.satisfiable
