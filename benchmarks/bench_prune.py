"""E18 — pruned zero-set search: orbit reduction and Farkas nogoods.

Paper context: Theorem 3.4 decides acceptability by walking the
``2^n`` zero-set lattice, and the paper remarks that "there are many
possible criteria for decreasing the complexity of the method".  The
``pruned`` backend (:mod:`repro.solver.pruned`) implements two such
criteria on top of the literal walk: exactly-verified column
automorphisms collapse symmetric candidates to orbit representatives,
and a Farkas certificate extracted from each refuted candidate is
generalised to a nogood that eliminates later ones.  The contract is
byte-identity with the naive engine — verdict, integer witness, and
support — with only the LP count allowed to differ.

Workload family: a root class ``T`` forced empty by ``2|T| = |R| =
|T|`` over a self-relationship, plus ``k`` interchangeable sibling
classes hanging off it (guaranteed non-trivial orbits); a root-side
variant adds ``(0, 2)`` cardinalities on ``T``'s side of each sibling
relationship (more LP rows, same symmetry); a satisfiable variant
relaxes the conflict to ``(1, 2)`` so parity is also exercised on the
witness-producing path.

Acceptance bars (hard-checked by :func:`validate_report`, re-run by
CI's bench-smoke against the emitted artifact): on every unsatisfiable
symmetric workload the pruned engine must enumerate at least
:data:`REDUCTION_BAR` times fewer zero-sets than the naive walk *and*
win wall-clock; every workload must agree on verdict and witness, and
the two-worker pool must reproduce the serial pruned answer
byte-for-byte.

Standalone runner (what CI's bench-smoke invokes)::

    PYTHONPATH=src python benchmarks/bench_prune.py --quick \
        --output BENCH_prune.json
"""

from __future__ import annotations

import sys
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.satisfiability import class_targets, decision_problem
from repro.cr.system import build_system
from repro.runtime.fallback import DEFAULT_FALLBACK, chain_for
from repro.solver.registry import get_backend
from repro.solver.stats import SearchCounters, search_stats_sink

REPEATS = 3
"""Timed repetitions per engine; the minimum is reported."""

REDUCTION_BAR = 5.0
"""Acceptance bar: zero-sets enumerated by the naive walk over those
the pruned search pays for, on the unsatisfiable symmetric family."""

SPEEDUP_BAR = 1.0
"""Acceptance bar: the pruned engine must also *win wall-clock* on the
unsatisfiable family — pruning that trades LPs for slower bookkeeping
does not count."""


def sibling_schema(
    siblings: int,
    root_umax: int = 2,
    root_side: bool = False,
    disjoint: bool = False,
):
    """The symmetric family: root ``T`` with a self-relationship ``R``
    under ``Card(T,R,u) = (2, root_umax)`` and ``Card(T,R,v) = (1,1)``
    (unsatisfiable iff ``root_umax == 2``), plus ``siblings``
    interchangeable classes each tied to ``T`` by its own relationship.

    ``root_side`` adds a ``(0, 2)`` cardinality on ``T``'s side of each
    sibling relationship; ``disjoint`` declares the siblings pairwise
    disjoint, which caps the expansion at seven consistent compounds
    and keeps the naive side affordable for ``siblings >= 3``.
    """
    builder = SchemaBuilder(f"Siblings{siblings}")
    builder.cls("T")
    names = [f"A{i}" for i in range(1, siblings + 1)]
    for name in names:
        builder.cls(name)
    builder.relationship("R", u="T", v="T")
    builder.card("T", "R", "u", 2, root_umax)
    builder.card("T", "R", "v", 1, 1)
    for i, name in enumerate(names, start=1):
        builder.relationship(f"R{i}", **{f"x{i}": name, f"y{i}": "T"})
        builder.card(name, f"R{i}", f"x{i}", 1, 2)
        if root_side:
            builder.card("T", f"R{i}", f"y{i}", 0, 2)
    if disjoint:
        builder.disjoint(*names)
    return builder.build()


def _problem(schema):
    cr_system = build_system(Expansion(schema), mode="pruned")
    return decision_problem(cr_system, class_targets(cr_system, "T"))


def _run_engine(problem, engine: str, jobs: int = 1):
    """One counted run plus ``REPEATS`` timed ones; returns the result
    tuple, the fold of the counted run's search stats, and the best
    wall-clock."""
    chain = chain_for(DEFAULT_FALLBACK)
    backend = get_backend(engine)
    counters = SearchCounters()
    with search_stats_sink(counters):
        result = backend.decide_acceptable(problem, chain=chain, jobs=jobs)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        backend.decide_acceptable(problem, chain=chain, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return result, counters, best


def run_workload(
    workload: str,
    kind: str,
    siblings: int,
    root_side: bool = False,
    satisfiable: bool = False,
    check_jobs: bool = False,
) -> dict:
    schema = sibling_schema(
        siblings,
        root_umax=3 if satisfiable else 2,
        root_side=root_side,
        disjoint=siblings >= 3,
    )
    problem = _problem(schema)
    naive_result, naive_counters, naive_s = _run_engine(problem, "naive")
    pruned_result, pruned_counters, pruned_s = _run_engine(problem, "pruned")
    jobs_identical = True
    if check_jobs:
        pooled_result, _, _ = _run_engine(problem, "pruned", jobs=2)
        jobs_identical = repr(pooled_result) == repr(pruned_result)
    pruned_enumerated = pruned_counters.zero_sets_enumerated
    return {
        "workload": workload,
        "kind": kind,
        "siblings": siblings,
        "classes": len(schema.classes),
        "unknowns": len(problem.class_unknowns),
        "naive_s": naive_s,
        "pruned_s": pruned_s,
        "speedup": naive_s / pruned_s if pruned_s > 0 else 0.0,
        "verdicts_agree": bool(naive_result[0] == pruned_result[0]),
        "witnesses_identical": repr(naive_result) == repr(pruned_result),
        "jobs_identical": jobs_identical,
        "naive_enumerated": naive_counters.zero_sets_enumerated,
        "pruned_enumerated": pruned_enumerated,
        "enumeration_reduction": (
            naive_counters.zero_sets_enumerated / pruned_enumerated
            if pruned_enumerated > 0
            else 0.0
        ),
        "pruned_by_orbit": pruned_counters.pruned_by_orbit,
        "pruned_by_nogood": pruned_counters.pruned_by_nogood,
        "orbits_found": pruned_counters.orbits_found,
    }


def run_benchmarks(quick: bool = False) -> dict:
    entries = [
        run_workload("conflict-2", "unsat-conflict", 2, check_jobs=True),
        run_workload("rootside-2", "unsat-conflict", 2, root_side=True),
        run_workload("benign-2", "sat-parity", 2, satisfiable=True),
    ]
    if not quick:
        entries.append(run_workload("conflict-3", "unsat-conflict", 3))
    gated = [e for e in entries if e["kind"] == "unsat-conflict"]
    return {
        "benchmark": "prune",
        "version": 1,
        "quick": quick,
        "reduction_bar": REDUCTION_BAR,
        "speedup_bar": SPEEDUP_BAR,
        "entries": entries,
        "summary": {
            "workloads": len(entries),
            "min_reduction": min(e["enumeration_reduction"] for e in gated),
            "min_speedup": min(e["speedup"] for e in gated),
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "kind": str,
    "siblings": int,
    "classes": int,
    "unknowns": int,
    "naive_s": float,
    "pruned_s": float,
    "speedup": float,
    "verdicts_agree": bool,
    "witnesses_identical": bool,
    "jobs_identical": bool,
    "naive_enumerated": int,
    "pruned_enumerated": int,
    "enumeration_reduction": float,
    "pruned_by_orbit": int,
    "pruned_by_nogood": int,
    "orbits_found": int,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_prune.json payload; returns the report for chaining."""
    entries = check_report_shape(report, "prune")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        label = entry.get("workload")
        for claim in ("verdicts_agree", "witnesses_identical",
                      "jobs_identical"):
            if not entry[claim]:
                raise ValueError(
                    f"entry {label!r}: parity violated ({claim} is false)"
                )
        if entry["kind"] == "unsat-conflict":
            if entry["pruned_by_orbit"] + entry["pruned_by_nogood"] <= 0:
                raise ValueError(
                    f"entry {label!r}: neither pruning lever fired on a "
                    "symmetric unsatisfiable workload"
                )
            if entry["orbits_found"] <= 0:
                raise ValueError(
                    f"entry {label!r}: interchangeable siblings must "
                    "yield at least one non-trivial orbit"
                )
            if entry["enumeration_reduction"] < REDUCTION_BAR:
                raise ValueError(
                    f"entry {label!r}: enumeration reduction "
                    f"{entry['enumeration_reduction']:.1f}x is below "
                    f"the {REDUCTION_BAR:.0f}x bar"
                )
            if entry["speedup"] < SPEEDUP_BAR:
                raise ValueError(
                    f"entry {label!r}: pruned engine lost wall-clock "
                    f"({entry['speedup']:.2f}x vs the naive walk)"
                )
    summary = check_summary(report)
    for key in ("min_reduction", "min_speedup"):
        if not isinstance(summary.get(key), float):
            raise ValueError(f"summary.{key} must be a float")
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_pruned_beats_naive_on_the_conflict_family(benchmark):
    from benchmarks.conftest import paper_row

    entry = benchmark.pedantic(
        run_workload,
        args=("conflict-2", "unsat-conflict", 2),
        rounds=1,
        iterations=1,
    )
    assert entry["verdicts_agree"] and entry["witnesses_identical"]
    assert entry["enumeration_reduction"] >= REDUCTION_BAR
    paper_row(
        "E18/prune",
        "orbit + nogood pruning shrink the Theorem-3.4 lattice walk",
        f"{entry['naive_enumerated']} -> {entry['pruned_enumerated']} "
        f"zero-sets ({entry['enumeration_reduction']:.1f}x), "
        f"wall-clock {entry['speedup']:.1f}x",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
    )
    validate_report(report)
    assert report["summary"]["min_reduction"] >= REDUCTION_BAR


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description=(
            "pruned vs naive zero-set search on the symmetric sibling "
            "family; emits BENCH_prune.json"
        ),
        default_output="BENCH_prune.json",
        quick_help="skip the three-sibling workload (CI)",
        run=lambda args: run_benchmarks(quick=args.quick),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<12} {entry['kind']:<15}"
            f" naive {entry['naive_s']*1e3:8.1f} ms"
            f" /{entry['naive_enumerated']:4d} sets"
            f"  pruned {entry['pruned_s']*1e3:8.1f} ms"
            f" /{entry['pruned_enumerated']:4d} sets"
            f"  speedup {entry['speedup']:5.1f}x"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads, "
            f"enumeration reduction >= "
            f"{report['summary']['min_reduction']:.1f}x "
            f"(bar: {REDUCTION_BAR:.0f}x), wall-clock >= "
            f"{report['summary']['min_speedup']:.2f}x "
            f"(bar: {SPEEDUP_BAR:.1f}x)"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
