"""E4 — Figure 5: the disequation system of the meeting schema.

Paper content: unknowns ``c1..c7``, ``h11..h77``, ``p11..p77`` and five
groups of disequations (zero rows for inconsistent unknowns, lifted
minc rows, lifted maxc rows, non-negativity).

Reproduction: the literal-mode generator produces exactly those
unknowns and rows; representative rows are compared verbatim.  The
benchmark measures system generation in both modes.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.system import build_system
from repro.render import render_system


def test_literal_system_generation(benchmark, meeting_expansion):
    cr_system = benchmark(build_system, meeting_expansion, "literal")
    assert len(cr_system.class_var) == 7
    assert len(cr_system.rel_var) == 98
    paper_row(
        "E4/Figure5",
        "unknowns c1..c7, hij, pij (1 <= i,j <= 7)",
        f"{len(cr_system.class_var)} class + {len(cr_system.rel_var)} "
        "relationship unknowns",
    )


def test_pruned_system_generation(benchmark, meeting_expansion):
    cr_system = benchmark(build_system, meeting_expansion, "pruned")
    assert len(cr_system.system.variables) == 23  # 5 + 18


def test_figure5_rows_verbatim(benchmark, meeting_expansion):
    cr_system = build_system(meeting_expansion, mode="literal")
    rendered = benchmark(
        lambda: {c.pretty() for c in cr_system.system.constraints}
    )
    expected_rows = [
        "c2 == 0",
        "c6 == 0",
        # minc rows: ci <= hi3 + hi5 + hi7 for i in {1,4,5,7}
        "c1 <= h13 + h15 + h17",
        "c4 <= h43 + h45 + h47",
        "c5 <= h53 + h55 + h57",
        "c7 <= h73 + h75 + h77",
        # maxc rows: 2*ci >= ... for i in {4,7}
        "2*c4 >= h43 + h45 + h47",
        "2*c7 >= h73 + h75 + h77",
        # role U2: cj <= h1j + h4j + h5j + h7j and equality via >= rows
        "c3 <= h13 + h43 + h53 + h73",
        "c3 >= h13 + h43 + h53 + h73",
        # Participates: ci <= pi3 + pi5 + pi7, i in {4,7}, with equality
        "c4 <= p43 + p45 + p47",
        "c4 >= p43 + p45 + p47",
        # role U4: cj <= p4j + p7j
        "c3 <= p43 + p73",
    ]
    for row in expected_rows:
        assert row in rendered, f"Figure 5 row missing: {row}"
    paper_row(
        "E4/Figure5-rows",
        "the disequations listed in Figure 5",
        f"{len(expected_rows)} representative rows matched verbatim "
        f"({len(cr_system.system)} rows total)",
    )


def test_figure5_text_regenerates(benchmark, meeting_expansion):
    cr_system = build_system(meeting_expansion, mode="literal")
    text = benchmark(render_system, cr_system)
    assert "lifted minc disequations" in text
    print("\n" + text)
