"""E2 — Figures 2 and 3: the meeting schema, built two ways.

Paper claim: the CR-diagram of Figure 2 corresponds to the CR-schema of
Figure 3 (classes, relationships, ISA, cardinalities including the
dashed refinement), and the schema is a sensible design — every class
can be populated.

Reproduction: the ER front-end translation and the direct Figure-3
construction produce identical schemas; the Figure-3 listing is
regenerated; all three classes are satisfiable.  Benchmarks measure
schema construction, ER translation and the per-class satisfiability
sweep.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.satisfiability import satisfiable_classes
from repro.er import er_to_cr
from repro.paper import meeting_er, meeting_schema
from repro.render import render_schema


def test_schema_construction(benchmark):
    schema = benchmark(meeting_schema)
    assert len(schema.classes) == 3
    assert len(schema.relationships) == 2


def test_er_translation_matches_figure3(benchmark):
    translated = benchmark(lambda: er_to_cr(meeting_er()))
    direct = meeting_schema()
    assert translated.declared_cards == direct.declared_cards
    assert translated.isa_statements == direct.isa_statements
    paper_row(
        "E2/Figure2-3",
        "the CR-diagram of Figure 2 denotes the CR-schema of Figure 3",
        "ER translation equals the direct Figure-3 construction",
    )


def test_figure3_listing_regenerates(benchmark, meeting):
    text = benchmark(render_schema, meeting)
    for line in (
        "Sisa = {Discussant <= Speaker};",
        "minc(Speaker, Holds, U1) = 1;",
        "maxc(Discussant, Holds, U1) = 2;",
    ):
        assert line in text
    print("\n" + text)


def test_meeting_classes_all_satisfiable(benchmark, meeting):
    verdicts = benchmark(satisfiable_classes, meeting)
    assert verdicts == {"Speaker": True, "Discussant": True, "Talk": True}
    paper_row(
        "E2/satisfiability",
        "the meeting schema can be populated",
        f"{verdicts}",
    )
