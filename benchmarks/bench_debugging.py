"""E10 — Section 5's schema-debugging claim.

Paper claim (future work, implemented here): "provide the designer with
a minimum number of constraints that are unsatisfiable, thus supporting
her in schema debugging".

Reproduction: minimal unsatisfiable constraint sets are extracted for
the paper's two unsatisfiable schemas; the deletion-based extractor and
QuickXplain agree on minimality, and their costs (reasoner calls) are
measured.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.ext.debugging import (
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
)


def test_figure1_mus_deletion(benchmark, figure1):
    report = benchmark(minimal_unsatisfiable_constraints, figure1, "D")
    assert len(report.mus) == 3  # D isa C + the two cardinality pairs
    paper_row(
        "E10/Figure1",
        "a minimum number of constraints that are unsatisfiable",
        f"MUS of {len(report.mus)} statements in {report.checks} reasoner "
        "calls (deletion)",
    )


def test_figure1_mus_quickxplain(benchmark, figure1):
    report = benchmark(quickxplain_unsatisfiable_constraints, figure1, "D")
    assert len(report.mus) == 3
    paper_row(
        "E10/Figure1",
        "QuickXplain finds the same conflict",
        f"MUS of {len(report.mus)} statements in {report.checks} reasoner "
        "calls (quickxplain)",
    )


def test_refined_meeting_mus_deletion(benchmark, refined_meeting):
    report = benchmark(
        minimal_unsatisfiable_constraints, refined_meeting, "Speaker"
    )
    # Section 3.3's counting argument uses every constraint of the schema.
    assert len(report.mus) == len(refined_meeting.constraints())
    paper_row(
        "E10/Sec3.3",
        "the whole refined meeting schema is one irreducible conflict",
        f"MUS = all {len(report.mus)} statements "
        f"({report.checks} reasoner calls)",
    )


def test_refined_meeting_mus_quickxplain(benchmark, refined_meeting):
    report = benchmark(
        quickxplain_unsatisfiable_constraints, refined_meeting, "Speaker"
    )
    assert len(report.mus) == len(refined_meeting.constraints())
