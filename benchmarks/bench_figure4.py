"""E3 — Figure 4: the expansion of the meeting schema.

Paper content: 7 compound classes (consistent: C1, C3, C4, C5, C7), 98
compound relationships with the consistent ones
``{H<i,j> : i ∈ {1,4,5,7}, j ∈ {3,5,7}} ∪ {P<i,j> : i ∈ {4,7}, j ∈ {3,5,7}}``,
and the lifted minc/maxc values listed in the figure.

Reproduction: all of the above, checked literally; the benchmark
measures expansion construction.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.expansion import Expansion
from repro.cr.schema import Card, UNBOUNDED
from repro.render import render_expansion


def test_expansion_construction(benchmark, meeting):
    expansion = benchmark(Expansion, meeting)
    summary = expansion.size_summary()
    assert summary["all_compound_classes"] == 7
    assert summary["all_compound_relationships"] == 98
    assert summary["consistent_compound_classes"] == 5
    assert summary["consistent_compound_relationships"] == 18
    paper_row(
        "E3/Figure4",
        "7 compound classes (5 consistent), 98 compound relationships "
        "(12 + 6 consistent)",
        f"{summary}",
    )


def test_consistent_sets_match_figure4(benchmark, meeting_expansion):
    def collect():
        classes = [
            meeting_expansion.class_index(cc)
            for cc in meeting_expansion.consistent_compound_classes()
        ]
        pairs = {
            name: sorted(
                tuple(
                    meeting_expansion.class_index(component)
                    for _, component in compound.signature
                )
                for compound in meeting_expansion.consistent_relationships_of(
                    name
                )
            )
            for name in ("Holds", "Participates")
        }
        return classes, pairs

    classes, pairs = benchmark(collect)
    assert classes == [1, 3, 4, 5, 7]
    assert pairs["Holds"] == sorted(
        (i, j) for i in (1, 4, 5, 7) for j in (3, 5, 7)
    )
    assert pairs["Participates"] == sorted(
        (i, j) for i in (4, 7) for j in (3, 5, 7)
    )


def test_lifted_cardinalities_match_figure4(benchmark, meeting_expansion):
    def lifted_table():
        table = {}
        for rel in meeting_expansion.schema.relationships:
            for role, _ in rel.signature:
                for cc in meeting_expansion.consistent_compound_classes():
                    if rel.primary_class(role) in cc.members:
                        index = meeting_expansion.class_index(cc)
                        table[(index, rel.name, role)] = (
                            meeting_expansion.lifted_card(cc, rel.name, role)
                        )
        return table

    table = benchmark(lifted_table)
    # Every non-default value printed in Figure 4.
    assert table[(1, "Holds", "U1")] == Card(1, UNBOUNDED)
    assert table[(4, "Holds", "U1")] == Card(1, 2)
    assert table[(5, "Holds", "U1")] == Card(1, UNBOUNDED)
    assert table[(7, "Holds", "U1")] == Card(1, 2)
    assert table[(3, "Holds", "U2")] == Card(1, 1)
    assert table[(5, "Holds", "U2")] == Card(1, 1)
    assert table[(7, "Holds", "U2")] == Card(1, 1)
    assert table[(4, "Participates", "U3")] == Card(1, 1)
    assert table[(7, "Participates", "U3")] == Card(1, 1)
    assert table[(3, "Participates", "U4")] == Card(1, UNBOUNDED)
    assert table[(5, "Participates", "U4")] == Card(1, UNBOUNDED)
    assert table[(7, "Participates", "U4")] == Card(1, UNBOUNDED)


def test_figure4_text_regenerates(benchmark, meeting_expansion):
    text = benchmark(render_expansion, meeting_expansion)
    assert "Cc = {C1, C3, C4, C5, C7};" in text
    print("\n" + text)
