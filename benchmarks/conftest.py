"""Shared fixtures and reporting helpers for the benchmark harness.

Every module in this directory regenerates one artifact of the paper
(see the experiment index in DESIGN.md) and measures its cost with
pytest-benchmark.  Each benchmark *asserts* the paper's qualitative
claim — who is satisfiable, what is implied, what shrinks — so a green
run is itself the reproduction; the timings quantify the method.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to also see
the regenerated figure text.
"""

from __future__ import annotations

import pytest

from repro.cr.expansion import Expansion
from repro.cr.system import build_system
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema


@pytest.fixture(scope="session")
def meeting():
    return meeting_schema()


@pytest.fixture(scope="session")
def meeting_expansion(meeting):
    return Expansion(meeting)


@pytest.fixture(scope="session")
def meeting_system(meeting_expansion):
    return build_system(meeting_expansion, mode="pruned")


@pytest.fixture(scope="session")
def figure1():
    return figure1_schema()


@pytest.fixture(scope="session")
def refined_meeting():
    return refined_meeting_schema()


def paper_row(experiment: str, claim: str, measured: str) -> None:
    """Print one paper-vs-measured row (visible with ``pytest -s``)."""
    print(f"\n[{experiment}] paper: {claim}")
    print(f"[{experiment}] measured: {measured}")
