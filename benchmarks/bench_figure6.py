"""E5 — Figure 6: a solution of the system and the model built from it.

Paper content: checking satisfiability of ``Speaker`` adds
``c1 + c4 + c5 + c7 > 0`` to the system; the solution
``X(c3) = X(c4) = 2``, ``X(h34) = X(p34) = 2`` (components: two
discussant-speakers, two talks) is acceptable, and from it a model is
constructed — the John/Mary interpretation.

Reproduction: the engine finds an acceptable witness and the
construction yields a checked model; feeding in the paper's *exact*
solution reproduces the John/Mary model up to renaming (2 speakers =
2 discussants, 2 talks, 2 Holds tuples, 2 Participates tuples).
Benchmarks measure the satisfiability check and the model
construction.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.checker import check_model
from repro.cr.construction import construct_model, construct_model_for_result
from repro.cr.satisfiability import is_class_satisfiable
from repro.render import render_interpretation, render_solution


def test_speaker_satisfiability(benchmark, meeting):
    result = benchmark(is_class_satisfiable, meeting, "Speaker")
    assert result.satisfiable
    paper_row(
        "E5/Figure6",
        "the system plus c1 + c4 + c5 + c7 > 0 admits an acceptable solution",
        f"witness support = {sorted(result.support)}",
    )


def test_model_construction(benchmark, meeting):
    result = is_class_satisfiable(meeting, "Speaker")
    model = benchmark(construct_model_for_result, result)
    assert check_model(meeting, model) == []
    assert model.instances_of("Speaker")


def test_paper_exact_solution_reproduces_john_mary(
    benchmark, meeting, meeting_system
):
    solution = {name: 0 for name in meeting_system.system.variables}
    solution.update({"c3": 2, "c4": 2, "h43": 2, "p43": 2})
    model = benchmark(construct_model, meeting_system, solution)
    assert check_model(meeting, model) == []
    sizes = {
        "Speaker": len(model.instances_of("Speaker")),
        "Discussant": len(model.instances_of("Discussant")),
        "Talk": len(model.instances_of("Talk")),
        "Holds": len(model.tuples_of("Holds")),
        "Participates": len(model.tuples_of("Participates")),
    }
    assert sizes == {
        "Speaker": 2,
        "Discussant": 2,
        "Talk": 2,
        "Holds": 2,
        "Participates": 2,
    }
    paper_row(
        "E5/Figure6-model",
        "model with John, Mary, talkJ, talkM (2+2 individuals, 2+2 tuples)",
        f"{sizes}",
    )
    print("\n" + render_solution(solution))
    print(render_interpretation(model))
