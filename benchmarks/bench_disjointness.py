"""E9 — Section 5's disjointness-pruning claim.

Paper claim: "disjointness constraints between classes not only enhance
the expressive power of the model, but can also lead to a dramatic
reduction of the size of the resulting system … taking as an example
the diagram of Figure 2, the natural restriction that talks and
speakers be disjoint leads to a system of disequations with just a few
unknowns."

Reproduction: adding ``disjoint(Speaker, Talk)`` to the meeting schema
shrinks the unknowns from 23 to 6 and the satisfiability check speeds
up accordingly; on the exponential antichain family, pairwise
disjointness collapses ``2^k − 1`` compound classes to ``k``.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_scalability import antichain_schema
from benchmarks.conftest import paper_row
from repro.cr.satisfiability import satisfiable_classes
from repro.ext.disjointness import pruning_report, with_disjointness


def test_meeting_schema_pruning(benchmark, meeting):
    report = benchmark(pruning_report, meeting, ("Speaker", "Talk"))
    assert report.unknowns_before == 23
    assert report.unknowns_after == 6  # 3 compound classes + 3 compound rels
    paper_row(
        "E9/meeting",
        "disjoint(Speaker, Talk) leaves a system with just a few unknowns",
        report.pretty(),
    )


def test_meeting_reasoning_after_pruning(benchmark, meeting):
    pruned = with_disjointness(meeting, ("Speaker", "Talk"))
    verdicts = benchmark(satisfiable_classes, pruned)
    assert verdicts == {"Speaker": True, "Discussant": True, "Talk": True}


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_antichain_collapse(benchmark, k):
    schema = antichain_schema(k)
    groups = (tuple(f"K{i}" for i in range(k)),)
    report = benchmark(pruning_report, schema, *groups)
    assert report.compound_classes_before == 2**k - 1
    assert report.compound_classes_after == k
    paper_row(
        "E9/antichain",
        "dramatic reduction of the size of the resulting system",
        f"k={k}: {report.pretty()}",
    )


@pytest.mark.parametrize("k", [5, 6, 7])
def test_satisfiability_speedup(benchmark, k):
    """End-to-end check on the pruned schema — the timing counterpart of
    the unpruned E8 antichain benchmarks."""
    schema = with_disjointness(
        antichain_schema(k), tuple(f"K{i}" for i in range(k))
    )
    verdicts = benchmark(satisfiable_classes, schema)
    assert verdicts["K0"] is True
