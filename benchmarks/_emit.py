"""Shared BENCH_*.json emission and validation plumbing.

Every perf-trajectory runner in this directory follows the same
contract: a ``run_benchmarks`` that returns a JSON-safe report, a
``validate_report`` that CI imports and re-runs against the emitted
artifact, and a ``main`` that parses ``--quick``/``--output``, runs,
validates, writes the report, and prints a per-entry summary.  The
helpers here hold the parts that were copy-pasted between
``bench_solver.py``, ``bench_session.py``, and ``bench_analysis.py``:
the typed-field entry check (with the ``bool``-is-an-``int`` pitfall
handled once), the report-shape preamble, and the write/print harness.

Each module keeps its own acceptance bars and message formats in its
``validate_report`` — only the mechanical shape checks live here.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence


def check_entry_fields(
    entry: Mapping[str, Any],
    keys: Mapping[str, type],
    label_key: str = "workload",
) -> None:
    """Raise ``ValueError`` unless every field in ``keys`` is present in
    ``entry`` with the expected type.

    ``bool`` is a subclass of ``int``, so a plain ``isinstance`` check
    would let ``True`` pass for an ``int``-typed field (and vice versa
    silently coerce); a bool value only satisfies a field whose expected
    type is exactly ``bool``.
    """
    label = entry.get(label_key)
    for key, expected in keys.items():
        value = entry.get(key)
        if expected is not bool and isinstance(value, bool):
            raise ValueError(
                f"entry {label!r}: field {key!r} must be "
                f"{expected.__name__}, got bool"
            )
        if not isinstance(value, expected):
            raise ValueError(
                f"entry {label!r}: field {key!r} must be "
                f"{expected.__name__}, got {value!r}"
            )


def check_report_shape(report: Any, benchmark: str) -> list[dict]:
    """The preamble every ``validate_report`` starts with: the report is
    an object, names the right benchmark, and carries a non-empty
    ``entries`` list (returned for the caller's per-entry checks)."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if report.get("benchmark") != benchmark:
        raise ValueError(f"report['benchmark'] must be {benchmark!r}")
    entries = report.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("report['entries'] must be a non-empty list")
    return entries


def check_summary(report: Mapping[str, Any]) -> dict:
    """Raise unless ``report['summary']`` is an object; return it."""
    summary = report.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("report['summary'] must be an object")
    return summary


def write_report(report: Mapping[str, Any], output: str) -> None:
    """Write the validated report where CI's bench-smoke picks it up."""
    Path(output).write_text(json.dumps(report, indent=2) + "\n")


def run_emit_main(
    argv: Sequence[str] | None,
    *,
    description: str,
    default_output: str,
    run: Callable[[argparse.Namespace], dict],
    validate: Callable[[dict], dict],
    entry_line: Callable[[dict], str],
    summary_line: Callable[[dict, str], str],
    quick_help: str = "smaller workload sizes (CI)",
    add_arguments: Callable[[argparse.ArgumentParser], None] | None = None,
) -> int:
    """The standalone-runner harness shared by every BENCH_* module.

    Parses ``--quick`` / ``--output`` (plus whatever ``add_arguments``
    registers), builds the report via ``run``, gates it through
    ``validate`` *before* writing, then prints one ``entry_line`` per
    entry and the ``summary_line``.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--quick", action="store_true", help=quick_help)
    if add_arguments is not None:
        add_arguments(parser)
    parser.add_argument(
        "--output",
        default=default_output,
        metavar="PATH",
        help=f"where to write the JSON report (default: ./{default_output})",
    )
    args = parser.parse_args(argv)
    report = run(args)
    validate(report)
    write_report(report, args.output)
    for entry in report["entries"]:
        print(entry_line(entry))
    print(summary_line(report, args.output))
    return 0


__all__ = [
    "check_entry_fields",
    "check_report_shape",
    "check_summary",
    "run_emit_main",
    "write_report",
]
