"""E15 — parallel decision fabric: worker-count scaling, serial parity.

Paper context: both exponential axes of the decision procedure — the
Section-3.1 expansion underlying every cardinality implication's
extended schema, and Theorem 3.4's zero-set lattice — decompose into
independent probes of one shared immutable system.  The parallel
fabric (:mod:`repro.parallel`) fans them across a spawn-context
process pool under a strict determinism contract: the worker count
must be observationally invisible.

This standalone runner times two workloads at 1, 2, and 4 workers and
emits the repo's perf-trajectory artifact::

    PYTHONPATH=src:. python benchmarks/bench_parallel.py --quick \
        --output BENCH_parallel.json

* **batch** — distinct-fingerprint cardinality implications over an
  ISA antichain (every query pays its own extended-schema expansion
  and fixpoint; the partitioner spreads fingerprints across workers);
* **zero-set** — the naive engine on a Figure-1-style finitely
  unsatisfiable schema padded with free classes, forcing a full
  enumeration of the zero-set lattice (no first hit, so the fan-out
  has no early exit to hide behind).

``validate_report`` is the schema check CI runs against the JSON.  It
always enforces parity — every parallel run's observables must be
identical to the serial run's — and enforces the ≥2x batch speedup at
4 workers only when the measuring host actually has ≥4 cores
(``cpu_count`` is recorded in the report; a single-core container
cannot honestly show wall-clock scaling and must not fake it).
"""

from __future__ import annotations

import os
import sys
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.satisfiability import is_class_satisfiable
from repro.cr.schema import CRSchema

JOB_COUNTS = (1, 2, 4)
"""Worker counts each workload is timed at."""

BATCH_SPEEDUP_BAR = 2.0
"""Acceptance bar: batch speedup at 4 workers, on hosts with >=4 cores."""

NAIVE_LIMIT = 40
"""Raised zero-set cap: the workload's lattice is the measurement."""


def batch_workload(quick: bool) -> tuple[CRSchema, list]:
    """Distinct-fingerprint cardinality implications over an antichain.

    Six ISA-unrelated classes put the extended expansion at ~2^7
    compound classes, so every query costs seconds; each distinct
    ``(cls, rel, role, value)`` triple keys its own Section-4 extended
    fingerprint, so no two queries share a warm cache entry and the
    partitioner has one group per query to spread.
    """
    builder = SchemaBuilder("ParallelBatch")
    for i in range(6):
        builder.cls(f"K{i}")
    builder.relationship("R", U1="K0", U2="K1")
    builder.card("K0", "R", "U1", minc=1)
    schema = builder.build()
    count = 8 if quick else 12
    queries: list = []
    for v in range(count):
        if v % 2 == 0:
            queries.append(
                ("implies", MaxCardinalityStatement("K0", "R", "U1", v // 2 + 1))
            )
        else:
            queries.append(
                ("implies", MinCardinalityStatement("K1", "R", "U2", v // 2 + 1))
            )
    return schema, queries


def zero_set_workload(quick: bool) -> tuple[CRSchema, str]:
    """A finitely unsatisfiable class whose naive decision enumerates
    the full zero-set lattice.

    The A/B core is the Figure-1 pattern (each A holds exactly two
    tuples whose B-side is forced unique, with ``B isa A``) — finitely
    unsatisfiable for arithmetic reasons, so Theorem 3.4 finds no
    acceptable zero-set and every chunk runs to completion.  Two free
    classes put the lattice at 2^11 candidates; the extra A–B
    relationships fatten each candidate's LP without touching the
    class-unknown count.
    """
    builder = SchemaBuilder("ParallelZeroSet")
    builder.cls("A")
    builder.cls("B")
    builder.isa("B", "A")
    builder.relationship("R", U1="A", U2="B")
    builder.card("A", "R", "U1", minc=2, maxc=2)
    builder.card("B", "R", "U2", minc=1, maxc=1)
    for i in range(2):
        builder.cls(f"F{i}")
    for j in range(1 if quick else 2):
        builder.relationship(f"E{j}", **{f"W{j}a": "A", f"W{j}b": "B"})
        builder.card("A", f"E{j}", f"W{j}a", minc=1, maxc=3)
    return builder.build(), "A"


def _run_batch(schema: CRSchema, queries: list, jobs: int):
    """One timed batch run; observables in a comparable form."""
    if jobs == 1:
        from repro.parallel.worker import answer_query
        from repro.session import ReasoningSession

        session = ReasoningSession(schema)
        start = time.perf_counter()
        answers = [
            answer_query(session, kind, query) for kind, query in queries
        ]
        elapsed = time.perf_counter() - start
        records = [record for record, _, _, _ in answers]
        texts = [text for _, text, _, _ in answers]
        return elapsed, (records, texts)
    from repro.parallel.fanout import run_parallel_batch

    start = time.perf_counter()
    outcome = run_parallel_batch(schema, queries, jobs=jobs)
    elapsed = time.perf_counter() - start
    return elapsed, (outcome.records, outcome.texts)


def _run_zero_set(schema: CRSchema, cls: str, jobs: int):
    """One timed naive decision; witness included in the observables."""
    start = time.perf_counter()
    result = is_class_satisfiable(
        schema, cls, engine="naive", naive_limit=NAIVE_LIMIT, jobs=jobs
    )
    elapsed = time.perf_counter() - start
    return elapsed, (result.satisfiable, result.solution, result.support)


def run_benchmarks(quick: bool = False) -> dict:
    cpu_count = os.cpu_count() or 1
    workloads = [
        ("batch", "batch", batch_workload(quick)),
        ("zero-set", "zero-set", zero_set_workload(quick)),
    ]
    entries = []
    speedups_at_4: dict[str, float] = {}
    for label, family, workload in workloads:
        baseline_seconds = 0.0
        baseline_observables = None
        for jobs in JOB_COUNTS:
            if family == "batch":
                schema, queries = workload
                elapsed, observables = _run_batch(schema, queries, jobs)
            else:
                schema, cls = workload
                elapsed, observables = _run_zero_set(schema, cls, jobs)
            if jobs == 1:
                baseline_seconds = elapsed
                baseline_observables = observables
            speedup = (
                baseline_seconds / elapsed if elapsed > 0 else float("inf")
            )
            entries.append(
                {
                    "workload": label,
                    "family": family,
                    "schema": schema.name,
                    "jobs": jobs,
                    "seconds": elapsed,
                    "speedup": speedup,
                    "identical": observables == baseline_observables,
                }
            )
            if jobs == max(JOB_COUNTS):
                speedups_at_4[family] = speedup
    return {
        "benchmark": "parallel",
        "version": 1,
        "quick": quick,
        "cpu_count": cpu_count,
        "bar_enforced": cpu_count >= max(JOB_COUNTS),
        "batch_speedup_bar": BATCH_SPEEDUP_BAR,
        "entries": entries,
        "summary": {
            "workloads": len(workloads),
            "batch_speedup_at_4": speedups_at_4["batch"],
            "zero_set_speedup_at_4": speedups_at_4["zero-set"],
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "family": str,
    "schema": str,
    "jobs": int,
    "seconds": float,
    "speedup": float,
    "identical": bool,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_parallel.json payload; returns the report for chaining.

    Parity (``identical``) is enforced unconditionally — determinism
    does not depend on core count.  The wall-clock bar is enforced only
    when the report says it was measured on >=4 cores, and the
    ``bar_enforced`` flag must agree with the recorded ``cpu_count`` so
    the gate cannot be waved through independently of the hardware.
    """
    entries = check_report_shape(report, "parallel")
    cpu_count = report.get("cpu_count")
    if not isinstance(cpu_count, int) or isinstance(cpu_count, bool):
        raise ValueError("report['cpu_count'] must be an int")
    if report.get("bar_enforced") != (cpu_count >= max(JOB_COUNTS)):
        raise ValueError(
            "report['bar_enforced'] must equal cpu_count >= "
            f"{max(JOB_COUNTS)}"
        )
    seen: dict[str, set[int]] = {}
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if not entry["identical"]:
            raise ValueError(
                f"entry {entry['workload']!r} at jobs={entry['jobs']}: "
                "parallel observables diverged from the serial run"
            )
        seen.setdefault(entry["family"], set()).add(entry["jobs"])
    expected = {"batch": set(JOB_COUNTS), "zero-set": set(JOB_COUNTS)}
    if seen != expected:
        raise ValueError(f"expected {expected}, got {seen}")
    summary = check_summary(report)
    batch_at_4 = summary.get("batch_speedup_at_4")
    if not isinstance(batch_at_4, float):
        raise ValueError("summary.batch_speedup_at_4 must be a float")
    if report["bar_enforced"] and batch_at_4 < BATCH_SPEEDUP_BAR:
        raise ValueError(
            f"acceptance bar missed: batch speedup at {max(JOB_COUNTS)} "
            f"workers is {batch_at_4:.2f}x < {BATCH_SPEEDUP_BAR}x on a "
            f"{cpu_count}-core host"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description=(
            "parallel fabric scaling and parity; emits BENCH_parallel.json"
        ),
        default_output="BENCH_parallel.json",
        quick_help="smaller batch and lattice sizes (CI)",
        run=lambda args: run_benchmarks(quick=args.quick),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<10} jobs={entry['jobs']}"
            f"  {entry['seconds']*1e3:9.1f} ms"
            f"  speedup {entry['speedup']:5.2f}x"
            f"  identical={entry['identical']}"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads on "
            f"{report['cpu_count']} core(s), batch "
            f"{report['summary']['batch_speedup_at_4']:.2f}x, zero-set "
            f"{report['summary']['zero_set_speedup_at_4']:.2f}x at "
            f"{max(JOB_COUNTS)} workers"
            + ("" if report["bar_enforced"] else " (bar not enforced)")
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
