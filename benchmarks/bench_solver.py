"""E12 — solver ablation: exact simplex vs Fourier–Motzkin vs scipy.

The decision path of the library is float-free by design (Section 3.2's
systems are decided exactly).  This benchmark measures what that
exactness costs by comparing, on the paper's own systems:

* the exact rational simplex (the production engine),
* Fourier–Motzkin elimination (exact, strictness-native, exponential),
* scipy's HiGHS ``linprog`` (floating point; oracle only).

All engines must agree on feasibility; the timings quantify the gap.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linprog

from benchmarks.conftest import paper_row
from repro.cr.expansion import Expansion
from repro.cr.system import build_system
from repro.ext.disjointness import with_disjointness
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema
from repro.solver.fourier_motzkin import fm_feasible
from repro.solver.linear import Constraint, LinearSystem, Relation, term
from repro.solver.simplex import solve_lp


def _positivity_system(schema, cls) -> LinearSystem:
    """Psi_S plus the Theorem-3.3 positivity row, with > sharpened to
    >= 1 (sound for homogeneous systems by cone scaling)."""
    cr_system = build_system(Expansion(schema), mode="pruned")
    positivity = Constraint(
        cr_system.class_population_expr(cls) - 1, Relation.GE
    )
    return cr_system.system.with_constraints([positivity])


def scipy_feasible(system: LinearSystem) -> bool:
    variables = list(system.variables)
    index = {name: i for i, name in enumerate(variables)}
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for constraint in system.constraints:
        row = [0.0] * len(variables)
        for name, coeff in constraint.expr.coefficients.items():
            row[index[name]] = float(coeff)
        rhs = -float(constraint.expr.constant_term)
        if constraint.relation is Relation.LE:
            a_ub.append(row)
            b_ub.append(rhs)
        elif constraint.relation is Relation.GE:
            a_ub.append([-v for v in row])
            b_ub.append(-rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    result = linprog(
        c=np.zeros(len(variables)),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(0, None)] * len(variables),
        method="highs",
    )
    return bool(result.success)


CASES = [
    ("meeting/sat", meeting_schema, "Speaker", True),
    ("refined/unsat", refined_meeting_schema, "Speaker", False),
]


@pytest.mark.parametrize("name,schema_factory,cls,expected", CASES)
def test_exact_simplex(benchmark, name, schema_factory, cls, expected):
    system = _positivity_system(schema_factory(), cls)
    verdict = benchmark(lambda: solve_lp(system).is_feasible)
    assert verdict == expected
    paper_row(
        "E12/simplex", f"{name} feasibility", f"exact simplex says {verdict}"
    )


FM_CASES = [
    # Fourier-Motzkin is doubly exponential in the eliminated variables:
    # on the full 23-unknown meeting system it does not terminate in
    # reasonable time (that blow-up IS the measurement — see
    # EXPERIMENTS.md E12), so the FM rows use the small systems: the
    # Figure-1 schema and the disjointness-pruned meeting schema of E9.
    ("figure1/unsat", lambda: figure1_schema(), "D", False),
    ("figure1-ratio1/sat", lambda: figure1_schema(1), "D", True),
    (
        "pruned-meeting/sat",
        lambda: with_disjointness(meeting_schema(), ("Speaker", "Talk")),
        "Speaker",
        True,
    ),
]


@pytest.mark.parametrize("name,schema_factory,cls,expected", FM_CASES)
def test_fourier_motzkin(benchmark, name, schema_factory, cls, expected):
    system = _positivity_system(schema_factory(), cls)
    verdict = benchmark(
        lambda: fm_feasible(system, max_constraints=2_000_000)
    )
    assert verdict == expected
    paper_row(
        "E12/fourier-motzkin",
        f"{name} feasibility (small systems only; FM blows up beyond)",
        f"FM agrees: {verdict}",
    )


@pytest.mark.parametrize("name,schema_factory,cls,expected", FM_CASES)
def test_exact_simplex_on_fm_cases(benchmark, name, schema_factory, cls, expected):
    """The same small systems through the simplex, for a direct ratio."""
    system = _positivity_system(schema_factory(), cls)
    verdict = benchmark(lambda: solve_lp(system).is_feasible)
    assert verdict == expected


@pytest.mark.parametrize("name,schema_factory,cls,expected", CASES)
def test_scipy_float_lp(benchmark, name, schema_factory, cls, expected):
    system = _positivity_system(schema_factory(), cls)
    verdict = benchmark(scipy_feasible, system)
    assert verdict == expected
    paper_row(
        "E12/scipy",
        f"{name} feasibility (float oracle)",
        f"HiGHS agrees: {verdict}",
    )


def test_exactness_guard(benchmark):
    """A case where float tolerance would be dangerous: a cone that is
    infeasible only by an exact rational margin."""
    x, y = term("x"), term("y")
    big = 10**14
    system = LinearSystem(
        [big * x <= (big - 1) * y, y <= x, x >= 1]
    )
    verdict = benchmark(lambda: solve_lp(system).is_feasible)
    assert not verdict
    assert not fm_feasible(system)
