"""E12/E14 — solver-core ablations: dense vs sparse, exact vs float.

Two experiments share this module:

**E14 (standalone runner, CI artifact).**  The interned sparse revised
simplex (:mod:`repro.solver.core`) replaced the dense string-keyed
tableau (:mod:`repro.solver.simplex`) as the production engine.  This
runner times the *same* maximal-support computation — the LP at the
heart of the acceptability fixpoint — through both engines, on the
paper's figure schemas and on a deterministic random growing-schema
family, and emits the perf-trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_solver.py --quick \
        --output BENCH_solver.json

``validate_report`` is the schema check CI runs against the JSON; it
also enforces the engines *agree* on every support and that sparse is
at parity or better on the figure schemas and ≥2× faster on the
largest random instance (the refactor's acceptance bar).  The runner
needs only the standard library and :mod:`repro`.

**E12 (pytest-benchmark suite).**  The decision path of the library is
float-free by design (Section 3.2's systems are decided exactly).  The
benchmark tests below measure what that exactness costs by comparing,
on the paper's own systems: the exact simplex engines, Fourier–Motzkin
elimination (exact, strictness-native, exponential), and scipy's HiGHS
``linprog`` (floating point; oracle only).  All engines must agree on
feasibility; the timings quantify the gap.  Run with ``pytest
benchmarks/bench_solver.py --benchmark-only`` (needs the ``dev``
extras).
"""

from __future__ import annotations

import random
import sys
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.cr.builder import SchemaBuilder
from repro.cr.expansion import Expansion
from repro.cr.schema import CRSchema
from repro.cr.system import CRSystem, build_system
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema
from repro.solver.core import interned_maximal_support
from repro.solver.homogeneous import maximal_support as dense_maximal_support

try:  # the pytest-benchmark suite below needs the dev extras;
    import pytest  # the standalone E14 runner must work without them.
except ImportError:  # pragma: no cover - CI bench-smoke has no pytest
    pytest = None  # type: ignore[assignment]

FIGURE_REPEATS = 5
"""Best-of-N repeats for the (microsecond-scale) figure schemas."""


# ---------------------------------------------------------------------------
# E14: dense tableau vs interned sparse revised simplex
# ---------------------------------------------------------------------------


def random_schema(classes: int, relationships: int, seed: int) -> CRSchema:
    """A deterministic pseudo-random CR-schema.

    A sparse ISA forest (edge probability 0.6 keeps the consistent
    expansion growing but tractable) plus binary relationships between
    random classes with random min/max cardinalities.  The same
    ``(classes, relationships, seed)`` always yields the same schema,
    so report entries are comparable across runs and machines.
    """
    rng = random.Random(seed)
    builder = SchemaBuilder(f"Random{classes}x{relationships}")
    names = [f"K{i}" for i in range(classes)]
    for name in names:
        builder.cls(name)
    for i in range(1, classes):
        if rng.random() < 0.6:
            builder.isa(names[i], names[rng.randrange(i)])
    for j in range(relationships):
        first, second = rng.sample(names, 2)
        builder.relationship(f"R{j}", **{f"V{j}a": first, f"V{j}b": second})
        builder.card(
            first, f"R{j}", f"V{j}a", minc=rng.choice([0, 1, 1, 2])
        )
        builder.card(
            second,
            f"R{j}",
            f"V{j}b",
            minc=rng.choice([0, 1]),
            maxc=rng.choice([2, 3]),
        )
    return builder.build()


def _support_workload(
    label: str, family: str, schema: CRSchema, repeats: int = 1
) -> dict:
    """Time one maximal-support LP through both engines.

    The system is built once outside the timed region (system
    generation is shared infrastructure, not under test) and both
    engines probe the same candidate set — the class unknowns, exactly
    what the satisfiability fixpoint probes.  ``repeats`` takes the
    best of N to stabilise microsecond-scale figure workloads.
    """
    cr_system: CRSystem = build_system(Expansion(schema), mode="pruned")
    dense_system = cr_system.system  # derive the string-keyed form now
    candidates = list(cr_system.class_var.values())

    dense_best = sparse_best = float("inf")
    dense_support = sparse_support = frozenset()
    for _ in range(repeats):
        start = time.perf_counter()
        dense_support, _ = dense_maximal_support(
            dense_system, candidates=candidates
        )
        dense_best = min(dense_best, time.perf_counter() - start)
        start = time.perf_counter()
        sparse_support, _ = interned_maximal_support(
            cr_system.interned, candidates
        )
        sparse_best = min(sparse_best, time.perf_counter() - start)

    return {
        "workload": label,
        "family": family,
        "schema": schema.name,
        "unknowns": len(dense_system.variables),
        "rows": len(dense_system.constraints),
        "nonzeros": cr_system.interned.nonzeros(),
        "dense_s": dense_best,
        "sparse_s": sparse_best,
        "speedup": dense_best / sparse_best if sparse_best > 0 else float("inf"),
        "support_size": len(sparse_support),
        "agree": dense_support == sparse_support,
    }


def workloads(quick: bool) -> list[tuple[str, str, CRSchema, int]]:
    """(label, family, schema, repeats) rows for the E14 ablation."""
    entries: list[tuple[str, str, CRSchema, int]] = [
        ("figure1", "figure", figure1_schema(), FIGURE_REPEATS),
        ("figures3-5:meeting", "figure", meeting_schema(), FIGURE_REPEATS),
        (
            "figure6:refined-meeting",
            "figure",
            refined_meeting_schema(),
            FIGURE_REPEATS,
        ),
    ]
    sizes = (4, 5, 6) if quick else (4, 5, 6, 7)
    entries.extend(
        (
            f"random:{k}classes",
            "random",
            random_schema(k, relationships=2, seed=7),
            1,
        )
        for k in sizes
    )
    return entries


def run_benchmarks(quick: bool = False) -> dict:
    entries = [
        _support_workload(label, family, schema, repeats)
        for label, family, schema, repeats in workloads(quick)
    ]
    figure_speedups = [
        entry["speedup"] for entry in entries if entry["family"] == "figure"
    ]
    random_entries = [
        entry for entry in entries if entry["family"] == "random"
    ]
    largest = max(random_entries, key=lambda entry: entry["unknowns"])
    return {
        "benchmark": "solver",
        "version": 1,
        "quick": quick,
        "entries": entries,
        "summary": {
            "workloads": len(entries),
            "figure_min_speedup": min(figure_speedups),
            "largest_random_workload": largest["workload"],
            "largest_random_unknowns": largest["unknowns"],
            "largest_random_speedup": largest["speedup"],
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "family": str,
    "schema": str,
    "unknowns": int,
    "rows": int,
    "nonzeros": int,
    "dense_s": float,
    "sparse_s": float,
    "speedup": float,
    "support_size": int,
    "agree": bool,
}

FIGURE_PARITY_FLOOR = 0.8
"""Sparse must reach at least this fraction of dense speed on the tiny
figure systems — "parity" with headroom for scheduler noise at the
sub-millisecond scale (best-of-N already smooths most of it)."""

RANDOM_SPEEDUP_FLOOR = 2.0
"""Sparse must beat dense by at least this factor on the largest
random-family instance (the refactor's acceptance criterion)."""


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_solver.json payload meeting the acceptance bars; returns the
    report for chaining."""
    entries = check_report_shape(report, "solver")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if not entry["agree"]:
            raise ValueError(
                f"entry {entry['workload']!r}: dense and sparse engines "
                "disagree on the maximal support"
            )
        if (
            entry["family"] == "figure"
            and entry["speedup"] < FIGURE_PARITY_FLOOR
        ):
            raise ValueError(
                f"entry {entry['workload']!r}: sparse engine below parity "
                f"({entry['speedup']:.2f}x < {FIGURE_PARITY_FLOOR}x)"
            )
    families = {entry["family"] for entry in entries}
    if families != {"figure", "random"}:
        raise ValueError(f"expected figure+random families, got {families}")
    summary = check_summary(report)
    largest_speedup = summary.get("largest_random_speedup")
    if not isinstance(largest_speedup, float):
        raise ValueError("summary.largest_random_speedup must be a float")
    if largest_speedup < RANDOM_SPEEDUP_FLOOR:
        raise ValueError(
            "sparse engine too slow on the largest random instance: "
            f"{largest_speedup:.2f}x < {RANDOM_SPEEDUP_FLOOR}x"
        )
    return report


def _summary_line(report: dict, output: str) -> str:
    summary = report["summary"]
    return (
        f"-> {output}: {summary['workloads']} workloads, "
        f"figure floor {summary['figure_min_speedup']:.1f}x, largest random "
        f"({summary['largest_random_workload']}, "
        f"{summary['largest_random_unknowns']} unknowns) "
        f"{summary['largest_random_speedup']:.1f}x"
    )


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description=(
            "dense vs sparse simplex ablation; emits BENCH_solver.json"
        ),
        default_output="BENCH_solver.json",
        quick_help="smaller random sizes (CI)",
        run=lambda args: run_benchmarks(quick=args.quick),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<24} {entry['unknowns']:>5} unknowns"
            f"  dense {entry['dense_s']*1e3:9.2f} ms"
            f"  sparse {entry['sparse_s']*1e3:8.2f} ms"
            f"  speedup {entry['speedup']:6.1f}x"
        ),
        summary_line=_summary_line,
    )


# ---------------------------------------------------------------------------
# E12: pytest-benchmark suite (exact engines vs scipy float oracle)
# ---------------------------------------------------------------------------

if pytest is not None:
    from repro.ext.disjointness import with_disjointness
    from repro.solver.fourier_motzkin import fm_feasible
    from repro.solver.linear import Constraint, LinearSystem, Relation, term
    from repro.solver.simplex import solve_lp

    def _positivity_system(schema, cls) -> LinearSystem:
        """Psi_S plus the Theorem-3.3 positivity row, with > sharpened to
        >= 1 (sound for homogeneous systems by cone scaling)."""
        cr_system = build_system(Expansion(schema), mode="pruned")
        positivity = Constraint(
            cr_system.class_population_expr(cls) - 1, Relation.GE
        )
        return cr_system.system.with_constraints([positivity])

    def scipy_feasible(system: LinearSystem) -> bool:
        np = pytest.importorskip("numpy")
        linprog = pytest.importorskip("scipy.optimize").linprog
        variables = list(system.variables)
        index = {name: i for i, name in enumerate(variables)}
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for constraint in system.constraints:
            row = [0.0] * len(variables)
            for name, coeff in constraint.expr.coefficients.items():
                row[index[name]] = float(coeff)
            rhs = -float(constraint.expr.constant_term)
            if constraint.relation is Relation.LE:
                a_ub.append(row)
                b_ub.append(rhs)
            elif constraint.relation is Relation.GE:
                a_ub.append([-v for v in row])
                b_ub.append(-rhs)
            else:
                a_eq.append(row)
                b_eq.append(rhs)
        result = linprog(
            c=np.zeros(len(variables)),
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=[(0, None)] * len(variables),
            method="highs",
        )
        return bool(result.success)

    CASES = [
        ("meeting/sat", meeting_schema, "Speaker", True),
        ("refined/unsat", refined_meeting_schema, "Speaker", False),
    ]

    @pytest.mark.parametrize("name,schema_factory,cls,expected", CASES)
    def test_exact_simplex(benchmark, name, schema_factory, cls, expected):
        from benchmarks.conftest import paper_row

        system = _positivity_system(schema_factory(), cls)
        verdict = benchmark(lambda: solve_lp(system).is_feasible)
        assert verdict == expected
        paper_row(
            "E12/simplex",
            f"{name} feasibility",
            f"exact simplex says {verdict}",
        )

    FM_CASES = [
        # Fourier-Motzkin is doubly exponential in the eliminated
        # variables: on the full 23-unknown meeting system it does not
        # terminate in reasonable time (that blow-up IS the measurement
        # — see EXPERIMENTS.md E12), so the FM rows use the small
        # systems: the Figure-1 schema and the disjointness-pruned
        # meeting schema of E9.
        ("figure1/unsat", lambda: figure1_schema(), "D", False),
        ("figure1-ratio1/sat", lambda: figure1_schema(1), "D", True),
        (
            "pruned-meeting/sat",
            lambda: with_disjointness(meeting_schema(), ("Speaker", "Talk")),
            "Speaker",
            True,
        ),
    ]

    @pytest.mark.parametrize("name,schema_factory,cls,expected", FM_CASES)
    def test_fourier_motzkin(benchmark, name, schema_factory, cls, expected):
        from benchmarks.conftest import paper_row

        system = _positivity_system(schema_factory(), cls)
        verdict = benchmark(
            lambda: fm_feasible(system, max_constraints=2_000_000)
        )
        assert verdict == expected
        paper_row(
            "E12/fourier-motzkin",
            f"{name} feasibility (small systems only; FM blows up beyond)",
            f"FM agrees: {verdict}",
        )

    @pytest.mark.parametrize("name,schema_factory,cls,expected", FM_CASES)
    def test_exact_simplex_on_fm_cases(
        benchmark, name, schema_factory, cls, expected
    ):
        """The same small systems through the simplex, for a direct ratio."""
        system = _positivity_system(schema_factory(), cls)
        verdict = benchmark(lambda: solve_lp(system).is_feasible)
        assert verdict == expected

    @pytest.mark.parametrize("name,schema_factory,cls,expected", CASES)
    def test_scipy_float_lp(benchmark, name, schema_factory, cls, expected):
        from benchmarks.conftest import paper_row

        system = _positivity_system(schema_factory(), cls)
        verdict = benchmark(scipy_feasible, system)
        assert verdict == expected
        paper_row(
            "E12/scipy",
            f"{name} feasibility (float oracle)",
            f"HiGHS agrees: {verdict}",
        )

    def test_exactness_guard(benchmark):
        """A case where float tolerance would be dangerous: a cone that is
        infeasible only by an exact rational margin."""
        x, y = term("x"), term("y")
        big = 10**14
        system = LinearSystem([big * x <= (big - 1) * y, y <= x, x >= 1])
        verdict = benchmark(lambda: solve_lp(system).is_feasible)
        assert not verdict
        assert not fm_feasible(system)

    def test_solver_report_is_wellformed(benchmark):
        """The E14 runner's artifact passes its own acceptance gate."""
        report = benchmark.pedantic(
            run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
        )
        validate_report(report)
        assert report["summary"]["largest_random_speedup"] >= 2.0


if __name__ == "__main__":
    sys.exit(main())
