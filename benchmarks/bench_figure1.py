"""E1 — Figure 1: a finitely unsatisfiable ER-diagram.

Paper claim: the schema of Figure 1 (``D ≼ C`` while the cardinalities
force ``|D| = 2·|C|``… more precisely ``2·|C| ≤ |R| ≤ |D| ≤ |C|``)
"admits no finite database state".

Reproduction: the reasoner reports every class finitely unsatisfiable
for any participation ratio ≥ 2, and satisfiable at the boundary
ratio 1.  The benchmark measures the full decision (expansion + system
+ fixpoint) from a cold start.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import paper_row
from repro.cr.satisfiability import satisfiable_classes
from repro.paper import figure1_schema


def test_figure1_detected_unsatisfiable(benchmark, figure1):
    verdicts = benchmark(satisfiable_classes, figure1)
    assert verdicts == {"C": False, "D": False}
    paper_row(
        "E1/Figure1",
        "the schema admits no finite database state",
        f"satisfiable_classes = {verdicts}",
    )


@pytest.mark.parametrize("ratio", [1, 2, 3, 5, 10])
def test_figure1_ratio_family(benchmark, ratio):
    schema = figure1_schema(ratio)
    verdicts = benchmark(satisfiable_classes, schema)
    expected = ratio == 1
    assert verdicts == {"C": expected, "D": expected}
    paper_row(
        "E1/ratio-family",
        "unsatisfiable exactly when the ratio exceeds 1",
        f"ratio={ratio} -> satisfiable={expected}",
    )
