"""E17 — component decomposition: per-island reasoning and warm deltas.

Paper context: Theorem 3.3 decides satisfiability through the
Section-3.1 expansion, which is exponential in the class set.  The
constraint graph of a schema assembled from independent islands is
disconnected, and models compose across islands — so
:class:`~repro.components.DecomposedSession` may expand each island
separately (``k * 2^m`` instead of ``2^(k*m)``), and an edit that
touches one island can reuse every other island's persisted artifacts
(the ``repro diff`` contract).

Two workload kinds, over archipelago schemas of ``k`` two-class
islands (one binary relationship per island keeps it a single
component; no ISA, so the whole-schema expansion enumerates every
nonempty subset of all ``2k`` classes and every compound relationship
over them — the count grows like ``4^k`` per relationship — while each
island's own expansion is constant-size):

* ``monolithic-vs-decomposed`` — cold ``satisfiable_classes`` through
  :class:`~repro.session.ReasoningSession` versus
  :class:`DecomposedSession`; verdict agreement is a hard check, the
  speedup is reported but not gated;
* ``warm-delta-vs-cold-full`` — after a one-statement cardinality edit
  in a single island, a store-warm delta run (only the touched island
  rebuilds; ``components_reused == k-1`` is a hard check) versus a
  cold monolithic rebuild of the edited schema.  The acceptance bar:
  the warm delta is at least 2x faster.

Standalone runner (what CI's bench-smoke invokes)::

    PYTHONPATH=src python benchmarks/bench_components.py --quick \
        --output BENCH_components.json
"""

from __future__ import annotations

import sys
import tempfile
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.components import DecomposedSession
from repro.cr.schema import Card, CRSchema, Relationship
from repro.session import ReasoningSession, SessionCache
from repro.store import ArtifactStore

REPEATS = 3
"""Timed repetitions per path; the minimum is reported."""

SPEEDUP_BAR = 2.0
"""Acceptance bar: the store-warm delta run must beat a cold full
rebuild of the edited schema by this factor."""


def archipelago(islands: int, card: int = 2) -> CRSchema:
    """``islands`` independent two-class islands, each tied into one
    component by a binary relationship; ``card`` parameterises one
    declaration in the *last* island, so two calls with different
    values model a one-statement edit leaving every other island
    untouched.

    Island sizes are pinned at two classes because the monolithic
    expansion's compound-relationship count is a *product* over roles
    of subset counts over **all** classes — at four islands it already
    approaches the default :class:`~repro.cr.expansion.ExpansionLimits`
    ceiling, which is precisely the blow-up the decomposition avoids.
    """
    classes: list[str] = []
    relationships: list[Relationship] = []
    cards: dict[tuple[str, str, str], Card] = {}
    for i in range(islands):
        names = [f"I{i}K0", f"I{i}K1"]
        classes.extend(names)
        rel = f"I{i}R"
        relationships.append(
            Relationship(rel, ((f"I{i}u", names[0]), (f"I{i}v", names[1])))
        )
        value = card if i == islands - 1 else 2
        cards[(names[0], rel, f"I{i}u")] = Card(1, value)
    return CRSchema(
        classes=classes,
        relationships=relationships,
        cards=cards,
        name=f"Archipelago{islands}",
    )


def _timed(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_split_workload(islands: int) -> dict:
    """Cold whole-schema reasoning vs cold per-island reasoning."""
    schema = archipelago(islands)
    monolithic_verdicts = ReasoningSession(schema).satisfiable_classes()
    probe = DecomposedSession(schema)
    decomposed_verdicts = probe.satisfiable_classes()

    monolithic_s = _timed(
        lambda: ReasoningSession(schema).satisfiable_classes()
    )
    decomposed_s = _timed(
        lambda: DecomposedSession(schema).satisfiable_classes()
    )
    return {
        "workload": f"split-{islands}",
        "kind": "monolithic-vs-decomposed",
        "islands": islands,
        "classes": len(schema.classes),
        "baseline_s": monolithic_s,
        "candidate_s": decomposed_s,
        "speedup": monolithic_s / decomposed_s if decomposed_s > 0 else 0.0,
        "verdicts_agree": bool(monolithic_verdicts == decomposed_verdicts),
        "components_reused": 0,
        "components_rebuilt": probe.components_rebuilt,
    }


def run_delta_workload(islands: int) -> dict:
    """Store-warm delta after a one-island edit vs a cold full rebuild.

    Each repetition warms a *fresh* store on the old schema (untimed)
    before timing the delta run on the edited one — otherwise the first
    repetition's write-through would hand later repetitions a fully
    warm store and the minimum would measure reuse of the edit itself.
    """
    old = archipelago(islands, card=2)
    new = archipelago(islands, card=3)
    cold_verdicts = ReasoningSession(new).satisfiable_classes()

    reused = rebuilt = 0
    delta_verdicts: dict = {}
    best_delta = float("inf")
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as store_dir:
            warmer = DecomposedSession(
                old, cache=SessionCache(store=ArtifactStore(store_dir))
            )
            warmer.satisfiable_classes()
            start = time.perf_counter()
            session = DecomposedSession(
                new, cache=SessionCache(store=ArtifactStore(store_dir))
            )
            delta_verdicts = session.satisfiable_classes()
            best_delta = min(best_delta, time.perf_counter() - start)
            reused = session.components_reused
            rebuilt = session.components_rebuilt

    cold_full_s = _timed(lambda: ReasoningSession(new).satisfiable_classes())
    return {
        "workload": f"delta-{islands}",
        "kind": "warm-delta-vs-cold-full",
        "islands": islands,
        "classes": len(new.classes),
        "baseline_s": cold_full_s,
        "candidate_s": best_delta,
        "speedup": cold_full_s / best_delta if best_delta > 0 else 0.0,
        "verdicts_agree": bool(delta_verdicts == cold_verdicts),
        "components_reused": reused,
        "components_rebuilt": rebuilt,
    }


def workloads(quick: bool) -> list[int]:
    return [3] if quick else [3, 4]


def run_benchmarks(quick: bool = False) -> dict:
    entries = []
    for islands in workloads(quick):
        entries.append(run_split_workload(islands))
        entries.append(run_delta_workload(islands))
    delta_speedups = [
        entry["speedup"]
        for entry in entries
        if entry["kind"] == "warm-delta-vs-cold-full"
    ]
    return {
        "benchmark": "components",
        "version": 1,
        "quick": quick,
        "speedup_bar": SPEEDUP_BAR,
        "entries": entries,
        "summary": {
            "workloads": len(entries),
            "min_delta_speedup": min(delta_speedups),
            "max_delta_speedup": max(delta_speedups),
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "kind": str,
    "islands": int,
    "classes": int,
    "baseline_s": float,
    "candidate_s": float,
    "speedup": float,
    "verdicts_agree": bool,
    "components_reused": int,
    "components_rebuilt": int,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_components.json payload; returns the report for chaining."""
    entries = check_report_shape(report, "components")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if not entry["verdicts_agree"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: decomposed verdicts "
                "disagree with the monolithic session"
            )
        if entry["kind"] == "warm-delta-vs-cold-full":
            if entry["components_rebuilt"] != 1:
                raise ValueError(
                    f"entry {entry.get('workload')!r}: a one-island edit "
                    f"must rebuild exactly one component, rebuilt "
                    f"{entry['components_rebuilt']}"
                )
            if entry["components_reused"] != entry["islands"] - 1:
                raise ValueError(
                    f"entry {entry.get('workload')!r}: every untouched "
                    "island must come back warm from the store"
                )
    summary = check_summary(report)
    min_delta = summary.get("min_delta_speedup")
    if not isinstance(min_delta, float):
        raise ValueError("summary.min_delta_speedup must be a float")
    if min_delta < SPEEDUP_BAR:
        raise ValueError(
            f"acceptance bar missed: min warm-delta speedup "
            f"{min_delta:.1f}x is below {SPEEDUP_BAR:.0f}x"
        )
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_warm_delta_rebuilds_one_island(benchmark):
    from benchmarks.conftest import paper_row

    entry = benchmark.pedantic(
        run_delta_workload, args=(3,), rounds=1, iterations=1
    )
    assert entry["verdicts_agree"]
    assert entry["components_rebuilt"] == 1
    paper_row(
        "E17/components",
        "a one-statement edit re-expands one island, not the schema",
        f"{entry['components_reused']} island(s) reused, "
        f"delta {entry['speedup']:.1f}x faster than a full rebuild",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
    )
    validate_report(report)
    assert report["summary"]["min_delta_speedup"] >= SPEEDUP_BAR


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description=(
            "component decomposition vs monolithic reasoning; emits "
            "BENCH_components.json"
        ),
        default_output="BENCH_components.json",
        quick_help="fewer/smaller archipelagos (CI)",
        run=lambda args: run_benchmarks(quick=args.quick),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<12} {entry['kind']:<26}"
            f" baseline {entry['baseline_s']*1e3:9.2f} ms"
            f"  candidate {entry['candidate_s']*1e3:9.2f} ms"
            f"  speedup {entry['speedup']:7.1f}x"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads, "
            f"warm-delta speedup "
            f"{report['summary']['min_delta_speedup']:.1f}x–"
            f"{report['summary']['max_delta_speedup']:.1f}x "
            f"(bar: {SPEEDUP_BAR:.0f}x)"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
