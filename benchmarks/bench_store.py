"""E15 — the persistent artifact store: restore-from-disk vs rebuild.

Paper context: BENCH_session shows the exponential Section-3.1
expansion amortising across one process's queries; this module measures
the *cross-process* version of the same economics.  A cold process pays
the expansion + pruned ``Ψ_S`` + acceptability fixpoint and writes the
warm bundle through to the :mod:`repro.store` tier; the next process
restores the bundle (checksum-verified pickle) instead of rebuilding.
The report records both totals, the restore speedup, and the raw store
round-trip throughput, and ``validate_report`` asserts the structural
guarantees the timings rest on: the warm process ran **zero** fixpoints
and answered entirely from persisted-store hits.

Standalone runner (what CI's bench-smoke invokes)::

    PYTHONPATH=src python benchmarks/bench_store.py --quick \
        --output BENCH_store.json
"""

from __future__ import annotations

import sys
import tempfile
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from benchmarks.bench_session import batch_queries, chain_schema
from repro.cr.schema import CRSchema
from repro.paper import (
    figure1_schema,
    meeting_schema,
    refined_meeting_schema,
)
from repro.session import ReasoningSession, SessionCache
from repro.store import ArtifactStore

BATCH_SIZE = 30
"""Queries per workload batch."""

ROUND_TRIPS = 200
"""Entries written and re-read by the raw-throughput micro-benchmark."""


def _answer(session: ReasoningSession, query) -> None:
    kind, payload = query
    if kind == "sat":
        session.is_class_satisfiable(payload)
    else:
        session.implies(payload)


def run_workload(label: str, schema: CRSchema, size: int = BATCH_SIZE) -> dict:
    """One workload: a cold process persists, a fresh process restores.

    Each phase opens its own :class:`SessionCache` and
    :class:`ArtifactStore` over the shared directory — exactly what two
    OS processes sharing a ``REPRO_CACHE_DIR`` do, minus the exec.
    """
    queries = batch_queries(schema, size)
    with tempfile.TemporaryDirectory() as root:
        cold_session = ReasoningSession(
            schema, cache=SessionCache(store=ArtifactStore(root))
        )
        cold_start = time.perf_counter()
        for query in queries:
            _answer(cold_session, query)
        cold_total = time.perf_counter() - cold_start

        warm_session = ReasoningSession(
            schema, cache=SessionCache(store=ArtifactStore(root))
        )
        warm_start = time.perf_counter()
        for query in queries:
            _answer(warm_session, query)
        warm_total = time.perf_counter() - warm_start

        cold_stats = cold_session.stats
        warm_stats = warm_session.stats
        return {
            "workload": label,
            "schema": schema.name,
            "queries": len(queries),
            "cold_total_s": cold_total,
            "warm_total_s": warm_total,
            "speedup": (
                cold_total / warm_total if warm_total > 0 else float("inf")
            ),
            "store_writes": cold_stats.store_writes,
            "warm_store_hits": warm_stats.store_hits,
            "warm_fixpoint_runs": warm_stats.fixpoint_runs,
            "warm_expansion_builds": warm_stats.expansion_builds,
        }


def round_trip_throughput(count: int = ROUND_TRIPS) -> dict:
    """Raw put/get cost of the checksummed envelope + lock protocol."""
    payload = {
        "support": frozenset(f"x{i}" for i in range(64)),
        "witness": {f"x{i}": i + 1 for i in range(64)},
    }
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        fingerprints = [f"{i:064x}" for i in range(count)]
        put_start = time.perf_counter()
        for fingerprint in fingerprints:
            store.put(fingerprint, payload)
        put_total = time.perf_counter() - put_start
        get_start = time.perf_counter()
        for fingerprint in fingerprints:
            assert store.get(fingerprint) == payload
        get_total = time.perf_counter() - get_start
        verify_start = time.perf_counter()
        outcome = store.verify()
        verify_total = time.perf_counter() - verify_start
        assert outcome.valid == count
        return {
            "entries": count,
            "puts_per_s": count / put_total if put_total > 0 else float("inf"),
            "gets_per_s": count / get_total if get_total > 0 else float("inf"),
            "verify_total_s": verify_total,
        }


def workloads(quick: bool) -> list[tuple[str, CRSchema]]:
    entries: list[tuple[str, CRSchema]] = [
        ("figure1", figure1_schema()),
        ("figures3-5:meeting", meeting_schema()),
        ("figure6:refined-meeting", refined_meeting_schema()),
    ]
    for k in (16,) if quick else (16, 32, 64):
        entries.append((f"synthetic:chain{k}", chain_schema(k)))
    return entries


def run_benchmarks(quick: bool = False, size: int = BATCH_SIZE) -> dict:
    entries = [
        run_workload(label, schema, size)
        for label, schema in workloads(quick)
    ]
    speedups = [entry["speedup"] for entry in entries]
    return {
        "benchmark": "store",
        "version": 1,
        "quick": quick,
        "batch_size": size,
        "entries": entries,
        "round_trip": round_trip_throughput(
            ROUND_TRIPS // 4 if quick else ROUND_TRIPS
        ),
        "summary": {
            "workloads": len(entries),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "schema": str,
    "queries": int,
    "cold_total_s": float,
    "warm_total_s": float,
    "speedup": float,
    "store_writes": int,
    "warm_store_hits": int,
    "warm_fixpoint_runs": int,
    "warm_expansion_builds": int,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_store.json payload; returns the report for chaining.

    The bars are structural rather than wall-clock (CI timing is
    noisy): the warm process must answer with zero fixpoint runs and
    zero expansion builds, entirely from persisted-store hits the cold
    process wrote.
    """
    entries = check_report_shape(report, "store")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if entry["store_writes"] < 1:
            raise ValueError(
                f"entry {entry.get('workload')!r}: the cold process "
                "persisted nothing"
            )
        if entry["warm_store_hits"] < entry["store_writes"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: the warm process missed "
                "entries the cold process wrote"
            )
        if entry["warm_fixpoint_runs"] != 0:
            raise ValueError(
                f"entry {entry.get('workload')!r}: warm process re-ran the "
                f"fixpoint {entry['warm_fixpoint_runs']} time(s)"
            )
        if entry["warm_expansion_builds"] != 0:
            raise ValueError(
                f"entry {entry.get('workload')!r}: warm process rebuilt the "
                f"expansion {entry['warm_expansion_builds']} time(s)"
            )
    round_trip = report.get("round_trip")
    if not isinstance(round_trip, dict) or round_trip.get("entries", 0) < 1:
        raise ValueError("report['round_trip'] must describe >= 1 entry")
    summary = check_summary(report)
    if not isinstance(summary.get("min_speedup"), float):
        raise ValueError("summary.min_speedup must be a float")
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_restore_beats_rebuild(benchmark):
    from benchmarks.conftest import paper_row

    schema = meeting_schema()
    queries = batch_queries(schema, BATCH_SIZE)
    with tempfile.TemporaryDirectory() as root:
        cold = ReasoningSession(
            schema, cache=SessionCache(store=ArtifactStore(root))
        )
        for query in queries:
            _answer(cold, query)

        def warm_process():
            session = ReasoningSession(
                schema, cache=SessionCache(store=ArtifactStore(root))
            )
            for query in queries:
                _answer(session, query)
            return session

        session = benchmark(warm_process)
    stats = session.stats
    assert stats.fixpoint_runs == 0
    assert stats.store_hits > 0
    paper_row(
        "E15/store",
        "warm bundle restored from the persistent tier",
        f"{len(queries)} queries, {stats.store_hits} store hit(s), "
        "0 fixpoint re-runs",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks,
        kwargs={"quick": True, "size": 10},
        rounds=1,
        iterations=1,
    )
    validate_report(report)


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description="persistent-store benchmark; emits BENCH_store.json",
        default_output="BENCH_store.json",
        quick_help="fewer synthetic workloads and round trips (CI)",
        add_arguments=lambda parser: parser.add_argument(
            "--batch-size", type=int, default=BATCH_SIZE, metavar="N"
        ),
        run=lambda args: run_benchmarks(
            quick=args.quick, size=args.batch_size
        ),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<24} cold {entry['cold_total_s']*1e3:9.1f} ms"
            f"  warm {entry['warm_total_s']*1e3:8.1f} ms"
            f"  speedup {entry['speedup']:7.1f}x"
            f"  hits {entry['warm_store_hits']}"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads, "
            f"restore speedup {report['summary']['min_speedup']:.1f}x–"
            f"{report['summary']['max_speedup']:.1f}x, "
            f"{report['round_trip']['puts_per_s']:.0f} puts/s, "
            f"{report['round_trip']['gets_per_s']:.0f} gets/s"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
