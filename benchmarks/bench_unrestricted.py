"""E13 — the finite vs unrestricted gap the paper's Figure 1 motivates.

Paper claim: "it may happen that there exists a class in the schema
that is necessarily empty … in all finite database states" — with
Figure 1 as the example.  Implicit in that sentence is the gap this
benchmark measures: the same schema *does* have infinite models, so
finite-model reasoning (the paper's contribution) is genuinely
different from classical reasoning.

Reproduction: on Figure 1 and the Section-3.3 refinement, the finite
engine says NO while the unrestricted (type-elimination) engine says
YES; on the meeting schema both say YES.  Timings compare the two
procedures (the unrestricted one needs no linear programming at all).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import paper_row
from repro.cr.satisfiability import satisfiable_classes
from repro.cr.unrestricted import unrestricted_satisfiable_classes
from repro.paper import figure1_schema, meeting_schema, refined_meeting_schema

GAP_CASES = [
    ("figure1", figure1_schema, {"C": False, "D": False}, {"C": True, "D": True}),
    (
        "meeting",
        meeting_schema,
        {"Speaker": True, "Discussant": True, "Talk": True},
        {"Speaker": True, "Discussant": True, "Talk": True},
    ),
    (
        "refined-meeting",
        refined_meeting_schema,
        {"Speaker": False, "Discussant": False, "Talk": False},
        {"Speaker": True, "Discussant": True, "Talk": True},
    ),
]


@pytest.mark.parametrize("name,factory,finite,unrestricted", GAP_CASES)
def test_finite_engine(benchmark, name, factory, finite, unrestricted):
    schema = factory()
    verdicts = benchmark(satisfiable_classes, schema)
    assert verdicts == finite


@pytest.mark.parametrize("name,factory,finite,unrestricted", GAP_CASES)
def test_unrestricted_engine(benchmark, name, factory, finite, unrestricted):
    schema = factory()
    verdicts = benchmark(unrestricted_satisfiable_classes, schema)
    assert verdicts == unrestricted
    gap = {cls for cls in verdicts if verdicts[cls] != finite[cls]}
    paper_row(
        "E13/finite-vs-unrestricted",
        "classes may be empty in all finite states yet populable "
        "in infinite ones",
        f"{name}: gap classes = {sorted(gap) if gap else 'none'}",
    )
