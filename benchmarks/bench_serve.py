"""E16 — the serve daemon: request throughput over the shared cache.

Paper context: BENCH_session prices the Section-3.1 expansion
amortising across one process's queries and BENCH_store across
processes; this module prices the *service* form of the same economics.
A live in-process daemon answers ``/batch`` requests over HTTP: the
first request pays the cold pipeline, every later request — from any
client — rides the process-wide warm cache, so request latency drops to
transport + lookup.  The report records the cold/warm split, the
differential parity bit (served records versus the serial
:func:`~repro.parallel.worker.answer_query` oracle), and sustained
req/s with p50/p99 latency at 1, 8, and 32 concurrent clients.

``validate_report`` keeps structural bars (parity must hold, the warm
path must beat cold by ≥ 2×, percentiles must be ordered) rather than
absolute wall-clock bars — CI boxes are noisy; shape is not.

Standalone runner (what CI's bench-smoke invokes)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --output BENCH_serve.json
"""

from __future__ import annotations

import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.cli import parse_batch_query
from repro.dsl import serialize_schema
from repro.paper import meeting_schema, refined_meeting_schema
from repro.parallel.worker import answer_query
from repro.serve import ServeClient, ServeConfig, running_server
from repro.session import ReasoningSession

CONCURRENCY_LEVELS = (1, 8, 32)
"""Client counts for the sustained-throughput sweep."""

REQUESTS_PER_LEVEL = 96
"""Requests per concurrency level (divisible by every level)."""

QUERY_LINES = [
    "sat Speaker",
    "sat Talk",
    "Discussant isa Speaker",
    "Talk isa Speaker",
    "maxc(Talk, Holds, U2) = 1",
    "disjoint(Speaker, Talk)",
]


def _schema_texts() -> dict[str, str]:
    return {
        "meeting": serialize_schema(meeting_schema()),
        "refined-meeting": serialize_schema(refined_meeting_schema()),
    }


def _oracle_records(text: str) -> list[dict]:
    """The serial formatter's records — the parity reference."""
    from repro.dsl import parse_schema

    session = ReasoningSession(parse_schema(text))
    return [
        answer_query(session, kind, payload)[0]
        for kind, payload in map(parse_batch_query, QUERY_LINES)
    ]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def cold_vs_warm(text: str, warm_samples: int) -> dict:
    """First-request cost vs steady-state cost on one fresh daemon,
    plus the parity bit against the serial oracle."""
    expected = _oracle_records(text)
    with tempfile.TemporaryDirectory() as tmp:
        config = ServeConfig(cache_dir=str(Path(tmp) / "store"))
        with running_server(config) as server:
            client = ServeClient(server.base_url)
            cold_start = time.perf_counter()
            status, payload = client.batch(text, QUERY_LINES)
            cold_ms = (time.perf_counter() - cold_start) * 1000.0
            parity = status == 200 and payload["results"] == expected
            warm_times = []
            for _ in range(warm_samples):
                warm_start = time.perf_counter()
                status, payload = client.batch(text, QUERY_LINES)
                warm_times.append((time.perf_counter() - warm_start) * 1000.0)
                parity = parity and status == 200 and payload["results"] == expected
    warm_times.sort()
    warm_ms = warm_times[len(warm_times) // 2]
    return {
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "warm_speedup": cold_ms / warm_ms if warm_ms > 0 else float("inf"),
        "parity": parity,
    }


def throughput(
    server, texts: dict[str, str], concurrency: int, requests: int
) -> dict:
    """Sustained req/s and latency percentiles on an already-warm daemon."""
    names = sorted(texts)

    def client_loop(client_index: int) -> list[float]:
        client = ServeClient(server.base_url)
        latencies = []
        for request_index in range(requests // concurrency):
            text = texts[names[(client_index + request_index) % len(names)]]
            start = time.perf_counter()
            status, payload = client.batch(text, QUERY_LINES)
            latencies.append((time.perf_counter() - start) * 1000.0)
            assert status == 200, payload
        return latencies

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        latencies = [
            latency
            for chunk in pool.map(client_loop, range(concurrency))
            for latency in chunk
        ]
    wall = time.perf_counter() - wall_start
    latencies.sort()
    return {
        "workload": f"throughput:conc{concurrency}",
        "concurrency": concurrency,
        "requests": len(latencies),
        "req_per_s": len(latencies) / wall if wall > 0 else float("inf"),
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
    }


def run_benchmarks(quick: bool = False, requests: int = REQUESTS_PER_LEVEL) -> dict:
    texts = _schema_texts()
    if quick:
        requests = min(requests, 32)
    entries = []
    with running_server(ServeConfig(max_inflight=max(CONCURRENCY_LEVELS))) as server:
        # Warm every schema once so the sweep prices the service, not
        # the one-off cold build (cold_warm below prices that).
        warmup = ServeClient(server.base_url)
        for text in texts.values():
            status, _ = warmup.batch(text, QUERY_LINES)
            assert status == 200
        for concurrency in CONCURRENCY_LEVELS:
            entries.append(throughput(server, texts, concurrency, requests))
        _, metrics = warmup.metrics()
    return {
        "benchmark": "serve",
        "version": 1,
        "quick": quick,
        "entries": entries,
        "cold_warm": cold_vs_warm(
            texts["meeting"], warm_samples=5 if quick else 15
        ),
        "server_stats": {
            "requests_total": metrics["server"]["requests_total"],
            "rejected_busy": metrics["server"]["rejected_busy"],
            "cache_hits": metrics["cache"]["hits"],
            "fixpoint_runs": metrics["cache"]["fixpoint_runs"],
        },
        "summary": {
            "workloads": len(entries),
            "max_req_per_s": max(entry["req_per_s"] for entry in entries),
            "warm_speedup": None,  # filled below for summary_line symmetry
        },
    }


def _finish_summary(report: dict) -> dict:
    report["summary"]["warm_speedup"] = report["cold_warm"]["warm_speedup"]
    return report


_ENTRY_KEYS = {
    "workload": str,
    "concurrency": int,
    "requests": int,
    "req_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_serve.json payload; returns the report for chaining."""
    entries = check_report_shape(report, "serve")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if entry["requests"] < entry["concurrency"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: fewer requests than clients"
            )
        if entry["req_per_s"] <= 0:
            raise ValueError(
                f"entry {entry.get('workload')!r}: non-positive throughput"
            )
        if entry["p50_ms"] > entry["p99_ms"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: p50 above p99"
            )
    cold_warm = report.get("cold_warm")
    if not isinstance(cold_warm, dict):
        raise ValueError("report['cold_warm'] must be an object")
    if cold_warm.get("parity") is not True:
        raise ValueError(
            "served records diverged from the serial oracle (parity=False)"
        )
    if not cold_warm.get("warm_speedup", 0) >= 2.0:
        raise ValueError(
            f"warm requests must beat the cold build by >= 2x, got "
            f"{cold_warm.get('warm_speedup')!r}"
        )
    stats = report.get("server_stats")
    if not isinstance(stats, dict) or stats.get("rejected_busy", 0) != 0:
        raise ValueError(
            "the sweep saturated the daemon (rejected_busy != 0); "
            "its throughput numbers under-count"
        )
    summary = check_summary(report)
    if not isinstance(summary.get("max_req_per_s"), float):
        raise ValueError("summary.max_req_per_s must be a float")
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_warm_requests_beat_the_cold_build(benchmark):
    from benchmarks.conftest import paper_row

    text = _schema_texts()["meeting"]
    expected = _oracle_records(text)
    with running_server(ServeConfig()) as server:
        client = ServeClient(server.base_url)
        status, payload = client.batch(text, QUERY_LINES)  # cold build
        assert status == 200 and payload["results"] == expected

        def warm_request():
            status, payload = client.batch(text, QUERY_LINES)
            assert status == 200
            return payload

        payload = benchmark(warm_request)
    assert payload["results"] == expected
    paper_row(
        "E16/serve",
        "warm HTTP requests over the shared session cache",
        f"{len(QUERY_LINES)} queries per request, records identical to "
        "the serial formatter",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks,
        kwargs={"quick": True, "requests": 32},
        rounds=1,
        iterations=1,
    )
    validate_report(_finish_summary(report))


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description="serve-daemon benchmark; emits BENCH_serve.json",
        default_output="BENCH_serve.json",
        quick_help="fewer requests per level and warm samples (CI)",
        add_arguments=lambda parser: parser.add_argument(
            "--requests", type=int, default=REQUESTS_PER_LEVEL, metavar="N"
        ),
        run=lambda args: _finish_summary(
            run_benchmarks(quick=args.quick, requests=args.requests)
        ),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<20} {entry['requests']:4d} requests"
            f"  {entry['req_per_s']:8.1f} req/s"
            f"  p50 {entry['p50_ms']:7.2f} ms"
            f"  p99 {entry['p99_ms']:7.2f} ms"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} levels, "
            f"peak {report['summary']['max_req_per_s']:.0f} req/s, "
            f"cold {report['cold_warm']['cold_ms']:.1f} ms -> warm "
            f"{report['cold_warm']['warm_ms']:.2f} ms "
            f"({report['cold_warm']['warm_speedup']:.0f}x)"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
