"""E7 — Figure 7: implications drawn from the meeting schema.

Paper content (Figure 7): the schema implies

* ``Speaker ≼ Discussant``,
* ``maxc(Talk, Participates, U4) = 1``,
* ``maxc(Speaker, Holds, U1) = 1``.

Reproduction: all three derive (with both implication reductions of
Section 4 exercised), and non-implications produce verified
counter-models.  Benchmarks measure the ISA reduction and the
``C_exc`` cardinality reduction separately.
"""

from __future__ import annotations

from benchmarks.conftest import paper_row
from repro.cr.checker import check_model
from repro.cr.implication import (
    implies,
    implies_isa,
    implies_max_cardinality,
)
from repro.paper import figure7_queries
from repro.render import render_inferences


def test_isa_inference(benchmark, meeting):
    result = benchmark(implies_isa, meeting, "Speaker", "Discussant")
    assert result.implied
    paper_row("E7/Figure7", "S |= Speaker isa Discussant", result.pretty())


def test_maxc_participates_inference(benchmark, meeting):
    result = benchmark(
        implies_max_cardinality, meeting, "Talk", "Participates", "U4", 1
    )
    assert result.implied
    paper_row(
        "E7/Figure7", "S |= maxc(Talk, Participates, U4) = 1", result.pretty()
    )


def test_maxc_holds_inference(benchmark, meeting):
    result = benchmark(
        implies_max_cardinality, meeting, "Speaker", "Holds", "U1", 1
    )
    assert result.implied
    paper_row(
        "E7/Figure7", "S |= maxc(Speaker, Holds, U1) = 1", result.pretty()
    )


def test_all_figure7_rows_regenerate(benchmark, meeting):
    results = benchmark(
        lambda: [implies(meeting, query) for query in figure7_queries()]
    )
    assert all(result.implied for result in results)
    text = render_inferences(results)
    assert text.splitlines() == [
        "S |= Speaker isa Discussant",
        "S |= maxc(Talk, Participates, U4) = 1",
        "S |= maxc(Speaker, Holds, U1) = 1",
    ]
    print("\n" + text)


def test_non_implication_with_countermodel(benchmark, meeting):
    result = benchmark(implies_isa, meeting, "Talk", "Speaker")
    assert not result.implied
    assert check_model(meeting, result.countermodel) == []
