"""E14 — static analysis short-circuit: analyzer vs. full pipeline.

Paper context: deciding finite satisfiability via Theorem 3.3 pays the
Section-3.1 expansion, which is exponential in the class set.  The
static analyzer (:mod:`repro.analysis`) is polynomial and sound: when
one of its ``error`` diagnostics proves a class empty in every model,
the pipeline can serve the UNSAT verdict without expanding at all.

This module measures exactly that trade on precheck-resolvable
workloads — schemas whose unsatisfiability the analyzer proves
statically — comparing the full expansion-based decision against the
``precheck=True`` short-circuit.  It is both a pytest-benchmark suite
(``pytest benchmarks/bench_analysis.py --benchmark-only``) and a
standalone runner that emits the repo's perf-trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_analysis.py --quick \
        --output BENCH_analysis.json

``validate_report`` is the schema check CI runs against the emitted
JSON; it enforces the acceptance bar (every workload short-circuits,
verdicts agree with the full procedure, and the analyzer is at least
5x faster).
"""

from __future__ import annotations

import sys
import time

from benchmarks._emit import (
    check_entry_fields,
    check_report_shape,
    check_summary,
    run_emit_main,
)
from repro.analysis import analyze
from repro.cr.builder import SchemaBuilder
from repro.cr.satisfiability import ANALYSIS_ENGINE, is_class_satisfiable
from repro.cr.schema import CRSchema

REPEATS = 3
"""Timed repetitions per path; the minimum is reported."""

SPEEDUP_BAR = 5.0
"""Acceptance bar: the analyzer must beat the full pipeline by this."""


def conflict_antichain(k: int) -> tuple[CRSchema, str]:
    """``k`` ISA-unrelated classes (expansion ``2^k - 1``) plus one
    subclass whose refinement contradicts its inherited maxc — the
    statically provable emptiness the analyzer is built to catch."""
    builder = SchemaBuilder(f"ConflictAntichain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    builder.cls("Bad")
    builder.relationship("R", U1="K0", U2="K1")
    builder.isa("Bad", "K0")
    builder.card("K0", "R", "U1", minc=0, maxc=1)
    builder.card("Bad", "R", "U1", minc=2)
    return builder.build(), "Bad"


def disjoint_antichain(k: int) -> tuple[CRSchema, str]:
    """``k`` ISA-unrelated classes plus a class inheriting from two
    declared-disjoint roots — the other statically provable emptiness
    seed (``isa-disjoint-conflict``)."""
    builder = SchemaBuilder(f"DisjointAntichain{k}")
    for i in range(k):
        builder.cls(f"K{i}")
    builder.classes("D1", "D2", "Bad")
    builder.relationship("R", U1="K0", U2="K1")
    builder.isa("Bad", "D1")
    builder.isa("Bad", "D2")
    builder.disjoint("D1", "D2")
    return builder.build(), "Bad"


def _timed(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_workload(label: str, schema: CRSchema, cls: str) -> dict:
    """Full-pipeline vs. analyzer-short-circuit latency for one query."""
    full = is_class_satisfiable(schema, cls)
    fast = is_class_satisfiable(schema, cls, precheck=True)
    report = analyze(schema)

    full_s = _timed(lambda: is_class_satisfiable(schema, cls))
    analysis_s = _timed(
        lambda: is_class_satisfiable(schema, cls, precheck=True)
    )
    return {
        "workload": label,
        "schema": schema.name,
        "classes": len(schema.classes),
        "query_class": cls,
        "full_s": full_s,
        "analysis_s": analysis_s,
        "speedup": full_s / analysis_s if analysis_s > 0 else float("inf"),
        "short_circuited": fast.engine == ANALYSIS_ENGINE,
        "verdicts_agree": bool(fast.satisfiable == full.satisfiable),
        "diagnostic_code": (
            fast.diagnostic.code if fast.diagnostic is not None else None
        ),
        "witness_verified": bool(report.verify(schema)),
    }


def workloads(quick: bool) -> list[tuple[str, CRSchema, str]]:
    conflict_sizes = (6, 7) if quick else (6, 7, 8)
    # K0/K1 pair with two free disjointness roots: the compound-
    # relationship count clears the default ExpansionLimits only up to 7.
    disjoint_sizes = (6, 7)
    entries = [
        (f"conflict-antichain{k}", *conflict_antichain(k))
        for k in conflict_sizes
    ]
    entries.extend(
        (f"disjoint-antichain{k}", *disjoint_antichain(k))
        for k in disjoint_sizes
    )
    return entries


def run_benchmarks(quick: bool = False) -> dict:
    entries = [
        run_workload(label, schema, cls)
        for label, schema, cls in workloads(quick)
    ]
    speedups = [entry["speedup"] for entry in entries]
    return {
        "benchmark": "analysis",
        "version": 1,
        "quick": quick,
        "speedup_bar": SPEEDUP_BAR,
        "entries": entries,
        "summary": {
            "workloads": len(entries),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        },
    }


_ENTRY_KEYS = {
    "workload": str,
    "schema": str,
    "classes": int,
    "query_class": str,
    "full_s": float,
    "analysis_s": float,
    "speedup": float,
    "short_circuited": bool,
    "verdicts_agree": bool,
    "diagnostic_code": str,
    "witness_verified": bool,
}


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` is a well-formed
    BENCH_analysis.json payload; returns the report for chaining."""
    entries = check_report_shape(report, "analysis")
    for entry in entries:
        check_entry_fields(entry, _ENTRY_KEYS)
        if not entry["short_circuited"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: the analyzer failed to "
                "short-circuit a precheck-resolvable schema"
            )
        if not entry["verdicts_agree"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: short-circuit verdict "
                "disagrees with the full decision procedure"
            )
        if not entry["witness_verified"]:
            raise ValueError(
                f"entry {entry.get('workload')!r}: a carried witness failed "
                "re-verification"
            )
    summary = check_summary(report)
    min_speedup = summary.get("min_speedup")
    if not isinstance(min_speedup, float):
        raise ValueError("summary.min_speedup must be a float")
    if min_speedup < SPEEDUP_BAR:
        raise ValueError(
            f"acceptance bar missed: min speedup {min_speedup:.1f}x is "
            f"below {SPEEDUP_BAR:.0f}x"
        )
    return report


# -- pytest-benchmark entry points (pytest benchmarks/ --benchmark-only) ----


def test_short_circuit_skips_the_expansion(benchmark):
    from benchmarks.conftest import paper_row

    schema, cls = conflict_antichain(8)
    result = benchmark(
        lambda: is_class_satisfiable(schema, cls, precheck=True)
    )
    assert result.engine == ANALYSIS_ENGINE
    assert result.cr_system is None
    paper_row(
        "E14/analysis",
        "polynomial static proof replaces the exponential expansion",
        f"UNSAT({cls}) served from a {result.diagnostic.code} diagnostic",
    )


def test_report_is_wellformed(benchmark):
    report = benchmark.pedantic(
        run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
    )
    validate_report(report)
    assert report["summary"]["min_speedup"] >= SPEEDUP_BAR


def main(argv: list[str] | None = None) -> int:
    return run_emit_main(
        argv,
        description="analyzer vs full pipeline; emits BENCH_analysis.json",
        default_output="BENCH_analysis.json",
        quick_help="smaller antichain sizes (CI)",
        run=lambda args: run_benchmarks(quick=args.quick),
        validate=validate_report,
        entry_line=lambda entry: (
            f"{entry['workload']:<24} full {entry['full_s']*1e3:9.2f} ms"
            f"  analysis {entry['analysis_s']*1e3:8.3f} ms"
            f"  speedup {entry['speedup']:9.1f}x"
            f"  [{entry['diagnostic_code']}]"
        ),
        summary_line=lambda report, output: (
            f"-> {output}: {report['summary']['workloads']} workloads, "
            f"speedup {report['summary']['min_speedup']:.1f}x–"
            f"{report['summary']['max_speedup']:.1f}x "
            f"(bar: {SPEEDUP_BAR:.0f}x)"
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
