"""Finite vs infinite models: why the paper exists.

The motivating observation of the paper (its Figure 1): ISA and
cardinality constraints can interact so that a class is *necessarily
empty in every finite database state* — even though the schema is
perfectly consistent classically, i.e. has infinite models.  Databases
are finite, so design tools need **finite-model** reasoning, and that
is what the paper's procedure delivers.

This example runs both engines side by side, shows the gap on the
paper's two broken schemas, prints the verified proof of finite
unsatisfiability, and finishes by loading a constructed witness model
into the integrity-enforcing store (problem (c) of the paper's intro).

Run with::

    python examples/finite_vs_infinite.py
"""

from repro import (
    Database,
    construct_model_for_result,
    explain_unsatisfiability,
    is_class_satisfiable,
    satisfiable_classes,
    unrestricted_satisfiable_classes,
)
from repro.er import render_er_diagram
from repro.paper import (
    figure1_er,
    figure1_schema,
    meeting_schema,
    refined_meeting_schema,
)


def compare(name, schema):
    finite = satisfiable_classes(schema)
    unrestricted = unrestricted_satisfiable_classes(schema)
    print(f"{name}:")
    print(f"  {'class':12} {'finite':>8} {'unrestricted':>13}")
    for cls in schema.classes:
        marker = "   <-- the gap" if finite[cls] != unrestricted[cls] else ""
        print(
            f"  {cls:12} {str(finite[cls]):>8} "
            f"{str(unrestricted[cls]):>13}{marker}"
        )
    return finite, unrestricted


def main() -> None:
    print("=== Figure 1: the motivating diagram ===")
    print(render_er_diagram(figure1_er()))
    print()
    schema = figure1_schema()
    compare("figure-1 schema", schema)

    print(
        "\nIn any FINITE state: 2|C| <= |R| <= |D| <= |C|, so C is empty."
        "\nWith infinitely many C's the ratio costs nothing — hence the gap."
    )

    print("\nThe finite engine's verdict comes with a verifiable proof:")
    explanation = explain_unsatisfiability(schema, "D")
    assert explanation.verify()
    print(explanation.pretty())

    print("\n=== The meeting schema: no gap ===")
    compare("meeting", meeting_schema())

    print("\n=== The Section-3.3 refinement: the gap swallows everything ===")
    compare("refined meeting", refined_meeting_schema())

    print("\n=== From verdict to data: populate a store (problem (c)) ===")
    meeting = meeting_schema()
    result = is_class_satisfiable(meeting, "Speaker")
    model = construct_model_for_result(result)
    database = Database.from_interpretation(meeting, model)
    print(f"loaded the witness model into {database!r}")
    print(
        "every commit is re-validated against Definition 2.2, so the "
        "store can only ever hold models of the schema."
    )


if __name__ == "__main__":
    main()
