"""Quickstart: the paper's meeting example, end to end.

Builds the CR-schema of Figure 3, checks that the design can be
populated, constructs an explicit database state witnessing it,
and derives the (surprising) constraints of Figure 7.

Run with::

    python examples/quickstart.py
"""

from repro import (
    SchemaBuilder,
    check_model,
    construct_model_for_result,
    implies_isa,
    implies_max_cardinality,
    is_class_satisfiable,
    satisfiable_classes,
)
from repro.render import render_interpretation, render_schema


def main() -> None:
    # A meeting consists of talks.  Each talk has exactly one speaker
    # and at least one discussant; each discussant joins exactly one
    # talk; every discussant is also a speaker; discussant-speakers hold
    # at most two talks (a *refinement* of the speaker cardinality).
    schema = (
        SchemaBuilder("Meeting")
        .classes("Speaker", "Discussant", "Talk")
        .isa("Discussant", "Speaker")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .relationship("Participates", U3="Discussant", U4="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Discussant", "Holds", "U1", maxc=2)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .card("Discussant", "Participates", "U3", minc=1, maxc=1)
        .card("Talk", "Participates", "U4", minc=1)
        .build()
    )

    print("The schema (Figure 3 of the paper):")
    print(render_schema(schema))
    print()

    # 1. Design health: can every class be populated in a FINITE state?
    print("Class satisfiability:", satisfiable_classes(schema))

    # 2. A concrete witness: an explicit finite database state.
    result = is_class_satisfiable(schema, "Speaker")
    model = construct_model_for_result(result)
    assert check_model(schema, model) == [], "the witness must be a model"
    print("\nA finite database state populating Speaker:")
    print(render_interpretation(model))

    # 3. Implication: constraints the schema forces without stating them.
    print("\nImplied constraints (Figure 7):")
    for description, result in [
        (
            "every speaker is a discussant",
            implies_isa(schema, "Speaker", "Discussant"),
        ),
        (
            "every talk has at most one participant",
            implies_max_cardinality(schema, "Talk", "Participates", "U4", 1),
        ),
        (
            "every speaker holds at most one talk",
            implies_max_cardinality(schema, "Speaker", "Holds", "U1", 1),
        ),
    ]:
        print(f"  {result.pretty():45}  ({description})")

    # 4. A non-implication comes with an explicit counter-model.
    control = implies_isa(schema, "Talk", "Speaker")
    print(f"\nControl: {control.pretty()}")
    print("Counter-model:", control.countermodel.summary())


if __name__ == "__main__":
    main()
