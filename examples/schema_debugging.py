"""Schema debugging: find and fix unsatisfiable designs.

The paper's conclusion sketches an assistant that "provides the
designer with a minimum number of constraints that are unsatisfiable".
This example runs that assistant on both of the paper's broken schemas:

* Figure 1 — the textbook ISA/cardinality clash;
* the Section-3.3 refinement of the meeting schema — a subtle global
  counting conflict in which *every* constraint participates.

It then closes the loop: drop one statement from the reported conflict,
re-check, and show the schema is healthy again.

Run with::

    python examples/schema_debugging.py
"""

from repro import satisfiable_classes
from repro.er import render_er_diagram
from repro.ext import (
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
)
from repro.paper import figure1_er, figure1_schema, refined_meeting_schema


def debug(schema, cls):
    print(f"  class {cls!r} satisfiable? ", end="")
    verdicts = satisfiable_classes(schema)
    print(verdicts[cls])
    if verdicts[cls]:
        return None
    report = quickxplain_unsatisfiable_constraints(schema, cls)
    print("  " + report.pretty().replace("\n", "\n  "))
    return report


def main() -> None:
    print("=== Figure 1: a finitely unsatisfiable ER diagram ===")
    print(render_er_diagram(figure1_er()))
    schema = figure1_schema()
    report = debug(schema, "D")

    print("\n  Repair: drop one conflicting statement and re-check.")
    for statement in report.mus:
        repaired = schema.without_constraints([statement])
        verdicts = satisfiable_classes(repaired)
        print(
            f"    without {statement.pretty():30} -> "
            f"D satisfiable: {verdicts['D']}"
        )
        assert verdicts["D"], "a minimal conflict: dropping any member heals"

    print("\n=== Section 3.3: the over-refined meeting schema ===")
    refined = refined_meeting_schema()
    report = debug(refined, "Speaker")
    print(
        f"\n  The conflict spans {len(report.mus)} of "
        f"{len(refined.constraints())} constraints — the whole schema "
        "is one irreducible counting argument."
    )

    print("\n  Cost comparison of the two extraction algorithms:")
    deletion = minimal_unsatisfiable_constraints(refined, "Speaker")
    quickxplain = quickxplain_unsatisfiable_constraints(refined, "Speaker")
    print(f"    deletion-based: {deletion.checks} reasoner calls")
    print(f"    QuickXplain:    {quickxplain.checks} reasoner calls")


if __name__ == "__main__":
    main()
