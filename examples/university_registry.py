"""A realistic conceptual-design session: a university registry.

The scenario the paper's introduction motivates: a designer drafts an
ER-style schema with ISA hierarchies and cardinality constraints, then
uses the reasoner during *schema construction* (the paper's problem
(b)) to

1. verify the design can be populated at all,
2. discover constraints the design implies but nobody wrote down,
3. catch an innocuous-looking refinement that silently makes part of
   the schema impossible to populate.

The schema is written in the textual DSL to show that entry path.

Run with::

    python examples/university_registry.py
"""

from repro import (
    implies_isa,
    implies_max_cardinality,
    implies_min_cardinality,
    minimal_unsatisfiable_constraints,
    parse_schema,
    satisfiable_classes,
)

REGISTRY = """
schema UniversityRegistry {
  class Person;
  class Student isa Person;
  class PhdStudent isa Student;
  class Professor isa Person;
  class Course;
  class Seminar isa Course;

  // every course is taught by exactly one professor; professors teach
  // between one and four courses
  relationship Teaches(lecturer: Professor, subject: Course);
  cardinality Professor in Teaches.lecturer: (1, 4);
  cardinality Course in Teaches.subject: (1, 1);

  // students enrol in one to six courses; a course needs at least
  // three enrolled students to run
  relationship EnrolledIn(attendee: Student, class_: Course);
  cardinality Student in EnrolledIn.attendee: (1, 6);
  cardinality Course in EnrolledIn.class_: (3, *);

  // PhD students enrol in at most two courses (refinement!) ...
  cardinality PhdStudent in EnrolledIn.attendee: (1, 2);

  // ... and each is supervised by exactly one professor, who
  // supervises at most three of them
  relationship Supervises(advisor: Professor, advisee: PhdStudent);
  cardinality PhdStudent in Supervises.advisee: (1, 1);
  cardinality Professor in Supervises.advisor: (0, 3);
}
"""


def main() -> None:
    schema = parse_schema(REGISTRY)

    print("1. Design health check")
    verdicts = satisfiable_classes(schema)
    for cls, satisfiable in verdicts.items():
        marker = "ok " if satisfiable else "DEAD"
        print(f"   [{marker}] {cls}")
    assert all(verdicts.values())

    print("\n2. Constraints the design implies (but nobody wrote):")
    queries = [
        (
            "a PhD student enrols in at most 6 courses (inherited)",
            implies_max_cardinality(schema, "PhdStudent", "EnrolledIn", "attendee", 6),
        ),
        (
            "a PhD student enrols in at least 1 course",
            implies_min_cardinality(schema, "PhdStudent", "EnrolledIn", "attendee", 1),
        ),
        (
            "a seminar is taught by exactly one professor (inherited)",
            implies_min_cardinality(schema, "Seminar", "Teaches", "subject", 1),
        ),
        (
            "control: not every student is a PhD student",
            implies_isa(schema, "Student", "PhdStudent"),
        ),
    ]
    for description, result in queries:
        print(f"   {result.pretty():60} ({description})")

    print("\n3. A refinement that silently kills part of the design")
    # The committee decides every seminar is examined by exactly one
    # PhD student ("to train them"), and each PhD student examines
    # exactly five seminars ("to spread the load").  Sounds fine?
    broken = parse_schema(
        REGISTRY.rstrip().rstrip("}")
        + """
  relationship Examines(examiner: PhdStudent, exam: Seminar);
  cardinality PhdStudent in Examines.examiner: (5, 5);
  cardinality Seminar in Examines.exam: (1, 1);
  cardinality PhdStudent in EnrolledIn.attendee: (3, *);
}
"""
    )
    verdicts = satisfiable_classes(broken)
    dead = sorted(cls for cls, ok in verdicts.items() if not ok)
    print(f"   classes that can no longer be populated: {dead}")
    assert "PhdStudent" in dead

    print("\n4. Why?  Ask the debugger for a minimal conflict:")
    report = minimal_unsatisfiable_constraints(broken, "PhdStudent")
    print("   " + report.pretty().replace("\n", "\n   "))


if __name__ == "__main__":
    main()
