"""Object-oriented modelling: attribute multiplicities meet inheritance.

Section 5 of the paper: "by interpreting relationships as attributes,
we directly derive a method applicable to object oriented data models."
This example uses the OO adapter on a document-management model and
shows the two reasoning services that matter to an OO designer:

* **forced-empty classes** — a subclass whose overridden multiplicities
  cannot be met by any finite population;
* **implied subtyping in finite models** — two classes forced to be
  extensionally equal even though neither declares the other.

Run with::

    python examples/oo_subtyping.py
"""

from repro import implies_isa, satisfiable_classes
from repro.oo import OOModel, oo_to_cr


def main() -> None:
    print("=== A document management model ===")
    model = OOModel("DocStore")
    model.cls("Document")
    model.cls("User")
    model.cls("Contract", parents=["Document"])
    model.cls("Draft", parents=["Document"])

    # Every document has exactly one owner; users own any number of docs.
    model.attribute("Document", "owner", "User", minimum=1, maximum=1)
    # Every document carries 0..3 reviewer links; each user reviews at
    # most 10 documents.
    model.attribute(
        "Document", "reviewer", "User", minimum=0, maximum=3,
        inverse_minimum=0, inverse_maximum=10,
    )
    # Contracts MUST have at least 2 reviewers (an override).
    model.override("Contract", "Document", "reviewer", minimum=2, maximum=3)

    schema = oo_to_cr(model)
    print("class satisfiability:", satisfiable_classes(schema))

    print("\n=== An override that cannot be satisfied ===")
    # Drafts must have 5 reviewers — but the inherited maximum is 3.
    model.override("Draft", "Document", "reviewer", minimum=5)
    schema = oo_to_cr(model)
    verdicts = satisfiable_classes(schema)
    print("class satisfiability:", verdicts)
    assert verdicts["Draft"] is False, "Draft is forced empty"
    assert verdicts["Contract"] is True

    print("\n=== Implied subtyping in finite models ===")
    pairing = OOModel("Mentoring")
    pairing.cls("Employee")
    pairing.cls("Mentor", parents=["Employee"])
    # Every employee has exactly one mentor; every mentor mentors
    # exactly one employee.
    pairing.attribute(
        "Employee", "mentor", "Mentor", minimum=1, maximum=1,
        inverse_minimum=1, inverse_maximum=1,
    )
    schema = oo_to_cr(pairing)
    result = implies_isa(schema, "Employee", "Mentor")
    print(f"  {result.pretty()}")
    print(
        "  In every finite population |Employee| = |mentor links| = "
        "|Mentor|, and Mentor <= Employee, so the classes coincide —"
    )
    print(
        "  the same finite-model phenomenon as the paper's "
        "'Speaker isa Discussant' inference."
    )
    assert result.implied


if __name__ == "__main__":
    main()
