"""Frame-based knowledge representation: coherence of a terminology.

Section 5 of the paper: "by interpreting classes as frames and
relationships as slots, we obtain a corresponding decision procedure
for several knowledge representation formalisms."  This example builds
a small zoo terminology with number restrictions and runs the classic
KR services through the CR reasoner:

* **coherence** — can a frame have instances in a finite world?
* **finite-model subsumption** — restrictions that force one frame
  under another;
* **implied number restrictions** — bounds the terminology entails.

Run with::

    python examples/kr_frames.py
"""

from repro import (
    implies_max_cardinality,
    implies_min_cardinality,
    satisfiable_classes,
)
from repro.kr import KnowledgeBase, kr_to_cr
from repro.kr.to_cr import slot_roles


def main() -> None:
    kb = KnowledgeBase("Zoo")
    kb.frame("Animal")
    kb.frame("Predator", subsumers=["Animal"])
    kb.frame("Herbivore", subsumers=["Animal"])
    kb.disjoint("Predator", "Herbivore")

    # Slot: every predator hunts 1..3 herbivores; each herbivore is
    # hunted by at most 2 predators.
    kb.slot("hunts", domain="Predator", range="Herbivore")
    kb.restrict("Predator", "hunts", at_least=1, at_most=3)

    kb.slot("huntedBy", domain="Herbivore", range="Predator")
    kb.restrict("Herbivore", "huntedBy", at_least=0, at_most=2)

    # A specialised frame with a refined restriction.
    kb.frame("ApexPredator", subsumers=["Predator"])
    kb.restrict("ApexPredator", "hunts", at_least=3)

    schema = kr_to_cr(kb)
    print("=== Coherence of the terminology ===")
    print(satisfiable_classes(schema))

    print("\n=== An incoherent frame ===")
    kb.frame("Vegan", subsumers=["Predator"])
    kb.restrict("Vegan", "hunts", at_least=0, at_most=0)  # hunts nothing
    schema = kr_to_cr(kb)
    verdicts = satisfiable_classes(schema)
    print(verdicts)
    # Predators hunt at least once; a Vegan predator hunts zero times.
    assert verdicts["Vegan"] is False
    print("Vegan is incoherent: the inherited (at-least 1 hunts) clashes "
          "with its own (at-most 0 hunts).")

    print("\n=== Implied number restrictions ===")
    domain_role, _ = slot_roles("hunts")
    checks = [
        (
            "ApexPredator hunts at most 3 (inherited bound)",
            implies_max_cardinality(schema, "ApexPredator", "hunts", domain_role, 3),
            True,
        ),
        (
            "ApexPredator hunts at least 3 (own restriction)",
            implies_min_cardinality(schema, "ApexPredator", "hunts", domain_role, 3),
            True,
        ),
        (
            "every Predator hunts at least 2 (NOT implied)",
            implies_min_cardinality(schema, "Predator", "hunts", domain_role, 2),
            False,
        ),
    ]
    for description, result, expected in checks:
        print(f"  {result.pretty():50} ({description})")
        assert result.implied == expected


if __name__ == "__main__":
    main()
