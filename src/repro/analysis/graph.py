"""Polynomial-time ISA-graph structure used by the static analyzer.

The declared ISA statements form a directed graph on the class symbols
(an edge ``sub → sup`` per statement).  The checks in
:mod:`repro.analysis.checks` need three classic computations on it, all
polynomial:

* the strongly connected components (Tarjan, iterative — cycles are
  legal in CR and make their members extensionally equivalent),
* shortest declared paths (witnesses for ``≼*`` facts), and
* the redundant declared edges (edges implied by the rest of the
  graph — the transitive-reduction complement).
"""

from __future__ import annotations

from repro.cr.schema import CRSchema


def isa_adjacency(schema: CRSchema) -> dict[str, list[str]]:
    """Declared-edge adjacency: class → direct declared superclasses."""
    adjacency: dict[str, list[str]] = {cls: [] for cls in schema.classes}
    for sub, sup in schema.isa_statements:
        adjacency[sub].append(sup)
    return adjacency


def strongly_connected_components(
    schema: CRSchema,
) -> list[tuple[str, ...]]:
    """The SCCs of the declared ISA graph, iteratively (Tarjan).

    Components are returned in reverse topological order (as Tarjan
    emits them) with members in class-declaration order; singleton
    components without a self-loop are included, so callers filter for
    ``len(scc) > 1`` to find genuine cycles.
    """
    adjacency = isa_adjacency(schema)
    position = {cls: i for i, cls in enumerate(schema.classes)}
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[tuple[str, ...]] = []
    counter = 0

    for root in schema.classes:
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator position) frames.
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            successors = adjacency[node]
            while edge_index < len(successors):
                succ = successors[edge_index]
                edge_index += 1
                if succ not in index_of:
                    work.append((node, edge_index))
                    work.append((succ, 0))
                    recursed = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if recursed:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(
                    tuple(sorted(component, key=position.__getitem__))
                )
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def cycle_path(schema: CRSchema, component: tuple[str, ...]) -> tuple[str, ...]:
    """A closed declared-edge path through ``component``'s first member.

    The witness for an ISA cycle: a shortest declared path from the
    member back to itself, BFS within the component.  ``component``
    must be a non-trivial SCC of the declared graph.
    """
    start = component[0]
    members = set(component)
    adjacency = {
        cls: [succ for succ in succs if succ in members and succ != cls]
        for cls, succs in isa_adjacency(schema).items()
        if cls in members
    }
    previous: dict[str, str] = {}
    queue = [start]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for succ in adjacency[node]:
            if succ == start:
                path = [node]
                while path[-1] != start:
                    path.append(previous[path[-1]])
                return tuple(reversed(path)) + (start,)
            if succ not in previous:
                previous[succ] = node
                queue.append(succ)
    raise AssertionError(  # pragma: no cover - callers pass genuine SCCs
        f"no cycle through {start!r}; not a non-trivial SCC"
    )


def _declared_path_avoiding(
    adjacency: dict[str, list[str]], src: str, dst: str
) -> tuple[str, ...] | None:
    """Shortest declared path ``src → ... → dst`` that does not take the
    direct edge ``src → dst`` as its first step (BFS)."""
    previous: dict[str, str] = {}
    queue = [src]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for succ in adjacency[node]:
            if node == src and succ == dst:
                continue  # the direct edge is not an alternative
            if succ in previous or succ == src:
                continue
            previous[succ] = node
            if succ == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(previous[path[-1]])
                return tuple(reversed(path))
            queue.append(succ)
    return None


def redundant_isa_edges(
    schema: CRSchema,
) -> list[tuple[str, str, tuple[str, ...]]]:
    """Declared edges implied by the rest of the declared ISA graph.

    For each declared statement ``sub ≼ sup``, search for a declared
    path from ``sub`` to ``sup`` that does not start with the direct
    edge (one BFS per edge — ``O(E·(V+E))``, polynomial).  A declared
    self-loop ``A ≼ A`` is redundant outright (reflexivity), with the
    trivial path ``(A,)`` as its witness.  Returns ``(sub, sup,
    alternative_path)`` triples in declaration order; such statements
    can be removed without changing any ``≼*`` fact, so every verdict
    of the decision procedure is invariant under the removal.
    """
    adjacency = isa_adjacency(schema)
    redundant: list[tuple[str, str, tuple[str, ...]]] = []
    for sub, sup in schema.isa_statements:
        if sub == sup:
            redundant.append((sub, sup, (sub,)))
            continue
        alternative = _declared_path_avoiding(adjacency, sub, sup)
        if alternative is not None:
            redundant.append((sub, sup, alternative))
    return redundant


__all__ = [
    "cycle_path",
    "isa_adjacency",
    "redundant_isa_edges",
    "strongly_connected_components",
]
