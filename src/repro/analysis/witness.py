"""Machine-checkable witnesses for static-analysis diagnostics.

Every ``error``-level diagnostic emitted by :mod:`repro.analysis`
carries a witness object that *proves* its claim from the declared
schema statements alone — an ISA path, a refinement chain, a
disjointness clash, or a derivation tree for propagated emptiness.
Each witness exposes

``verify(schema) -> bool``
    Re-check the claim directly against the schema's declared
    statements (not against any cached analysis state).  The
    differential property suite runs this on every diagnostic before
    comparing verdicts with the full decision procedure, so a bug in a
    check cannot hide behind a bug in its witness.

``as_dict() -> dict``
    A stable JSON encoding for ``repro lint --json``.

The soundness argument shared by all *emptiness* witnesses: each
variant proves its subject class empty in **every** interpretation
(finite or not), which implies finite unsatisfiability — the verdict of
the paper's Theorem-3.3 decision procedure.  See the "Static schema
analysis" sections of README.md and DESIGN.md for the per-variant
arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.schema import CRSchema


def _is_declared_path(schema: CRSchema, path: tuple[str, ...]) -> bool:
    """Whether ``path`` walks declared ISA edges from front to back."""
    if not path:
        return False
    if any(not schema.has_class(cls) for cls in path):
        return False
    declared = set(schema.isa_statements)
    return all(
        (path[i], path[i + 1]) in declared for i in range(len(path) - 1)
    )


@dataclass(frozen=True)
class IsaPath:
    """A chain of declared ISA edges: ``classes[0] ≼* classes[-1]``."""

    classes: tuple[str, ...]

    kind = "isa-path"

    def verify(self, schema: CRSchema) -> bool:
        return _is_declared_path(schema, self.classes)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "classes": list(self.classes)}


@dataclass(frozen=True)
class IsaCycle:
    """A closed chain of declared ISA edges (``path[0] == path[-1]``).

    Witnesses that every class on the path has every other as both
    ancestor and descendant — the classes are extensionally equivalent
    in every model.
    """

    path: tuple[str, ...]

    kind = "isa-cycle"

    def verify(self, schema: CRSchema) -> bool:
        return (
            len(self.path) >= 3
            and self.path[0] == self.path[-1]
            and _is_declared_path(schema, self.path)
        )

    def as_dict(self) -> dict:
        return {"kind": self.kind, "path": list(self.path)}


@dataclass(frozen=True)
class RedundantEdge:
    """A declared ISA edge implied by the rest of the ISA graph.

    ``alternative`` is a declared path from ``sub`` to ``sup`` that does
    not use the direct edge, so removing the declaration changes no
    ``≼*`` fact.
    """

    sub: str
    sup: str
    alternative: tuple[str, ...]

    kind = "isa-redundant-edge"

    def verify(self, schema: CRSchema) -> bool:
        if (self.sub, self.sup) not in schema.isa_statements:
            return False
        path = self.alternative
        if path[:1] != (self.sub,) or path[-1:] != (self.sup,):
            return False
        if self.sub == self.sup:
            # A declared self-loop is vacuous by reflexivity of ``≼*``;
            # its witness is the trivial path.
            return path == (self.sub,)
        if len(path) < 3:  # the direct edge itself is not an alternative
            return False
        return _is_declared_path(schema, path)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "sub": self.sub,
            "sup": self.sup,
            "alternative": list(self.alternative),
        }


@dataclass(frozen=True)
class CardConflict:
    """Emptiness by an inherited ``minc > maxc`` on one role slot.

    ``cls`` inherits ``minc`` from its ancestor ``min_class`` (via the
    declared path ``min_path``) and ``maxc`` from ``max_class`` (via
    ``max_path``) on the same ``(rel, role)`` slot.  Since every
    instance of ``cls`` is an instance of both ancestors, it would have
    to participate at least ``minc`` and at most ``maxc < minc`` times —
    impossible, so ``cls`` is empty in every model.  A *local inversion*
    is the special case ``min_class == max_class == cls``.
    """

    cls: str
    rel: str
    role: str
    min_class: str
    min_path: tuple[str, ...]
    minc: int
    max_class: str
    max_path: tuple[str, ...]
    maxc: int

    kind = "card-conflict"

    def subject_class(self) -> str:
        return self.cls

    def verify(self, schema: CRSchema) -> bool:
        if self.minc <= self.maxc:
            return False
        if self.min_path[:1] != (self.cls,) or self.max_path[:1] != (self.cls,):
            return False
        if self.min_path[-1:] != (self.min_class,):
            return False
        if self.max_path[-1:] != (self.max_class,):
            return False
        if not _is_declared_path(schema, self.min_path):
            return False
        if not _is_declared_path(schema, self.max_path):
            return False
        declared = schema.declared_cards
        min_card = declared.get((self.min_class, self.rel, self.role))
        max_card = declared.get((self.max_class, self.rel, self.role))
        if min_card is None or max_card is None:
            return False
        return min_card.minc == self.minc and max_card.maxc == self.maxc

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "relationship": self.rel,
            "role": self.role,
            "min": {
                "class": self.min_class,
                "path": list(self.min_path),
                "minc": self.minc,
            },
            "max": {
                "class": self.max_class,
                "path": list(self.max_path),
                "maxc": self.maxc,
            },
        }


@dataclass(frozen=True)
class DisjointAncestors:
    """Emptiness by inheriting from two declared-disjoint classes.

    Every instance of ``cls`` is an instance of both ``first`` (via
    ``first_path``) and ``second`` (via ``second_path``), yet a
    disjointness statement forbids any individual from being in both —
    so ``cls`` is empty in every model.
    """

    cls: str
    first: str
    first_path: tuple[str, ...]
    second: str
    second_path: tuple[str, ...]
    group: frozenset[str]

    kind = "disjoint-ancestors"

    def subject_class(self) -> str:
        return self.cls

    def verify(self, schema: CRSchema) -> bool:
        if self.first == self.second:
            return False
        if {self.first, self.second} - self.group:
            return False
        if self.group not in set(schema.disjointness_groups):
            return False
        if self.first_path[:1] != (self.cls,) or self.first_path[-1:] != (
            self.first,
        ):
            return False
        if self.second_path[:1] != (self.cls,) or self.second_path[-1:] != (
            self.second,
        ):
            return False
        return _is_declared_path(schema, self.first_path) and _is_declared_path(
            schema, self.second_path
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "first": {"class": self.first, "path": list(self.first_path)},
            "second": {"class": self.second, "path": list(self.second_path)},
            "group": sorted(self.group),
        }


@dataclass(frozen=True)
class EmptySuper:
    """Emptiness inherited from an empty ancestor along a declared path."""

    cls: str
    path: tuple[str, ...]
    cause: "EmptinessWitness"

    kind = "empty-super"

    def subject_class(self) -> str:
        return self.cls

    def verify(self, schema: CRSchema) -> bool:
        if self.path[:1] != (self.cls,):
            return False
        if self.path[-1:] != (self.cause.subject_class(),):
            return False
        return _is_declared_path(schema, self.path) and self.cause.verify(
            schema
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "path": list(self.path),
            "cause": self.cause.as_dict(),
        }


@dataclass(frozen=True)
class EmptyRelationship:
    """A relationship forced empty: some role's primary class is empty.

    Every tuple of ``rel`` carries, in role ``role``, an instance of the
    role's primary class (the typing condition of Definition 2.2); with
    that class empty in every model, no tuple can exist.
    """

    rel: str
    role: str
    primary: str
    cause: "EmptinessWitness"

    kind = "empty-relationship"

    def verify(self, schema: CRSchema) -> bool:
        relationship = schema.relationship(self.rel)
        if self.role not in relationship.roles:
            return False
        if relationship.primary_class(self.role) != self.primary:
            return False
        if self.cause.subject_class() != self.primary:
            return False
        return self.cause.verify(schema)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "relationship": self.rel,
            "role": self.role,
            "primary": self.primary,
            "cause": self.cause.as_dict(),
        }


@dataclass(frozen=True)
class RequiredParticipation:
    """Emptiness by mandatory participation in an empty relationship.

    ``cls`` inherits ``minc >= 1`` on ``(rel, role)`` from its ancestor
    ``min_class`` (via ``min_path``), so every instance of ``cls`` must
    appear in at least one tuple of ``rel`` — but ``rel`` is empty in
    every model (``rel_cause``), so ``cls`` is empty too.
    """

    cls: str
    rel: str
    role: str
    min_class: str
    min_path: tuple[str, ...]
    minc: int
    rel_cause: EmptyRelationship

    kind = "required-participation"

    def subject_class(self) -> str:
        return self.cls

    def verify(self, schema: CRSchema) -> bool:
        if self.minc < 1:
            return False
        if self.min_path[:1] != (self.cls,) or self.min_path[-1:] != (
            self.min_class,
        ):
            return False
        if not _is_declared_path(schema, self.min_path):
            return False
        declared = schema.declared_cards.get(
            (self.min_class, self.rel, self.role)
        )
        if declared is None or declared.minc != self.minc:
            return False
        if self.rel_cause.rel != self.rel:
            return False
        return self.rel_cause.verify(schema)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "relationship": self.rel,
            "role": self.role,
            "min": {
                "class": self.min_class,
                "path": list(self.min_path),
                "minc": self.minc,
            },
            "cause": self.rel_cause.as_dict(),
        }


@dataclass(frozen=True)
class UncoveredClass:
    """Emptiness of a covered class whose coverers are all empty.

    A covering statement makes every instance of ``cls`` an instance of
    some coverer; with each coverer empty in every model, ``cls`` is
    empty too.
    """

    cls: str
    coverers: frozenset[str]
    causes: tuple["EmptinessWitness", ...]

    kind = "uncovered-class"

    def subject_class(self) -> str:
        return self.cls

    def verify(self, schema: CRSchema) -> bool:
        if (self.cls, self.coverers) not in set(schema.coverings):
            return False
        proven = {cause.subject_class() for cause in self.causes}
        if proven != set(self.coverers):
            return False
        return all(cause.verify(schema) for cause in self.causes)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "class": self.cls,
            "coverers": sorted(self.coverers),
            "causes": [cause.as_dict() for cause in self.causes],
        }


# The closed set of witness variants that prove a class empty in every
# model.  Each carries ``cls`` — the class the proof is about — exposed
# uniformly through ``subject_class()`` so derivation trees can be
# composed and re-verified structurally.
EmptinessWitness = (
    CardConflict
    | DisjointAncestors
    | EmptySuper
    | RequiredParticipation
    | UncoveredClass
)


Witness = (
    IsaPath
    | IsaCycle
    | RedundantEdge
    | EmptyRelationship
    | EmptinessWitness
)
"""Any witness a :class:`repro.analysis.Diagnostic` may carry."""


__all__ = [
    "CardConflict",
    "DisjointAncestors",
    "EmptinessWitness",
    "EmptyRelationship",
    "EmptySuper",
    "IsaCycle",
    "IsaPath",
    "RedundantEdge",
    "RequiredParticipation",
    "UncoveredClass",
    "Witness",
]
