"""The polynomial-time check battery of the schema static analyzer.

Each ``check_*`` function inspects declared schema structure only — no
expansion, no compound classes — and returns :class:`Diagnostic`
objects.  All checks are sound but incomplete: an ``error`` is a proof
(carried as a witness) that its subject class is empty in every model,
which implies the finite-unsatisfiability verdict of the paper's
Theorem 3.3; the converse direction is *not* attempted, so schemas like
Figure 1 (finitely unsatisfiable for arithmetic reasons, yet satisfied
by an infinite model) pass the static battery and proceed to the full
expansion.

The emptiness core is :func:`static_empty_classes`: a fixpoint over

seeds
    effective (inherited) cardinality conflicts ``minc > maxc``
    (Definition 3.1's lifting applied along declared ISA paths) and
    inheritance from two declared-disjoint ancestors;
rules
    an empty primary class empties its relationship (the typing
    condition of Definition 2.2); an empty relationship empties every
    class with an inherited ``minc >= 1`` on one of its roles; a
    covered class with all coverers empty is empty; a class below an
    empty ancestor is empty.

Every derivation is materialised as a witness tree
(:mod:`repro.analysis.witness`) so the claim can be re-verified
independently of this module's code.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import (
    cycle_path,
    redundant_isa_edges,
    strongly_connected_components,
)
from repro.analysis.witness import (
    CardConflict,
    DisjointAncestors,
    EmptinessWitness,
    EmptyRelationship,
    EmptySuper,
    IsaCycle,
    RedundantEdge,
    RequiredParticipation,
    UncoveredClass,
)
from repro.cr.schema import Card, CRSchema


def _slots(schema: CRSchema) -> list[tuple[str, str]]:
    """All ``(relationship, role)`` slots in declaration order."""
    return [
        (rel.name, role)
        for rel in schema.relationships
        for role in rel.roles
    ]


def _card_conflict(schema: CRSchema, cls: str) -> CardConflict | None:
    """A witnessed inherited ``minc > maxc`` on some slot of ``cls``."""
    for rel, role in _slots(schema):
        sources = schema.effective_card_sources(cls, rel, role)
        if not sources:
            continue
        minc = max(card.minc for _, card in sources)
        bounded = [card.maxc for _, card in sources if card.maxc is not None]
        if not bounded:
            continue
        maxc = min(bounded)
        if minc <= maxc:
            continue
        min_class = next(
            ancestor for ancestor, card in sources if card.minc == minc
        )
        max_class = next(
            ancestor for ancestor, card in sources if card.maxc == maxc
        )
        min_path = schema.isa_path(cls, min_class)
        max_path = schema.isa_path(cls, max_class)
        assert min_path is not None and max_path is not None
        return CardConflict(
            cls=cls,
            rel=rel,
            role=role,
            min_class=min_class,
            min_path=min_path,
            minc=minc,
            max_class=max_class,
            max_path=max_path,
            maxc=maxc,
        )
    return None


def _disjoint_ancestors(schema: CRSchema, cls: str) -> DisjointAncestors | None:
    """A witnessed pair of declared-disjoint ancestors of ``cls``."""
    position = {name: i for i, name in enumerate(schema.classes)}
    ancestors = schema.ancestors(cls)
    for group in schema.disjointness_groups:
        clashing = sorted(group & ancestors, key=position.__getitem__)
        if len(clashing) < 2:
            continue
        first, second = clashing[0], clashing[1]
        first_path = schema.isa_path(cls, first)
        second_path = schema.isa_path(cls, second)
        assert first_path is not None and second_path is not None
        return DisjointAncestors(
            cls=cls,
            first=first,
            first_path=first_path,
            second=second,
            second_path=second_path,
            group=group,
        )
    return None


def _required_participation(
    schema: CRSchema, cls: str, empty_rels: dict[str, EmptyRelationship]
) -> RequiredParticipation | None:
    """A witnessed inherited ``minc >= 1`` on an empty relationship."""
    for rel, role in _slots(schema):
        if rel not in empty_rels:
            continue
        for ancestor, card in schema.effective_card_sources(cls, rel, role):
            if card.minc < 1:
                continue
            min_path = schema.isa_path(cls, ancestor)
            assert min_path is not None
            return RequiredParticipation(
                cls=cls,
                rel=rel,
                role=role,
                min_class=ancestor,
                min_path=min_path,
                minc=card.minc,
                rel_cause=empty_rels[rel],
            )
    return None


def static_empty_classes(
    schema: CRSchema,
) -> tuple[dict[str, EmptinessWitness], dict[str, EmptyRelationship]]:
    """Classes (and relationships) provably empty in every model.

    A monotone fixpoint — each round scans classes, relationships, and
    coverings in declaration order, so at most ``|C| + |R|`` rounds of
    polynomial work; the result maps each empty symbol to the witness
    tree proving it.
    """
    empty: dict[str, EmptinessWitness] = {}
    empty_rels: dict[str, EmptyRelationship] = {}

    for cls in schema.classes:
        seed = _card_conflict(schema, cls) or _disjoint_ancestors(schema, cls)
        if seed is not None:
            empty[cls] = seed

    changed = True
    while changed:
        changed = False
        for rel in schema.relationships:
            if rel.name in empty_rels:
                continue
            for role, primary in rel.signature:
                if primary in empty:
                    empty_rels[rel.name] = EmptyRelationship(
                        rel=rel.name,
                        role=role,
                        primary=primary,
                        cause=empty[primary],
                    )
                    changed = True
                    break
        for cls in schema.classes:
            if cls in empty:
                continue
            required = _required_participation(schema, cls, empty_rels)
            if required is not None:
                empty[cls] = required
                changed = True
        for covered, coverers in schema.coverings:
            if covered in empty:
                continue
            if coverers and all(coverer in empty for coverer in coverers):
                empty[covered] = UncoveredClass(
                    cls=covered,
                    coverers=coverers,
                    causes=tuple(
                        empty[coverer] for coverer in sorted(coverers)
                    ),
                )
                changed = True
        for cls in schema.classes:
            if cls in empty:
                continue
            for ancestor in schema.classes:
                if ancestor == cls or ancestor not in empty:
                    continue
                path = schema.isa_path(cls, ancestor)
                if path is None:
                    continue
                empty[cls] = EmptySuper(
                    cls=cls, path=path, cause=empty[ancestor]
                )
                changed = True
                break
    return empty, empty_rels


_EMPTINESS_CODES = {
    "card-conflict": "card-refinement-conflict",
    "disjoint-ancestors": "isa-disjoint-conflict",
    "required-participation": "card-required-empty",
    "uncovered-class": "cover-empty",
    "empty-super": "isa-empty-super",
}


def _emptiness_diagnostic(witness: EmptinessWitness) -> Diagnostic:
    cls = witness.subject_class()
    if isinstance(witness, CardConflict):
        card = Card(witness.minc, witness.maxc)
        if witness.min_class == cls and witness.max_class == cls:
            return Diagnostic(
                code="card-inversion",
                severity="error",
                message=(
                    f"declared cardinality {card.pretty()} on role "
                    f"{witness.role!r} of {witness.rel!r} has minc > maxc; "
                    f"{cls!r} is empty in every model"
                ),
                classes=(cls,),
                relationships=(witness.rel,),
                witness=witness,
            )
        return Diagnostic(
            code=_EMPTINESS_CODES[witness.kind],
            severity="error",
            message=(
                f"inherited cardinalities on role {witness.role!r} of "
                f"{witness.rel!r} conflict: minc {witness.minc} (from "
                f"{witness.min_class!r}) exceeds maxc {witness.maxc} (from "
                f"{witness.max_class!r}); {cls!r} is empty in every model"
            ),
            classes=(cls,),
            relationships=(witness.rel,),
            witness=witness,
        )
    if isinstance(witness, DisjointAncestors):
        return Diagnostic(
            code=_EMPTINESS_CODES[witness.kind],
            severity="error",
            message=(
                f"{cls!r} inherits from both {witness.first!r} and "
                f"{witness.second!r}, which are declared disjoint; "
                f"{cls!r} is empty in every model"
            ),
            classes=(cls,),
            witness=witness,
        )
    if isinstance(witness, RequiredParticipation):
        return Diagnostic(
            code=_EMPTINESS_CODES[witness.kind],
            severity="error",
            message=(
                f"{cls!r} must participate in {witness.rel!r} (minc "
                f"{witness.minc} from {witness.min_class!r}) but "
                f"{witness.rel!r} can never be populated; {cls!r} is empty "
                "in every model"
            ),
            classes=(cls,),
            relationships=(witness.rel,),
            witness=witness,
        )
    if isinstance(witness, UncoveredClass):
        coverers = ", ".join(repr(c) for c in sorted(witness.coverers))
        return Diagnostic(
            code=_EMPTINESS_CODES[witness.kind],
            severity="error",
            message=(
                f"{cls!r} is covered by {coverers}, all empty in every "
                f"model; {cls!r} is empty in every model"
            ),
            classes=(cls,),
            witness=witness,
        )
    assert isinstance(witness, EmptySuper)
    return Diagnostic(
        code=_EMPTINESS_CODES[witness.kind],
        severity="error",
        message=(
            f"{cls!r} is a subclass of {witness.path[-1]!r}, which is "
            f"empty in every model; {cls!r} is empty in every model"
        ),
        classes=(cls,),
        witness=witness,
    )


def check_emptiness(schema: CRSchema) -> list[Diagnostic]:
    """Errors for statically-empty classes, warnings for dead relationships."""
    empty, empty_rels = static_empty_classes(schema)
    diagnostics = [
        _emptiness_diagnostic(empty[cls])
        for cls in schema.classes
        if cls in empty
    ]
    for rel in schema.relationships:
        witness = empty_rels.get(rel.name)
        if witness is None:
            continue
        diagnostics.append(
            Diagnostic(
                code="rel-unsatisfiable",
                severity="warning",
                message=(
                    f"relationship {rel.name!r} can never be populated: the "
                    f"primary class {witness.primary!r} of role "
                    f"{witness.role!r} is empty in every model"
                ),
                relationships=(rel.name,),
                witness=witness,
            )
        )
    return diagnostics


def check_isa_cycles(schema: CRSchema) -> list[Diagnostic]:
    """Warnings for non-trivial SCCs of the declared ISA graph.

    Cycles are legal in CR — they make their members extensionally
    equivalent in every model — but almost always indicate a modelling
    mistake, and collapsing the SCC to one class is a safe rewrite.
    """
    diagnostics = []
    for component in strongly_connected_components(schema):
        if len(component) < 2:
            continue
        path = cycle_path(schema, component)
        members = ", ".join(repr(cls) for cls in component)
        diagnostics.append(
            Diagnostic(
                code="isa-cycle",
                severity="warning",
                message=(
                    f"ISA cycle through {members}: these classes are "
                    "extensionally equivalent in every model and can be "
                    "collapsed into one"
                ),
                classes=component,
                witness=IsaCycle(path),
            )
        )
    return diagnostics


def check_redundant_isa(schema: CRSchema) -> list[Diagnostic]:
    """Infos for declared ISA edges implied by the rest of the graph."""
    diagnostics = []
    for sub, sup, alternative in redundant_isa_edges(schema):
        if sub == sup:
            message = (
                f"ISA statement {sub!r} ISA {sup!r} is a self-loop; it is "
                "implied by reflexivity and can be removed"
            )
        else:
            via = " -> ".join(alternative)
            message = (
                f"ISA statement {sub!r} ISA {sup!r} is implied by the "
                f"declared path {via} and can be removed"
            )
        diagnostics.append(
            Diagnostic(
                code="isa-redundant",
                severity="info",
                message=message,
                classes=(sub,) if sub == sup else (sub, sup),
                witness=RedundantEdge(sub, sup, alternative),
            )
        )
    return diagnostics


def check_cover_typing(schema: CRSchema) -> list[Diagnostic]:
    """Warnings for coverers that are not subclasses of the covered class.

    Legal in the Section-5 extension, but a covering is normally a
    partition of the covered class into its own subclasses; a foreign
    coverer usually means a reversed or misspelt statement.
    """
    diagnostics = []
    for covered, coverers in schema.coverings:
        position = {name: i for i, name in enumerate(schema.classes)}
        foreign = sorted(
            (c for c in coverers if not schema.is_subclass(c, covered)),
            key=position.__getitem__,
        )
        if not foreign:
            continue
        names = ", ".join(repr(c) for c in foreign)
        diagnostics.append(
            Diagnostic(
                code="cover-foreign",
                severity="warning",
                message=(
                    f"covering of {covered!r} uses coverer(s) {names} that "
                    f"are not declared subclasses of {covered!r}"
                ),
                classes=(covered, *foreign),
            )
        )
    return diagnostics


def _referenced_classes(schema: CRSchema) -> set[str]:
    referenced: set[str] = set()
    for rel in schema.relationships:
        referenced.update(cls for _, cls in rel.signature)
    for sub, sup in schema.isa_statements:
        if sub != sup:
            referenced.update((sub, sup))
    referenced.update(cls for cls, _, _ in schema.declared_cards)
    for group in schema.disjointness_groups:
        referenced.update(group)
    for covered, coverers in schema.coverings:
        referenced.add(covered)
        referenced.update(coverers)
    return referenced


def check_unreferenced(schema: CRSchema) -> list[Diagnostic]:
    """Infos for classes no statement mentions (trivially satisfiable)."""
    referenced = _referenced_classes(schema)
    return [
        Diagnostic(
            code="class-unreferenced",
            severity="info",
            message=(
                f"class {cls!r} is not mentioned by any relationship, ISA, "
                "cardinality, disjointness, or covering statement"
            ),
            classes=(cls,),
        )
        for cls in schema.classes
        if cls not in referenced
    ]


def check_duplicate_definitions(schema: CRSchema) -> list[Diagnostic]:
    """Infos for classes with identical declared constraint surfaces.

    Two classes with the same direct superclasses and the same declared
    cardinality triples (and no other distinguishing statement) are
    interchangeable in every declared constraint — usually a
    copy-paste artifact.  Only non-trivial surfaces are reported.
    """
    declared = schema.declared_cards
    mentioned_elsewhere: set[str] = set()
    for rel in schema.relationships:
        mentioned_elsewhere.update(cls for _, cls in rel.signature)
    for group in schema.disjointness_groups:
        mentioned_elsewhere.update(group)
    for covered, coverers in schema.coverings:
        mentioned_elsewhere.add(covered)
        mentioned_elsewhere.update(coverers)
    for _, sup in schema.isa_statements:
        mentioned_elsewhere.add(sup)

    surfaces: dict[tuple, list[str]] = {}
    for cls in schema.classes:
        if cls in mentioned_elsewhere:
            # A class that anchors other statements is not a duplicate
            # candidate: swapping it would change those statements.
            continue
        supers = frozenset(
            sup for sub, sup in schema.isa_statements if sub == cls
        )
        cards = frozenset(
            (rel, role, card.minc, card.maxc)
            for (owner, rel, role), card in declared.items()
            if owner == cls
        )
        if not supers and not cards:
            continue  # trivial surface; covered by class-unreferenced
        surfaces.setdefault((supers, cards), []).append(cls)

    diagnostics = []
    for group_classes in surfaces.values():
        if len(group_classes) < 2:
            continue
        names = ", ".join(repr(cls) for cls in group_classes)
        diagnostics.append(
            Diagnostic(
                code="class-duplicate",
                severity="info",
                message=(
                    f"classes {names} declare identical superclasses and "
                    "cardinalities; they are interchangeable duplicates"
                ),
                classes=tuple(group_classes),
            )
        )
    return diagnostics


__all__ = [
    "check_cover_typing",
    "check_duplicate_definitions",
    "check_emptiness",
    "check_isa_cycles",
    "check_redundant_isa",
    "check_unreferenced",
    "static_empty_classes",
]
