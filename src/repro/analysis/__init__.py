"""Polynomial-time static analysis of CR schemas.

The analyzer runs a battery of sound-but-incomplete checks over the
*declared* schema statements — ISA graph structure, cardinality
refinement chains, disjointness/covering interactions — before any
Section-3.1 expansion is attempted.  Its ``error`` diagnostics carry
machine-checkable witnesses proving their subject classes empty in
every model, so the pipeline can serve an UNSAT verdict without paying
the exponential expansion; warnings and infos surface modelling smells
(cycles, dead relationships, redundant edges, duplicates).

Entry points:

:func:`analyze`
    ``analyze(schema) -> AnalysisReport`` — the full battery.
:func:`static_empty_classes`
    Just the emptiness fixpoint, as witness trees.

See the "Static schema analysis" sections of README.md and DESIGN.md
for the diagnostic catalogue and the soundness argument relative to
the paper's Theorem 3.3.
"""

from repro.analysis.analyzer import DEFAULT_CHECKS, Check, analyze
from repro.analysis.checks import static_empty_classes
from repro.analysis.diagnostics import SEVERITIES, AnalysisReport, Diagnostic
from repro.analysis.witness import (
    CardConflict,
    DisjointAncestors,
    EmptinessWitness,
    EmptyRelationship,
    EmptySuper,
    IsaCycle,
    IsaPath,
    RedundantEdge,
    RequiredParticipation,
    UncoveredClass,
    Witness,
)

__all__ = [
    "AnalysisReport",
    "CardConflict",
    "Check",
    "DEFAULT_CHECKS",
    "Diagnostic",
    "DisjointAncestors",
    "EmptinessWitness",
    "EmptyRelationship",
    "EmptySuper",
    "IsaCycle",
    "IsaPath",
    "RedundantEdge",
    "RequiredParticipation",
    "SEVERITIES",
    "UncoveredClass",
    "Witness",
    "analyze",
    "static_empty_classes",
]
