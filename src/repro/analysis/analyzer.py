"""The analyzer entry point: run the check battery, build the report.

:func:`analyze` executes every registered check under the pipeline's
``analyze`` stage (so ``batch --stats`` and budget snapshots see it)
and assembles an :class:`~repro.analysis.diagnostics.AnalysisReport`.
The battery is polynomial in the schema size — it never expands, never
builds a disequation system, never solves.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.checks import (
    check_cover_typing,
    check_duplicate_definitions,
    check_emptiness,
    check_isa_cycles,
    check_redundant_isa,
    check_unreferenced,
)
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, ordered
from repro.cr.schema import CRSchema
from repro.pipeline import STAGE_ANALYZE, stage

Check = Callable[[CRSchema], list[Diagnostic]]

DEFAULT_CHECKS: tuple[Check, ...] = (
    check_emptiness,
    check_isa_cycles,
    check_cover_typing,
    check_redundant_isa,
    check_unreferenced,
    check_duplicate_definitions,
)
"""The standard battery, in emission order (errors naturally first)."""


def analyze(
    schema: CRSchema, checks: Sequence[Check] = DEFAULT_CHECKS
) -> AnalysisReport:
    """Run the static battery over ``schema`` and return the report.

    Sound but incomplete: every ``error`` diagnostic carries a witness
    proving its first subject class empty in every model (hence
    finitely unsatisfiable, agreeing with Theorem 3.3); the absence of
    errors proves nothing.
    """
    with stage(STAGE_ANALYZE, phase="analysis"):
        diagnostics: list[Diagnostic] = []
        for check in checks:
            diagnostics.extend(check(schema))
        report = AnalysisReport(
            schema_name=schema.name,
            diagnostics=ordered(diagnostics),
            unsat_classes=frozenset(
                diagnostic.classes[0]
                for diagnostic in diagnostics
                if diagnostic.severity == "error" and diagnostic.classes
            ),
        )
    return report


__all__ = ["Check", "DEFAULT_CHECKS", "analyze"]
