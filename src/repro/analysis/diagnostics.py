"""Structured diagnostics emitted by the schema static analyzer.

A :class:`Diagnostic` is one finding: a stable ``code`` (the lint rule
that fired — see README "Static schema analysis" for the catalogue), a
``severity``, the subject classes/relationships, a human-readable
message, and — for every ``error`` — a machine-checkable witness
(:mod:`repro.analysis.witness`).

Severities follow the soundness contract of the analyzer:

``error``
    The schema is *provably* broken: the subject classes are empty in
    every model (finitely unsatisfiable).  Errors always carry an
    emptiness witness, and the pipeline may serve an UNSAT verdict from
    them without running the exponential expansion.
``warning``
    A definite fact that usually indicates a modelling mistake but does
    not by itself make a class unsatisfiable (an ISA cycle collapsing
    classes into one, a relationship that can never be populated, a
    coverer outside its covered class).
``info``
    A simplification opportunity (redundant ISA edge, unreferenced
    class, duplicate definition).

An :class:`AnalysisReport` aggregates one analyzer run: ordered
diagnostics, the set of statically-unsatisfiable classes the pipeline
can short-circuit on, and stable dict/pretty encodings for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.witness import EmptinessWitness, Witness
from repro.cr.schema import CRSchema
from repro.errors import ReproError

SEVERITIES = ("error", "warning", "info")
"""Valid severities, most severe first."""

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``classes`` and ``relationships`` name the subjects in
    schema-declaration order.  ``witness`` is required (and is an
    emptiness proof for the first subject class) whenever ``severity ==
    "error"`` — enforced here so no unproven error can be constructed.
    """

    code: str
    severity: str
    message: str
    classes: tuple[str, ...] = ()
    relationships: tuple[str, ...] = ()
    witness: Witness | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ReproError(
                f"invalid severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )
        if self.severity == "error":
            if not isinstance(self.witness, EmptinessWitness):
                raise ReproError(
                    f"error diagnostic {self.code!r} needs an emptiness "
                    "witness"
                )
            if self.classes[:1] != (self.witness.subject_class(),):
                raise ReproError(
                    f"error diagnostic {self.code!r}: witness proves "
                    f"{self.witness.subject_class()!r}, subjects are "
                    f"{self.classes!r}"
                )

    def verify(self, schema: CRSchema) -> bool:
        """Machine-check the witness against the schema (vacuously true
        for witness-free diagnostics)."""
        return self.witness is None or self.witness.verify(schema)

    def as_dict(self) -> dict:
        """Stable JSON encoding (the ``repro lint --json`` element)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "classes": list(self.classes),
            "relationships": list(self.relationships),
            "witness": None if self.witness is None else self.witness.as_dict(),
        }

    def pretty(self) -> str:
        subjects = ", ".join(self.classes + self.relationships)
        prefix = f"{self.severity}[{self.code}]"
        if subjects:
            return f"{prefix} {subjects}: {self.message}"
        return f"{prefix}: {self.message}"


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one :func:`repro.analysis.analyze` run.

    ``diagnostics`` are ordered by severity (errors first), then by the
    order the checks emitted them — deterministic for a given schema.
    """

    schema_name: str
    diagnostics: tuple[Diagnostic, ...]
    unsat_classes: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        proven = frozenset(
            diagnostic.classes[0]
            for diagnostic in self.diagnostics
            if diagnostic.severity == "error" and diagnostic.classes
        )
        if proven != self.unsat_classes:
            raise ReproError(
                "unsat_classes must equal the classes proven empty by "
                f"error diagnostics: {sorted(proven)} != "
                f"{sorted(self.unsat_classes)}"
            )

    # -- selection ---------------------------------------------------------

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self._with_severity("error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self._with_severity("warning")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self._with_severity("info")

    def _with_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(
            diagnostic
            for diagnostic in self.diagnostics
            if diagnostic.severity == severity
        )

    def diagnostics_for(self, cls: str) -> tuple[Diagnostic, ...]:
        """Diagnostics whose subject classes include ``cls``."""
        return tuple(
            diagnostic
            for diagnostic in self.diagnostics
            if cls in diagnostic.classes
        )

    def unsat_witness(self, cls: str) -> Diagnostic | None:
        """The error diagnostic proving ``cls`` statically empty, if any."""
        for diagnostic in self.diagnostics:
            if diagnostic.severity == "error" and diagnostic.classes[:1] == (
                cls,
            ):
                return diagnostic
        return None

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    # -- verification -------------------------------------------------------

    def verify(self, schema: CRSchema) -> bool:
        """Machine-check every carried witness against ``schema``."""
        return all(
            diagnostic.verify(schema) for diagnostic in self.diagnostics
        )

    # -- encodings ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            severity: len(self._with_severity(severity))
            for severity in SEVERITIES
        }

    def as_dict(self) -> dict:
        """Stable JSON encoding (the ``repro lint --json`` payload)."""
        return {
            "schema": self.schema_name,
            "diagnostics": [
                diagnostic.as_dict() for diagnostic in self.diagnostics
            ],
            "summary": {
                **self.counts(),
                "unsat_classes": sorted(self.unsat_classes),
            },
        }

    def pretty(self) -> str:
        if self.clean:
            return "no diagnostics"
        lines = [diagnostic.pretty() for diagnostic in self.diagnostics]
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s)"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"AnalysisReport({self.schema_name!r}: "
            f"{counts['error']}E/{counts['warning']}W/{counts['info']}I, "
            f"{len(self.unsat_classes)} unsat class(es))"
        )


def ordered(diagnostics: list[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Severity-major, emission-order-minor ordering (stable sort)."""
    return tuple(
        sorted(diagnostics, key=lambda d: _SEVERITY_RANK[d.severity])
    )


__all__ = ["AnalysisReport", "Diagnostic", "SEVERITIES", "ordered"]
