"""An in-memory database enforcing a CR-schema's constraints.

The paper's introduction lists three problems around integrity
constraints: (a) expressing them, (b) reasoning about them at design
time, (c) **ensuring the database satisfies them**.  The rest of the
library is problem (b); this package is problem (c): a small
transactional object store whose commits are validated against
Definition 2.2 by the model checker.
"""

from repro.db.store import Database, IntegrityError, Transaction

__all__ = ["Database", "IntegrityError", "Transaction"]
