"""A transactional in-memory store validated against a CR-schema.

Design choices, in the spirit of SQL's *deferred* constraint checking:

* **structural errors are immediate** — inserting into an undeclared
  class, or a tuple whose roles do not match the relationship's
  signature, raises at the call site (such updates could never become
  consistent);
* **semantic constraints are checked at commit** — ISA containment and
  cardinality constraints are routinely violated *during* a transaction
  (insert a talk, then its speaker, then the Holds tuple), so they are
  enforced when :class:`Transaction` commits, by running the
  Definition-2.2 model checker over the prospective state.  A failing
  commit raises :class:`IntegrityError` carrying the precise violations
  and leaves the store untouched.

The store is deliberately simple — dictionaries of frozensets, copy-on-
commit — because its job in this repository is to make the paper's
problem (c) concrete and testable, not to compete with a storage
engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cr.checker import Violation, check_model
from repro.cr.interpretation import Individual, Interpretation, LabeledTuple
from repro.cr.schema import CRSchema
from repro.errors import InterpretationError, ReproError, UnknownSymbolError


class IntegrityError(ReproError):
    """A commit would violate the schema; carries the checker's findings."""

    def __init__(self, violations: list[Violation]) -> None:
        summary = "; ".join(str(violation) for violation in violations[:5])
        if len(violations) > 5:
            summary += f"; ... ({len(violations) - 5} more)"
        super().__init__(f"commit rejected: {summary}")
        self.violations = violations


class Transaction:
    """A mutable scratch state; apply changes, then commit or abort.

    Also usable as a context manager: committing on clean exit,
    discarding on exception.
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        self._domain = set(database._domain)
        self._classes = {
            name: set(members) for name, members in database._classes.items()
        }
        self._tuples = {
            name: set(tuples) for name, tuples in database._tuples.items()
        }
        self._open = True

    # -- updates ---------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise ReproError("transaction is no longer open")

    def insert_object(
        self, individual: Individual, classes: Iterable[str] = ()
    ) -> Transaction:
        """Add an individual to the domain and to the given classes."""
        self._require_open()
        self._domain.add(individual)
        for cls in classes:
            self.add_to_class(individual, cls)
        return self

    def add_to_class(self, individual: Individual, cls: str) -> Transaction:
        """Make an existing (or new) individual an instance of ``cls``."""
        self._require_open()
        if cls not in self._classes:
            raise UnknownSymbolError(f"unknown class {cls!r}")
        self._domain.add(individual)
        self._classes[cls].add(individual)
        return self

    def remove_from_class(self, individual: Individual, cls: str) -> Transaction:
        self._require_open()
        if cls not in self._classes:
            raise UnknownSymbolError(f"unknown class {cls!r}")
        self._classes[cls].discard(individual)
        return self

    def insert_tuple(
        self, rel: str, components: Mapping[str, Individual]
    ) -> Transaction:
        """Add a labelled tuple; roles must match the signature exactly."""
        self._require_open()
        relationship = self._database.schema.relationship(rel)
        expected = set(relationship.roles)
        if set(components) != expected:
            raise InterpretationError(
                f"tuple for {rel!r} must assign exactly the roles "
                f"{sorted(expected)}, got {sorted(components)}"
            )
        for value in components.values():
            self._domain.add(value)
        self._tuples[rel].add(LabeledTuple(components))
        return self

    def delete_tuple(
        self, rel: str, components: Mapping[str, Individual]
    ) -> Transaction:
        self._require_open()
        if rel not in self._tuples:
            raise UnknownSymbolError(f"unknown relationship {rel!r}")
        self._tuples[rel].discard(LabeledTuple(components))
        return self

    def delete_object(self, individual: Individual) -> Transaction:
        """Remove an individual everywhere: domain, classes, and tuples."""
        self._require_open()
        self._domain.discard(individual)
        for members in self._classes.values():
            members.discard(individual)
        for name, tuples in self._tuples.items():
            self._tuples[name] = {
                labelled
                for labelled in tuples
                if individual not in labelled.as_dict().values()
            }
        return self

    # -- lifecycle ---------------------------------------------------------

    def prospective_state(self) -> Interpretation:
        """The interpretation this transaction would commit."""
        return Interpretation(
            domain=frozenset(self._domain),
            class_extensions={
                name: frozenset(members)
                for name, members in self._classes.items()
            },
            relationship_extensions={
                name: frozenset(tuples)
                for name, tuples in self._tuples.items()
            },
        )

    def violations(self) -> list[Violation]:
        """Dry-run the commit check without committing."""
        return check_model(self._database.schema, self.prospective_state())

    def commit(self) -> None:
        """Validate and publish; raises :class:`IntegrityError` on failure."""
        self._require_open()
        found = self.violations()
        if found:
            raise IntegrityError(found)
        self._database._publish(self._domain, self._classes, self._tuples)
        self._open = False

    def abort(self) -> None:
        self._open = False

    def __enter__(self) -> Transaction:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self._open:
            self.commit()
        else:
            self.abort()
        return False


class Database:
    """An in-memory database state guaranteed to satisfy its schema.

    Every published state is a model of the schema (Definition 2.2);
    the empty initial state trivially is.  All mutation goes through
    :meth:`transaction`.
    """

    def __init__(self, schema: CRSchema) -> None:
        self.schema = schema
        self._domain: frozenset[Individual] = frozenset()
        self._classes: dict[str, frozenset[Individual]] = {
            cls: frozenset() for cls in schema.classes
        }
        self._tuples: dict[str, frozenset[LabeledTuple]] = {
            rel.name: frozenset() for rel in schema.relationships
        }

    @classmethod
    def from_interpretation(
        cls, schema: CRSchema, interpretation: Interpretation
    ) -> Database:
        """Load an existing model (e.g. one built by the reasoner).

        Raises :class:`IntegrityError` if it is not actually a model.
        """
        database = cls(schema)
        with database.transaction() as txn:
            for individual in interpretation.domain:
                txn.insert_object(individual)
            for name in schema.classes:
                for individual in interpretation.instances_of(name):
                    txn.add_to_class(individual, name)
            for rel in schema.relationships:
                for labelled in interpretation.tuples_of(rel.name):
                    txn.insert_tuple(rel.name, labelled.as_dict())
        return database

    def transaction(self) -> Transaction:
        return Transaction(self)

    def _publish(
        self,
        domain: set[Individual],
        classes: dict[str, set[Individual]],
        tuples: dict[str, set[LabeledTuple]],
    ) -> None:
        self._domain = frozenset(domain)
        self._classes = {
            name: frozenset(members) for name, members in classes.items()
        }
        self._tuples = {
            name: frozenset(values) for name, values in tuples.items()
        }

    # -- queries -------------------------------------------------------------

    @property
    def domain(self) -> frozenset[Individual]:
        return self._domain

    def instances_of(self, cls: str) -> frozenset[Individual]:
        if cls not in self._classes:
            raise UnknownSymbolError(f"unknown class {cls!r}")
        return self._classes[cls]

    def tuples_of(self, rel: str) -> frozenset[LabeledTuple]:
        if rel not in self._tuples:
            raise UnknownSymbolError(f"unknown relationship {rel!r}")
        return self._tuples[rel]

    def snapshot(self) -> Interpretation:
        """The current state as an immutable interpretation."""
        return Interpretation(
            domain=self._domain,
            class_extensions=dict(self._classes),
            relationship_extensions=dict(self._tuples),
        )

    def __repr__(self) -> str:
        return (
            f"Database({self.schema.name!r}: {len(self._domain)} individuals, "
            f"{sum(len(t) for t in self._tuples.values())} tuples)"
        )
