"""Object-oriented data-model adapter.

Section 1 and Section 5 of the paper claim the CR technique specialises
to object-oriented models "by interpreting relationships as attributes".
This package makes the claim executable: an OO vocabulary of classes
with typed, multiplicity-bounded attributes, translated to CR by
reifying every attribute as a binary relationship.
"""

from repro.oo.model import Attribute, OOClass, OOModel
from repro.oo.to_cr import oo_to_cr

__all__ = ["Attribute", "OOClass", "OOModel", "oo_to_cr"]
