"""A small object-oriented data model (classes, attributes, inheritance).

The vocabulary follows the object-oriented database tradition the paper
cites (Albano, Ghelli & Orsini's relationship mechanism): a class has
typed attributes; each attribute carries a multiplicity ``(min, max)``
(how many values an object stores) and optionally an *inverse
multiplicity* (how many objects may reference the same value — the
other direction of the reified relationship).  Subclasses may
*override* an inherited attribute's multiplicity, which translates to
the CR model's cardinality refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cr.schema import UNBOUNDED
from repro.errors import DuplicateSymbolError, SchemaError, UnknownSymbolError


@dataclass(frozen=True)
class Attribute:
    """A typed attribute with multiplicity bounds.

    ``multiplicity`` bounds the number of values per object;
    ``inverse_multiplicity`` bounds the number of objects per value
    (``(0, None)`` — unconstrained — by default).
    """

    name: str
    target: str
    multiplicity: tuple[int, int | None] = (1, 1)
    inverse_multiplicity: tuple[int, int | None] = (0, UNBOUNDED)


@dataclass(frozen=True)
class Override:
    """A subclass tightening an inherited attribute's multiplicity."""

    cls: str
    owner: str
    attribute: str
    multiplicity: tuple[int, int | None]


@dataclass
class OOClass:
    """A class with its own attributes; ``parents`` are superclasses."""

    name: str
    parents: tuple[str, ...] = ()
    attributes: dict[str, Attribute] = field(default_factory=dict)


@dataclass
class OOModel:
    """A collection of OO classes; translate with :func:`repro.oo.oo_to_cr`."""

    name: str = "OO"
    classes: dict[str, OOClass] = field(default_factory=dict)
    overrides: list[Override] = field(default_factory=list)

    def cls(self, name: str, parents: tuple[str, ...] | list[str] = ()) -> OOModel:
        if name in self.classes:
            raise DuplicateSymbolError(f"class {name!r} declared twice")
        self.classes[name] = OOClass(name, tuple(parents))
        return self

    def attribute(
        self,
        owner: str,
        name: str,
        target: str,
        minimum: int = 1,
        maximum: int | None = 1,
        inverse_minimum: int = 0,
        inverse_maximum: int | None = UNBOUNDED,
    ) -> OOModel:
        """Declare ``owner.name : target`` with the given multiplicities."""
        cls = self.classes.get(owner)
        if cls is None:
            raise UnknownSymbolError(f"unknown class {owner!r}")
        if name in cls.attributes:
            raise DuplicateSymbolError(
                f"attribute {name!r} declared twice on {owner!r}"
            )
        cls.attributes[name] = Attribute(
            name,
            target,
            (minimum, maximum),
            (inverse_minimum, inverse_maximum),
        )
        return self

    def override(
        self,
        cls: str,
        owner: str,
        attribute: str,
        minimum: int = 0,
        maximum: int | None = UNBOUNDED,
    ) -> OOModel:
        """Tighten the multiplicity of ``owner.attribute`` for subclass ``cls``."""
        self.overrides.append(
            Override(cls, owner, attribute, (minimum, maximum))
        )
        return self

    def validate(self) -> None:
        for cls in self.classes.values():
            for parent in cls.parents:
                if parent not in self.classes:
                    raise UnknownSymbolError(
                        f"class {cls.name!r} inherits from undeclared {parent!r}"
                    )
            for attribute in cls.attributes.values():
                if attribute.target not in self.classes:
                    raise UnknownSymbolError(
                        f"attribute {cls.name}.{attribute.name} targets "
                        f"undeclared class {attribute.target!r}"
                    )
        for override in self.overrides:
            owner = self.classes.get(override.owner)
            if owner is None or override.attribute not in owner.attributes:
                raise UnknownSymbolError(
                    f"override targets unknown attribute "
                    f"{override.owner}.{override.attribute}"
                )
            if override.cls not in self.classes:
                raise UnknownSymbolError(
                    f"override declared for undeclared class {override.cls!r}"
                )
            if not self._inherits(override.cls, override.owner):
                raise SchemaError(
                    f"override on {override.cls!r} is illegal: it is not a "
                    f"subclass of {override.owner!r}"
                )

    def _inherits(self, sub: str, sup: str) -> bool:
        seen = {sub}
        frontier = [sub]
        while frontier:
            current = self.classes[frontier.pop()]
            if current.name == sup:
                return True
            for parent in current.parents:
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return False
