"""Reify OO attributes into CR relationships.

Every attribute ``C.a : T`` becomes a binary relationship
``a_of_C = <src: C, tgt: T>``:

* the attribute multiplicity ``(m, n)`` becomes the cardinality of
  ``C`` on role ``src``;
* the inverse multiplicity becomes the cardinality of ``T`` on ``tgt``;
* an override by subclass ``D`` becomes a cardinality refinement of
  ``D`` on role ``src`` — legal in CR precisely because ``D ≼* C``.

Role names are ``src_<rel>`` / ``tgt_<rel>`` (roles must be globally
unique in CR).
"""

from __future__ import annotations

from repro.cr.builder import SchemaBuilder
from repro.cr.schema import CRSchema
from repro.oo.model import OOModel


def attribute_relationship_name(owner: str, attribute: str) -> str:
    """Name of the CR relationship reifying ``owner.attribute``."""
    return f"{attribute}_of_{owner}"


def oo_to_cr(model: OOModel) -> CRSchema:
    """Translate a validated OO model into an equivalent CR-schema."""
    model.validate()
    builder = SchemaBuilder(model.name)
    for cls in model.classes.values():
        builder.cls(cls.name)
    for cls in model.classes.values():
        for parent in cls.parents:
            builder.isa(cls.name, parent)
    for cls in model.classes.values():
        for attribute in cls.attributes.values():
            rel = attribute_relationship_name(cls.name, attribute.name)
            src_role = f"src_{rel}"
            tgt_role = f"tgt_{rel}"
            builder.relationship(
                rel, **{src_role: cls.name, tgt_role: attribute.target}
            )
            minimum, maximum = attribute.multiplicity
            if minimum > 0 or maximum is not None:
                builder.card(cls.name, rel, src_role, minimum, maximum)
            inv_minimum, inv_maximum = attribute.inverse_multiplicity
            if inv_minimum > 0 or inv_maximum is not None:
                builder.card(
                    attribute.target, rel, tgt_role, inv_minimum, inv_maximum
                )
    for override in model.overrides:
        rel = attribute_relationship_name(override.owner, override.attribute)
        minimum, maximum = override.multiplicity
        builder.card(override.cls, rel, f"src_{rel}", minimum, maximum)
    return builder.build()
