"""Translate a frame knowledge base to CR.

Frames become classes, subsumption becomes ISA, and each slot ``S``
with domain ``D`` and range ``R`` becomes the binary relationship
``S = <of_S: D, is_S: R>``.  A number restriction on a frame ``F`` that
specialises ``D`` becomes a cardinality declaration of ``F`` on role
``of_S`` — well-formed in CR because ``F ≼* D``, and *exactly* the
refinement mechanism of the paper's Figure 2.

The classical KR reasoning services then read:

* frame **coherence** (can the frame have instances in a finite world?)
  = CR class satisfiability;
* finite-model **subsumption** ``F1 ⊑ F2`` = CR ISA implication;
* implied number restrictions = CR cardinality implication.
"""

from __future__ import annotations

from repro.cr.builder import SchemaBuilder
from repro.cr.schema import CRSchema
from repro.kr.model import KnowledgeBase


def slot_roles(slot_name: str) -> tuple[str, str]:
    """The (domain, range) role names of a slot's CR relationship."""
    return f"of_{slot_name}", f"is_{slot_name}"


def kr_to_cr(kb: KnowledgeBase) -> CRSchema:
    """Translate a validated knowledge base into an equivalent CR-schema."""
    kb.validate()
    builder = SchemaBuilder(kb.name)
    for frame in kb.frames.values():
        builder.cls(frame.name)
    for frame in kb.frames.values():
        for subsumer in frame.subsumers:
            builder.isa(frame.name, subsumer)
    for slot in kb.slots.values():
        domain_role, range_role = slot_roles(slot.name)
        builder.relationship(
            slot.name, **{domain_role: slot.domain, range_role: slot.range}
        )
    for restriction in kb.restrictions:
        slot = kb.slots[restriction.slot]
        domain_role, _range_role = slot_roles(slot.name)
        builder.card(
            restriction.frame,
            slot.name,
            domain_role,
            restriction.minimum,
            restriction.maximum,
        )
    for group in kb.disjoint_frames:
        builder.disjoint(*sorted(group))
    return builder.build()
