"""Frame/knowledge-representation adapter.

Section 1 and Section 5 of the paper claim the CR technique yields a
decision procedure for frame-based languages "by interpreting classes
as frames and relationships as slots".  This package provides a small
frame vocabulary — frames, slots with domain and range, number
restrictions refined along the frame taxonomy — and its translation to
CR.
"""

from repro.kr.model import Frame, KnowledgeBase, Slot
from repro.kr.to_cr import kr_to_cr

__all__ = ["Frame", "KnowledgeBase", "Slot", "kr_to_cr"]
