"""A frame language with number restrictions.

The vocabulary follows the structured-inheritance tradition the paper
cites (frames à la Fikes & Kehler, terminological systems à la BACK):

* **frames** organised in a subsumption taxonomy;
* **slots**, each with a *domain* frame and a *range* frame;
* **number restrictions** ``(at-least n S)`` / ``(at-most m S)``
  attached to frames that specialise the slot's domain — the frame
  counterpart of CR's cardinality refinement.

Reasoning services (frame coherence = class satisfiability, subsumption
over finite models = ISA implication) come from the CR translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cr.schema import UNBOUNDED
from repro.errors import DuplicateSymbolError, UnknownSymbolError


@dataclass(frozen=True)
class Slot:
    """A slot with its domain and range frames."""

    name: str
    domain: str
    range: str


@dataclass(frozen=True)
class NumberRestriction:
    """``(at-least minimum slot)`` and/or ``(at-most maximum slot)``."""

    frame: str
    slot: str
    minimum: int = 0
    maximum: int | None = UNBOUNDED


@dataclass
class Frame:
    """A frame with its direct subsumers."""

    name: str
    subsumers: tuple[str, ...] = ()


@dataclass
class KnowledgeBase:
    """Frames + slots + restrictions; translate with :func:`repro.kr.kr_to_cr`."""

    name: str = "KB"
    frames: dict[str, Frame] = field(default_factory=dict)
    slots: dict[str, Slot] = field(default_factory=dict)
    restrictions: list[NumberRestriction] = field(default_factory=list)
    disjoint_frames: list[frozenset[str]] = field(default_factory=list)

    def frame(
        self, name: str, subsumers: tuple[str, ...] | list[str] = ()
    ) -> KnowledgeBase:
        if name in self.frames:
            raise DuplicateSymbolError(f"frame {name!r} declared twice")
        self.frames[name] = Frame(name, tuple(subsumers))
        return self

    def slot(self, name: str, domain: str, range: str) -> KnowledgeBase:
        if name in self.slots:
            raise DuplicateSymbolError(f"slot {name!r} declared twice")
        self.slots[name] = Slot(name, domain, range)
        return self

    def restrict(
        self,
        frame: str,
        slot: str,
        at_least: int = 0,
        at_most: int | None = UNBOUNDED,
    ) -> KnowledgeBase:
        """Attach a number restriction to ``frame`` on ``slot``."""
        self.restrictions.append(
            NumberRestriction(frame, slot, at_least, at_most)
        )
        return self

    def disjoint(self, *frames: str) -> KnowledgeBase:
        self.disjoint_frames.append(frozenset(frames))
        return self

    def validate(self) -> None:
        for frame in self.frames.values():
            for subsumer in frame.subsumers:
                if subsumer not in self.frames:
                    raise UnknownSymbolError(
                        f"frame {frame.name!r} subsumed by undeclared "
                        f"{subsumer!r}"
                    )
        for slot in self.slots.values():
            if slot.domain not in self.frames:
                raise UnknownSymbolError(
                    f"slot {slot.name!r} has undeclared domain {slot.domain!r}"
                )
            if slot.range not in self.frames:
                raise UnknownSymbolError(
                    f"slot {slot.name!r} has undeclared range {slot.range!r}"
                )
        for restriction in self.restrictions:
            if restriction.frame not in self.frames:
                raise UnknownSymbolError(
                    f"restriction on undeclared frame {restriction.frame!r}"
                )
            if restriction.slot not in self.slots:
                raise UnknownSymbolError(
                    f"restriction on undeclared slot {restriction.slot!r}"
                )
