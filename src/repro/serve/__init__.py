"""``repro.serve`` — the async reasoning daemon over the shared cache.

A stdlib-only HTTP/1.1 service (``asyncio`` streams, no web framework)
exposing the reasoning pipeline long-lived: ``POST /check``,
``POST /implies``, and ``POST /batch`` answer through one process-wide
two-tier cache (memory LRU over the crash-safe
:class:`~repro.store.ArtifactStore`), producing records byte-identical
to ``repro batch --json``; ``GET /healthz`` and ``GET /metrics`` expose
liveness, cache/store counters, and per-stage timing aggregates.

Start it from the CLI (``repro serve --cache-dir DIR``) or in-process
for tests (:func:`running_server`); speak to it with
:class:`ServeClient`.
"""

from repro.serve.client import ServeClient
from repro.serve.engine import ServeEngine, ThreadSafeSessionCache
from repro.serve.metrics import ServeMetrics
from repro.serve.server import ReasoningServer, ServeConfig, running_server

__all__ = [
    "ReasoningServer",
    "ServeClient",
    "ServeConfig",
    "ServeEngine",
    "ServeMetrics",
    "ThreadSafeSessionCache",
    "running_server",
]
