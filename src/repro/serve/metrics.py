"""Thread-safe request metrics for the daemon's ``/metrics`` endpoint.

The engine's worker threads and the event loop both report here, so
every mutation happens under one lock — which is what makes the
exported counters *monotone*: a ``/metrics`` sample can never observe a
counter lower than an earlier sample (the concurrency soak test holds
the daemon to exactly that).  The same lock gives the in-flight gauge
atomic check-and-reserve semantics for the saturation (503) gate.

Per-stage timing aggregates fold each request's
:class:`~repro.pipeline.PipelineRun` dict into running totals, so the
``/metrics`` payload exposes where served requests actually spend their
time (normalize / analyze / expand / build-system / solve / verdict).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping


class ServeMetrics:
    """Counters and gauges shared by the app, engine, and server."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self.requests_total = 0
        self.requests_by_endpoint: dict[str, int] = {}
        self.responses_by_status: dict[str, int] = {}
        self.in_flight = 0
        self.in_flight_peak = 0
        self.rejected_busy = 0
        self.retries = 0
        self._stage_runs: dict[str, int] = {}
        self._stage_seconds: dict[str, float] = {}

    # -- request lifecycle ---------------------------------------------------

    def request_started(self, endpoint: str) -> None:
        """Count a request in and raise the in-flight gauge."""
        with self._lock:
            self._start_locked(endpoint)

    def count_get(self, endpoint: str) -> None:
        """Count a GET observability request — totals only, no
        in-flight slot: the gauge tracks *reasoning* requests, and a
        ``/metrics`` sample must be able to observe it at 0."""
        with self._lock:
            self.requests_total += 1
            self.requests_by_endpoint[endpoint] = (
                self.requests_by_endpoint.get(endpoint, 0) + 1
            )

    def try_start(self, endpoint: str, limit: int) -> bool:
        """Atomically reserve an in-flight slot, or count a rejection.

        The saturation gate: ``False`` means the caller should answer
        503 + ``Retry-After`` without touching the engine.
        """
        with self._lock:
            if self.in_flight >= limit:
                self.rejected_busy += 1
                return False
            self._start_locked(endpoint)
            return True

    def _start_locked(self, endpoint: str) -> None:
        self.requests_total += 1
        self.requests_by_endpoint[endpoint] = (
            self.requests_by_endpoint.get(endpoint, 0) + 1
        )
        self.in_flight += 1
        self.in_flight_peak = max(self.in_flight_peak, self.in_flight)

    def request_finished(
        self,
        status: int,
        stages: Mapping[str, Mapping[str, float | int]] | None = None,
    ) -> None:
        """Release the in-flight slot and fold in the pipeline timings."""
        with self._lock:
            self.in_flight -= 1
            key = str(status)
            self.responses_by_status[key] = (
                self.responses_by_status.get(key, 0) + 1
            )
            if stages:
                for name, timing in stages.items():
                    self._stage_runs[name] = self._stage_runs.get(
                        name, 0
                    ) + int(timing.get("runs", 0))
                    self._stage_seconds[name] = self._stage_seconds.get(
                        name, 0.0
                    ) + float(timing.get("seconds", 0.0))

    def count_response(self, status: int) -> None:
        """Count a response that never held an in-flight slot (GET
        endpoints, 404/405, malformed bodies, 503 rejections)."""
        with self._lock:
            key = str(status)
            self.responses_by_status[key] = (
                self.responses_by_status.get(key, 0) + 1
            )

    count_rejection = count_response

    def count_retry(self) -> None:
        """Count one engine-level rebuild-and-answer retry."""
        with self._lock:
            self.retries += 1

    # -- reporting -----------------------------------------------------------

    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> dict[str, Any]:
        """The ``server`` and ``stages`` sections of ``/metrics``."""
        with self._lock:
            return {
                "server": {
                    "uptime_seconds": self.uptime_seconds(),
                    "requests_total": self.requests_total,
                    "requests_by_endpoint": dict(self.requests_by_endpoint),
                    "responses_by_status": dict(self.responses_by_status),
                    "in_flight": self.in_flight,
                    "in_flight_peak": self.in_flight_peak,
                    "rejected_busy": self.rejected_busy,
                    "retries": self.retries,
                },
                "stages": {
                    name: {
                        "runs": self._stage_runs[name],
                        "seconds": self._stage_seconds[name],
                    }
                    for name in sorted(self._stage_runs)
                },
            }


__all__ = ["ServeMetrics"]
