"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The daemon deliberately avoids web frameworks (no new hard deps — see
ROADMAP): its protocol needs are tiny.  This module parses one request
per connection (request line, headers, ``Content-Length`` body) and
renders one response with ``Connection: close``, which is exactly the
shape :mod:`http.client` — the stdlib client the tests, benchmarks, and
CI smoke use — speaks when it opens a fresh connection per request.

Size limits are enforced while reading (header count, body bytes); a
violation raises :class:`HttpError` carrying the status code the
connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

MAX_HEADER_LINES = 64
"""Header-count bound; more than this is a malformed or hostile client."""

MAX_BODY_BYTES = 8 << 20
"""Request-body bound (8 MiB) — far above any plausible schema+queries."""

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure with the status code to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request.  ``path`` excludes any query string; header
    names are lower-cased (HTTP headers are case-insensitive)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request from ``reader``; ``None`` on a closed/empty
    connection (a client that connected and hung up without sending).

    Raises :class:`HttpError` on malformed input and lets the stream's
    own exceptions (``IncompleteReadError`` on a mid-body disconnect,
    ``LimitOverrunError``/``ValueError`` on an oversized line) propagate
    for the connection handler to treat as a dropped client.
    """
    line = await reader.readline()
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many header lines")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body of {length} bytes is too large")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one ``Connection: close`` response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_LINES",
    "REASONS",
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
]
