"""The daemon's lifecycle: bind, announce readiness, serve, drain.

:class:`ReasoningServer` runs one asyncio event loop around one
:class:`~repro.serve.app.ServeApp`.  Reasoning never runs on the loop —
each POST hops to a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
sized by ``--workers`` (default: the in-flight limit), so slow pipelines
stall neither ``/healthz`` nor each other beyond the executor's width.

**Graceful drain**: SIGTERM (or SIGINT, or an in-process
:meth:`ReasoningServer.request_stop`) closes the listening socket,
then awaits every connection task already accepted — in-flight requests
finish and flush their responses — then shuts the executor down and
exits 0.  The CI smoke holds the daemon to exactly this: SIGTERM after
a burst must still yield a clean exit status.

**Readiness**: with ``--port 0`` the kernel picks the port, so the
daemon announces where it landed — a ``listening on <url>`` line on
stderr and, with ``--ready-file``, a JSON file written *atomically*
(tmp + rename) only after the socket is bound.  Supervisors and the
test harness poll the file instead of racing the bind.

:func:`running_server` packages the in-process variant the tests use:
the server loop runs on a daemon thread, the caller gets the live
:class:`ReasoningServer` (with ``base_url`` resolved), and shutdown
drains through the same path as SIGTERM.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.serve.app import ServeApp
from repro.serve.engine import ServeEngine
from repro.serve.metrics import ServeMetrics


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` configures, as one value."""

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: str | None = None
    memory_entries: int = 64
    max_inflight: int = 8
    workers: int | None = None
    request_timeout: float | None = None
    backend: str | None = None
    log_json: bool = False
    ready_file: str | None = None


class ReasoningServer:
    """One daemon instance; :meth:`run` blocks until drained."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = ServeMetrics()
        default_caps = (
            {"timeout": config.request_timeout}
            if config.request_timeout is not None
            else None
        )
        self.engine = ServeEngine(
            cache_dir=config.cache_dir,
            memory_entries=config.memory_entries,
            backend=config.backend,
            default_caps=default_caps,
            metrics=self.metrics,
        )
        self.base_url: str | None = None
        self.bound_port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> int:
        """Serve until stopped; returns the process exit code (0)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            pass  # SIGINT without a loop signal handler: still clean
        return 0

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        workers = self.config.workers or self.config.max_inflight
        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        app = ServeApp(
            self.engine,
            self.metrics,
            executor,
            max_inflight=self.config.max_inflight,
            log_json=self.config.log_json,
        )
        server = await asyncio.start_server(
            lambda reader, writer: self._track(app, reader, writer),
            self.config.host,
            self.config.port,
        )
        try:
            self.bound_port = server.sockets[0].getsockname()[1]
            self.base_url = f"http://{self.config.host}:{self.bound_port}"
            self._install_signal_handlers(loop)
            self._announce()
            self._ready.set()
            await self._stop.wait()
            # Drain: stop accepting, let accepted connections finish.
            server.close()
            await server.wait_closed()
            while self._tasks:
                await asyncio.gather(
                    *list(self._tasks), return_exceptions=True
                )
        finally:
            executor.shutdown(wait=True)

    async def _track(
        self,
        app: ServeApp,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Run one connection under drain tracking."""
        task = asyncio.current_task()
        assert task is not None
        self._tasks.add(task)
        try:
            await app.handle_connection(reader, writer)
        finally:
            self._tasks.discard(task)

    def _install_signal_handlers(
        self, loop: asyncio.AbstractEventLoop
    ) -> None:
        """SIGTERM/SIGINT → drain.  Only possible on the main thread of
        the main interpreter; the in-process test server (a daemon
        thread) stops via :meth:`request_stop` instead."""
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop_from_loop)
            except (NotImplementedError, RuntimeError, ValueError):
                return

    def _stop_from_loop(self) -> None:
        assert self._stop is not None
        self._stop.set()

    def _announce(self) -> None:
        print(f"repro serve: listening on {self.base_url}", file=sys.stderr)
        sys.stderr.flush()
        if self.config.ready_file:
            payload = json.dumps(
                {
                    "base_url": self.base_url,
                    "port": self.bound_port,
                    "pid": os.getpid(),
                }
            )
            tmp = f"{self.config.ready_file}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self.config.ready_file)

    # -- cross-thread control (the in-process test harness) -------------------

    def wait_until_ready(self, timeout: float = 30.0) -> bool:
        """Block until the socket is bound (or the wait times out)."""
        return self._ready.wait(timeout)

    def request_stop(self) -> None:
        """Trigger the same drain path as SIGTERM, from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._stop_from_loop)


@contextmanager
def running_server(config: ServeConfig) -> Iterator[ReasoningServer]:
    """A live in-process server on a daemon thread.

    Yields once the socket is bound (``base_url`` is resolved); on exit
    requests a drain and joins the thread.  Sharing the process means
    fault hooks installed by a test (:func:`repro.runtime.faults`)
    reach the server's store — which is exactly what the concurrency
    suite needs.
    """
    server = ReasoningServer(config)
    thread = threading.Thread(
        target=server.run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    if not server.wait_until_ready(30.0):
        raise RuntimeError("serve daemon failed to become ready")
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(30.0)


__all__ = ["ReasoningServer", "ServeConfig", "running_server"]
