"""The reasoning engine behind the daemon's POST endpoints.

One :class:`ServeEngine` owns the process's shared two-tier cache — a
thread-safe :class:`~repro.session.SessionCache` front (memory LRU)
over an optional :class:`~repro.store.ArtifactStore` (the crash-safe
persistent tier) — and answers ``check`` / ``implies`` / ``batch`` /
``diff`` requests on executor threads, off the event loop.  Requests
reason through :class:`~repro.components.DecomposedSession`, so cache
entries are keyed per constraint-graph component and two schemas
sharing an unchanged island share its artifacts.

**Parity is the design center**: a request is parsed with the same
surface-syntax parsers the CLI uses (:func:`repro.cli.parse_batch_query`),
governed by the same :class:`~repro.runtime.Budget` the CLI flags build
(:func:`~repro.runtime.budget.budget_from_caps`), and answered through
the same :func:`~repro.parallel.worker.answer_query` formatter that
makes ``--jobs N`` byte-identical to serial — so a served record is
byte-identical to the ``repro batch --json`` record for the same
schema and query, which the differential suite asserts wholesale.

**Concurrency model**: requests for the same *whole-schema*
fingerprint are serialized on a per-fingerprint lock (so a cold entry
is built exactly once and never observed half-built — no torn
adoption), requests for different schemas run concurrently, and the
shared cache's entry map and counters are protected by
:class:`ThreadSafeSessionCache` / :class:`LockedCacheStats` so every
``/metrics`` counter stays monotone.  Two *different* whole schemas
sharing a constraint-graph island may race on that island's component
entry; the race is benign — the staged builds are idempotent and each
``ensure_*`` stage publishes complete state or nothing.

**Fault degradation**: the staged cache publishes the in-memory entry
*before* persisting it, so a store crash mid-write (a
:class:`~repro.runtime.faults.SimulatedCrash`, or any unexpected
failure below the session) leaves warm, consistent state behind; the
engine retries the request once against that state and answers
normally — rebuild-and-answer, never a 500 carrying bad bytes.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import ExitStack, contextmanager
from typing import Any

from repro.cli import parse_batch_query, parse_statement
from repro.components import (
    DecomposedSession,
    compute_delta,
    decompose_schema,
)
from repro.cr.schema import CRSchema
from repro.dsl import parse_schema
from repro.errors import LimitExceededError, ReproError
from repro.parallel.worker import answer_query
from repro.pipeline import STAGE_DECOMPOSE, PipelineRun, activate_run, stage
from repro.runtime.budget import Budget, budget_from_caps
from repro.serve.metrics import ServeMetrics
from repro.session import SessionCache
from repro.session.cache import CacheStats
from repro.session.fingerprint import schema_fingerprint
from repro.solver.registry import pin_backend
from repro.store import ArtifactStore
from repro.store.store import StoreStats


LOCK_ACQUIRE_SECONDS = 300.0
"""Deadline on acquiring a per-fingerprint build lock.  Generous —
the build ahead may legitimately be large — but bounded, so a wedged
build degrades to a clean error instead of stacking executor threads
(lintkit rule R9)."""


class LockedCacheStats(CacheStats):
    """Cache counters whose increments are atomic under a lock, so the
    ``/metrics`` endpoint exports monotone values even while requests
    for *different* fingerprints build concurrently."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            super().bump(counter, amount)


class LockedStoreStats(StoreStats):
    """Store counters with the same atomic-increment treatment."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            super().bump(counter, amount)


class ThreadSafeSessionCache(SessionCache):
    """A :class:`SessionCache` whose entry-map operations are serialized.

    The base class is documented thread-compatible, not thread-safe;
    this subclass adds the external locking the daemon needs.  The map
    lock covers lookup/adopt/insert/evict (so LRU bookkeeping and store
    adoption are atomic); the *expensive* ``ensure_*`` stages run
    outside it, serialized instead by the engine's per-fingerprint
    locks — concurrent requests for different schemas still build in
    parallel.
    """

    def __init__(
        self, max_entries: int = 64, store: ArtifactStore | None = None
    ) -> None:
        super().__init__(max_entries, store=store, stats=LockedCacheStats())
        self._map_lock = threading.RLock()

    def artifacts(self, *args: Any, **kwargs: Any) -> Any:
        with self._map_lock:
            return super().artifacts(*args, **kwargs)

    def invalidate(self, fingerprint: str) -> bool:
        with self._map_lock:
            return super().invalidate(fingerprint)

    def __len__(self) -> int:
        with self._map_lock:
            return super().__len__()

    def __contains__(self, fingerprint: str) -> bool:
        with self._map_lock:
            return super().__contains__(fingerprint)


class ServeEngine:
    """Parse, govern, and answer one request at a time per fingerprint."""

    ENDPOINTS = ("check", "implies", "batch", "diff")

    def __init__(
        self,
        cache_dir: str | None = None,
        memory_entries: int = 64,
        backend: str | None = None,
        default_caps: dict[str, float | int] | None = None,
        metrics: ServeMetrics | None = None,
    ) -> None:
        self.store = (
            ArtifactStore(cache_dir, stats=LockedStoreStats())
            if cache_dir
            else None
        )
        self.cache = ThreadSafeSessionCache(memory_entries, store=self.store)
        self.backend = backend
        self.default_caps = dict(default_caps or {})
        self.metrics = metrics
        self._fingerprint_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    # -- request parsing -----------------------------------------------------

    def _schema_from(
        self, payload: dict[str, Any], field_name: str = "schema"
    ) -> CRSchema:
        text = payload.get(field_name)
        if not isinstance(text, str):
            raise ReproError(
                f'request needs a "{field_name}" field holding the '
                "schema DSL text"
            )
        return parse_schema(text)

    def _queries_from(
        self, endpoint: str, payload: dict[str, Any]
    ) -> list[tuple[str, Any]]:
        if endpoint == "check":
            cls = payload.get("class")
            if not isinstance(cls, str):
                raise ReproError(
                    'check needs a "class" field naming the class to test'
                )
            return [("sat", cls)]
        if endpoint == "implies":
            statement = payload.get("statement")
            if not isinstance(statement, str):
                raise ReproError(
                    'implies needs a "statement" field, e.g. "A isa B"'
                )
            return [("implies", parse_statement(statement))]
        lines = payload.get("queries")
        if (
            not isinstance(lines, list)
            or not lines
            or not all(isinstance(line, str) for line in lines)
        ):
            raise ReproError(
                'batch needs a non-empty "queries" list of strings '
                "('sat <Class>' or implication statements)"
            )
        return [parse_batch_query(line) for line in lines]

    def _diff_queries_from(
        self, payload: dict[str, Any]
    ) -> list[tuple[str, Any]]:
        """Diff queries are *optional*: ``None``/absent means a
        report-only delta, mirroring ``repro diff OLD NEW`` without a
        queries file."""
        lines = payload.get("queries")
        if lines is None:
            return []
        if not isinstance(lines, list) or not all(
            isinstance(line, str) for line in lines
        ):
            raise ReproError(
                'diff "queries" must be a list of strings when present'
            )
        return [parse_batch_query(line) for line in lines]

    def _budget_from(self, payload: dict[str, Any]) -> Budget | None:
        caps = payload.get("budget")
        if caps is not None and not isinstance(caps, dict):
            raise ReproError(
                f'"budget" must be an object of caps, got {caps!r}'
            )
        merged = dict(self.default_caps)
        merged.update(caps or {})
        return budget_from_caps(merged)

    # -- concurrency ---------------------------------------------------------

    def fingerprint_lock(self, fingerprint: str) -> threading.Lock:
        """The lock serializing requests against one schema fingerprint."""
        with self._locks_guard:
            lock = self._fingerprint_locks.get(fingerprint)
            if lock is None:
                lock = self._fingerprint_locks[fingerprint] = threading.Lock()
            return lock

    @contextmanager
    def hold_fingerprint_lock(self, fingerprint: str) -> Iterator[None]:
        """Acquire the per-fingerprint build lock *with a deadline*.

        The lock is held across a potentially large artifact build, so
        a bare ``with lock:`` would stack executor threads behind a
        wedged build forever (lintkit rule R9).  A bounded acquire
        degrades that pathology to a clean
        :class:`~repro.errors.LimitExceededError`, which the app maps
        onto the CLI's exit-3 resource-exhaustion shape.
        """
        lock = self.fingerprint_lock(fingerprint)
        if not lock.acquire(timeout=LOCK_ACQUIRE_SECONDS):
            raise LimitExceededError(
                "timed out waiting for the schema build lock after "
                f"{LOCK_ACQUIRE_SECONDS:g}s; another request is still "
                "building artifacts for this fingerprint"
            )
        try:
            yield
        finally:
            lock.release()

    # -- answering -----------------------------------------------------------

    def handle(self, endpoint: str, payload: Any) -> dict[str, Any]:
        """Answer one request; runs on an executor thread.

        Returns ``{"payload": <response body>, "stages": <PipelineRun
        dict>}``.  :class:`~repro.errors.ReproError` subclasses
        propagate for the app to map onto HTTP statuses (bad input →
        400, like CLI exit 2).
        """
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        if endpoint == "diff":
            return self._handle_diff(payload)
        schema = self._schema_from(payload)
        queries = self._queries_from(endpoint, payload)
        budget = self._budget_from(payload)
        fingerprint = schema_fingerprint(schema)
        run = PipelineRun()
        with self.hold_fingerprint_lock(fingerprint):
            try:
                records, any_unknown, all_positive = self._answer(
                    schema, queries, budget, run
                )
            except ReproError:
                raise
            except Exception:
                # An unexpected failure below the session — e.g. a store
                # write crashing mid-request.  The staged cache sets the
                # entry's fields before persisting, so the in-memory
                # state is warm and consistent; rebuild-and-answer.
                if self.metrics is not None:
                    self.metrics.count_retry()
                records, any_unknown, all_positive = self._answer(
                    schema, queries, budget, run
                )
        exit_code = 3 if any_unknown else (0 if all_positive else 1)
        return {
            "payload": {
                "schema": schema.name,
                "fingerprint": fingerprint,
                "results": records,
                "exit_code": exit_code,
            },
            "stages": run.as_dict(),
        }

    def _answer(
        self,
        schema: CRSchema,
        queries: list[tuple[str, Any]],
        budget: Budget | None,
        run: PipelineRun,
    ) -> tuple[list[dict[str, Any]], bool, bool]:
        """The CLI's serial batch loop, verbatim: one session, the shared
        :func:`answer_query` formatter, the same exit-code folding.

        The session is constructed *inside* the activated run so its
        decompose stage lands in this request's stage timings.
        """
        records: list[dict[str, Any]] = []
        any_unknown = False
        all_positive = True
        with ExitStack() as stack:
            stack.enter_context(activate_run(run))
            if self.backend:
                # Executor threads do not inherit the main thread's
                # contextvars, so the server-wide pin is re-applied per
                # request rather than once at startup.
                stack.enter_context(pin_backend(self.backend))
            session = DecomposedSession(
                schema, cache=self.cache, budget=budget
            )
            for kind, query in queries:
                record, _text, positive, unknown = answer_query(
                    session, kind, query
                )
                records.append(record)
                any_unknown = any_unknown or unknown
                all_positive = all_positive and positive
        return records, any_unknown, all_positive

    def _handle_diff(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``POST /diff``: component delta between two schemas, plus
        optional queries answered against the *new* one.

        Mirrors ``repro diff OLD NEW --json``: the new schema's
        components are classified against the shared cache and store
        (``components_reused`` vs ``components_rebuilt``), so after a
        one-island edit only the touched island rebuilds.  Serialized
        on the *new* schema's fingerprint, like any other request that
        builds its artifacts.
        """
        old_schema = self._schema_from(payload, "old_schema")
        new_schema = self._schema_from(payload, "new_schema")
        queries = self._diff_queries_from(payload)
        budget = self._budget_from(payload)
        fingerprint = schema_fingerprint(new_schema)
        run = PipelineRun()
        with self.hold_fingerprint_lock(fingerprint):
            try:
                body = self._answer_diff(
                    old_schema, new_schema, queries, budget, run
                )
            except ReproError:
                raise
            except Exception:
                if self.metrics is not None:
                    self.metrics.count_retry()
                body = self._answer_diff(
                    old_schema, new_schema, queries, budget, run
                )
        return {"payload": body, "stages": run.as_dict()}

    def _answer_diff(
        self,
        old_schema: CRSchema,
        new_schema: CRSchema,
        queries: list[tuple[str, Any]],
        budget: Budget | None,
        run: PipelineRun,
    ) -> dict[str, Any]:
        """The CLI's diff loop: decompose both sides, pair components
        by fingerprint, classify the new side, answer queries."""
        records: list[dict[str, Any]] = []
        any_unknown = False
        all_positive = True
        with ExitStack() as stack:
            stack.enter_context(activate_run(run))
            if self.backend:
                stack.enter_context(pin_backend(self.backend))
            with stage(STAGE_DECOMPOSE):
                old_decomposition = decompose_schema(old_schema)
            session = DecomposedSession(
                new_schema, cache=self.cache, budget=budget
            )
            delta = compute_delta(old_decomposition, session.decomposition)
            session.classify_all()
            for kind, query in queries:
                record, _text, positive, unknown = answer_query(
                    session, kind, query
                )
                records.append(record)
                any_unknown = any_unknown or unknown
                all_positive = all_positive and positive
        if queries:
            exit_code = 3 if any_unknown else (0 if all_positive else 1)
        else:
            exit_code = 0
        return {
            "old_schema": old_schema.name,
            "new_schema": new_schema.name,
            "old_fingerprint": old_decomposition.whole_fingerprint,
            "new_fingerprint": session.fingerprint,
            "components": delta.as_dict(),
            "results": records,
            "stats": {
                "components_total": session.components_total,
                "components_reused": session.components_reused,
                "components_rebuilt": session.components_rebuilt,
            },
            "exit_code": exit_code,
        }

    # -- observability -------------------------------------------------------

    def cache_metrics(self) -> dict[str, Any]:
        stats: dict[str, Any] = self.cache.stats.as_dict()
        stats["memory_entries"] = len(self.cache)
        stats["max_entries"] = self.cache.max_entries
        return stats

    def store_metrics(self) -> dict[str, int] | None:
        if self.store is None:
            return None
        return self.store.stats.as_dict()


__all__ = [
    "LockedCacheStats",
    "LockedStoreStats",
    "ServeEngine",
    "ThreadSafeSessionCache",
]
