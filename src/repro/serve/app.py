"""Request routing and response production for the daemon.

The :class:`ServeApp` sits between the HTTP layer and the engine: it
routes paths, gates POSTs on the in-flight limit (503 + ``Retry-After``
when saturated), hops reasoning work onto the bounded executor so the
event loop never blocks, and maps the library's exception hierarchy
onto HTTP statuses the way :func:`repro.cli.main` maps it onto exit
codes:

* degraded answers (budget exhaustion) are **successful** responses —
  200 with UNKNOWN records and ``exit_code`` 3, exactly like ``batch
  --json`` printing its report and exiting 3;
* :class:`~repro.errors.ReproError` (unparsable schema, malformed
  query, bad budget caps) is the client's fault — 400, the CLI's
  exit 2;
* anything else is ours — 500, with the traceback on stderr and an
  opaque body (never the partial result that caused it).

Request deadlines are *cooperative*: the server's ``--request-timeout``
becomes a default ``timeout`` budget cap merged under each request's
own caps, so a long request degrades to UNKNOWN records through the
normal governed path instead of being killed mid-pipeline.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import sys
import time
import traceback
from concurrent.futures import Executor
from typing import Any

from repro.errors import LimitExceededError, ReproError
from repro.serve.engine import ServeEngine
from repro.serve.http import (
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from repro.serve.metrics import ServeMetrics

GET_ENDPOINTS = ("/healthz", "/metrics")
POST_ENDPOINTS = ("/check", "/implies", "/batch", "/diff")


def _body(payload: Any) -> bytes:
    return json.dumps(payload, indent=2).encode("utf-8")


class ServeApp:
    """One app per server: routes requests, owns the access log."""

    def __init__(
        self,
        engine: ServeEngine,
        metrics: ServeMetrics,
        executor: Executor,
        max_inflight: int = 8,
        log_json: bool = False,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.executor = executor
        self.max_inflight = max_inflight
        self.log_json = log_json
        self._request_ids = itertools.count(1)

    # -- connection handling -------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request on one connection, then close it."""
        try:
            try:
                request = await read_request(reader)
            except HttpError as error:
                self.metrics.count_rejection(error.status)
                await self._send(
                    writer, error.status, _body({"error": error.message})
                )
                return
            except (asyncio.IncompleteReadError, ValueError):
                return  # client hung up mid-request or sent garbage
            if request is None:
                return  # connected and left without sending anything
            status, body, extra_headers = await self.dispatch(request)
            await self._send(writer, status, body, extra_headers)
        except (ConnectionError, BrokenPipeError):
            pass  # the client is gone; nothing left to tell them
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        writer.write(render_response(status, body, extra_headers=extra_headers))
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def dispatch(
        self, request: HttpRequest
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        """Answer one parsed request; always returns a response triple."""
        started = time.monotonic()
        request_id = f"req-{next(self._request_ids):06d}"
        status, body, extra_headers = await self._route(request)
        if self.log_json:
            line = {
                "event": "request",
                "id": request_id,
                "method": request.method,
                "path": request.path,
                "status": status,
                "duration_ms": (time.monotonic() - started) * 1000.0,
            }
            print(json.dumps(line), file=sys.stderr, flush=True)
        return status, body, extra_headers

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        path = request.path
        if path in GET_ENDPOINTS:
            if request.method != "GET":
                self.metrics.count_rejection(405)
                return 405, _body({"error": f"{path} only answers GET"}), ()
            self.metrics.count_get(path)
            payload = (
                self._healthz() if path == "/healthz" else self._metrics()
            )
            self.metrics.count_response(200)
            return 200, _body(payload), ()
        if path not in POST_ENDPOINTS:
            self.metrics.count_rejection(404)
            return 404, _body({"error": f"no such endpoint {path}"}), ()
        if request.method != "POST":
            self.metrics.count_rejection(405)
            return 405, _body({"error": f"{path} only answers POST"}), ()
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.metrics.count_rejection(400)
            return 400, _body({"error": f"request body is not JSON: {error}"}), ()
        if not self.metrics.try_start(path, self.max_inflight):
            # ``try_start`` already counted ``rejected_busy``; the
            # rejection never held an in-flight slot.
            self.metrics.count_rejection(503)
            return (
                503,
                _body({"error": "server is saturated; retry shortly"}),
                (("Retry-After", "1"),),
            )
        endpoint = path.lstrip("/")
        status = 500
        stages: dict[str, Any] | None = None
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self.executor, self.engine.handle, endpoint, payload
            )
            stages = result["stages"]
            status = 200
            return 200, _body(result["payload"]), ()
        except LimitExceededError as error:
            # A budget that ran out *outside* the governed per-query
            # path (normally exhaustion degrades to UNKNOWN records
            # inside a 200).  Still the CLI's exit-3 shape.
            status = 200
            return 200, _body({"error": str(error), "exit_code": 3}), ()
        except ReproError as error:
            status = 400
            return 400, _body({"error": str(error)}), ()
        except Exception:
            traceback.print_exc(file=sys.stderr)
            status = 500
            return 500, _body({"error": "internal server error"}), ()
        finally:
            self.metrics.request_finished(status, stages)

    # -- GET endpoints -------------------------------------------------------

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": self.metrics.uptime_seconds(),
        }

    def _metrics(self) -> dict[str, Any]:
        payload = self.metrics.snapshot()
        payload["cache"] = self.engine.cache_metrics()
        payload["store"] = self.engine.store_metrics()
        return payload


__all__ = ["GET_ENDPOINTS", "POST_ENDPOINTS", "ServeApp"]
