"""A tiny stdlib client for the daemon.

One fresh :mod:`http.client` connection per request — matching the
server's one-request-per-connection, ``Connection: close`` protocol —
so the tests, the benchmark, and the CI smoke all speak to the daemon
through the same few lines instead of three hand-rolled copies.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Mapping


class ServeClient:
    """Synchronous JSON-over-HTTP client for one daemon."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.hostname is None or parsed.port is None:
            raise ValueError(f"base_url needs host and port, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, Any, dict[str, str]]:
        """One request; returns ``(status, parsed_body, headers)``.

        The body parses as JSON when possible and comes back raw
        (decoded text) otherwise, so protocol tests can assert on
        non-JSON responses too.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers: dict[str, str] = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                parsed = raw.decode("utf-8", "replace")
            return response.status, parsed, dict(response.getheaders())
        finally:
            connection.close()

    # -- endpoint conveniences (status, parsed body) --------------------------

    def healthz(self) -> tuple[int, Any]:
        status, payload, _headers = self.request("GET", "/healthz")
        return status, payload

    def metrics(self) -> tuple[int, Any]:
        status, payload, _headers = self.request("GET", "/metrics")
        return status, payload

    def check(
        self,
        schema: str,
        cls: str,
        budget: Mapping[str, float | int] | None = None,
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {"schema": schema, "class": cls}
        if budget is not None:
            body["budget"] = dict(budget)
        status, payload, _headers = self.request("POST", "/check", body)
        return status, payload

    def implies(
        self,
        schema: str,
        statement: str,
        budget: Mapping[str, float | int] | None = None,
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {"schema": schema, "statement": statement}
        if budget is not None:
            body["budget"] = dict(budget)
        status, payload, _headers = self.request("POST", "/implies", body)
        return status, payload

    def batch(
        self,
        schema: str,
        queries: list[str],
        budget: Mapping[str, float | int] | None = None,
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {"schema": schema, "queries": list(queries)}
        if budget is not None:
            body["budget"] = dict(budget)
        status, payload, _headers = self.request("POST", "/batch", body)
        return status, payload

    def diff(
        self,
        old_schema: str,
        new_schema: str,
        queries: list[str] | None = None,
        budget: Mapping[str, float | int] | None = None,
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {
            "old_schema": old_schema,
            "new_schema": new_schema,
        }
        if queries is not None:
            body["queries"] = list(queries)
        if budget is not None:
            body["budget"] = dict(budget)
        status, payload, _headers = self.request("POST", "/diff", body)
        return status, payload


__all__ = ["ServeClient"]
