"""Schema debugging: minimal unsatisfiable constraint sets (Section 5).

The paper's conclusion: *"we are studying an extension of the method in
order to assist the designer when a schema is found unsatisfiable.  The
idea is to equip our method with a technique that provides the designer
with a minimum number of constraints that are unsatisfiable, thus
supporting her in schema debugging."*

This module implements that assistant.  Given a class that the reasoner
finds unsatisfiable, it computes a **minimal unsatisfiable subset
(MUS)** of the schema's constraint statements: keeping only the
statements in the MUS (structure — classes, relationships, signatures —
always stays) still forces the class empty, and dropping *any single*
statement from the MUS makes the class satisfiable again.

Two classical extraction algorithms are provided:

* **deletion-based** — walk the constraints once, dropping each one
  that is not needed; always ``n`` satisfiability calls;
* **QuickXplain** (Junker 2004) — divide-and-conquer; roughly
  ``O(k log(n/k))`` calls for a MUS of size ``k``, much cheaper when
  the conflict is small (the common case in schema debugging).

Minimality is *set-inclusion* minimality, as in the MUS literature; a
minimum-cardinality set would require exhausting all MUSes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.expansion import ExpansionLimits
from repro.cr.satisfiability import is_class_satisfiable
from repro.cr.schema import CRSchema
from repro.errors import ReproError


@dataclass(frozen=True)
class DebugReport:
    """A minimal unsatisfiable constraint set for one class.

    ``checks`` counts the satisfiability calls spent — the cost metric
    compared by experiment E10.
    """

    cls: str
    mus: tuple
    algorithm: str
    checks: int

    def pretty(self) -> str:
        lines = [
            f"class {self.cls!r} is unsatisfiable; a minimal conflicting "
            f"constraint set ({len(self.mus)} statements, found by "
            f"{self.algorithm} with {self.checks} reasoner calls):"
        ]
        lines.extend(f"  - {statement.pretty()}" for statement in self.mus)
        return "\n".join(lines)


class _SatOracle:
    """Counts satisfiability calls; the unit of cost for both algorithms."""

    def __init__(
        self, schema: CRSchema, cls: str, limits: ExpansionLimits | None
    ) -> None:
        self._schema = schema
        self._cls = cls
        self._limits = limits
        self._all = schema.constraints()
        self.checks = 0

    @property
    def all_constraints(self) -> list:
        return list(self._all)

    def satisfiable_with(self, kept) -> bool:
        """Is the class satisfiable when only ``kept`` constraints remain?"""
        removed = [c for c in self._all if c not in set(kept)]
        reduced = self._schema.without_constraints(removed)
        self.checks += 1
        return is_class_satisfiable(
            reduced, self._cls, expansion=None, limits=self._limits
        ).satisfiable


def _require_unsatisfiable(oracle: _SatOracle, cls: str) -> None:
    if oracle.satisfiable_with(oracle.all_constraints):
        raise ReproError(
            f"class {cls!r} is satisfiable; there is nothing to debug"
        )


def minimal_unsatisfiable_constraints(
    schema: CRSchema,
    cls: str,
    limits: ExpansionLimits | None = None,
) -> DebugReport:
    """Deletion-based MUS extraction.

    Invariant: ``kept`` always keeps ``cls`` unsatisfiable.  Each
    constraint is dropped tentatively; if ``cls`` becomes satisfiable
    the constraint is necessary and is put back.
    """
    oracle = _SatOracle(schema, cls, limits)
    _require_unsatisfiable(oracle, cls)
    kept = oracle.all_constraints
    for candidate in list(kept):
        trial = [c for c in kept if c != candidate]
        if not oracle.satisfiable_with(trial):
            kept = trial
    return DebugReport(
        cls=cls, mus=tuple(kept), algorithm="deletion", checks=oracle.checks
    )


def quickxplain_unsatisfiable_constraints(
    schema: CRSchema,
    cls: str,
    limits: ExpansionLimits | None = None,
) -> DebugReport:
    """QuickXplain MUS extraction (preferred when the conflict is small)."""
    oracle = _SatOracle(schema, cls, limits)
    _require_unsatisfiable(oracle, cls)

    def qx(background: list, delta_added: bool, candidates: list) -> list:
        if delta_added and not oracle.satisfiable_with(background):
            return []
        if len(candidates) == 1:
            return list(candidates)
        half = len(candidates) // 2
        left, right = candidates[:half], candidates[half:]
        conflict_right = qx(background + left, bool(left), right)
        conflict_left = qx(
            background + conflict_right, bool(conflict_right), left
        )
        return conflict_left + conflict_right

    mus = qx([], False, oracle.all_constraints)
    return DebugReport(
        cls=cls, mus=tuple(mus), algorithm="quickxplain", checks=oracle.checks
    )
