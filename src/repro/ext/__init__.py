"""Extensions the paper's Section 5 proposes as future work.

All three are implemented here:

* :mod:`repro.ext.disjointness` — disjointness statements between
  classes, including the measurable claim that they "lead to a dramatic
  reduction of the size of the resulting system";
* :mod:`repro.ext.covering` — covering constraints [Lenzerini 1987];
* :mod:`repro.ext.debugging` — schema debugging: when a class is
  unsatisfiable, compute a *minimal* set of schema constraints that
  already forces it empty.
"""

from repro.ext.covering import with_covering
from repro.ext.debugging import (
    DebugReport,
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
)
from repro.ext.disjointness import PruningReport, pruning_report, with_disjointness

__all__ = [
    "with_disjointness",
    "with_covering",
    "PruningReport",
    "pruning_report",
    "DebugReport",
    "minimal_unsatisfiable_constraints",
    "quickxplain_unsatisfiable_constraints",
]
