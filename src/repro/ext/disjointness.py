"""Disjointness constraints and their pruning effect (Section 5).

The paper's conclusion makes two claims about disjointness statements:
they *extend expressiveness* and they *shrink the expansion* — "taking
as an example the diagram of Figure 2, the natural restriction that
talks and speakers be disjoint leads to a system of disequations with
just a few unknowns".

The constraint itself lives in :class:`repro.cr.schema.CRSchema`
(compound-class consistency consults it centrally); this module adds
the schema-surgery helper and the measurement utilities behind
experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.schema import CRSchema
from repro.cr.system import build_system


def with_disjointness(schema: CRSchema, *groups: tuple[str, ...]) -> CRSchema:
    """A copy of ``schema`` with extra pairwise-disjointness groups."""
    return CRSchema(
        classes=schema.classes,
        relationships=schema.relationships,
        isa=schema.isa_statements,
        cards=schema.declared_cards,
        disjointness=tuple(schema.disjointness_groups)
        + tuple(frozenset(group) for group in groups),
        coverings=schema.coverings,
        name=schema.name,
    )


@dataclass(frozen=True)
class PruningReport:
    """Expansion / system sizes before and after adding disjointness."""

    classes: int
    compound_classes_before: int
    compound_classes_after: int
    compound_relationships_before: int
    compound_relationships_after: int
    unknowns_before: int
    unknowns_after: int
    disequations_before: int
    disequations_after: int

    @property
    def unknown_reduction_factor(self) -> float:
        if self.unknowns_after == 0:
            return float("inf")
        return self.unknowns_before / self.unknowns_after

    def pretty(self) -> str:
        return (
            f"consistent compound classes: {self.compound_classes_before} -> "
            f"{self.compound_classes_after}; "
            f"consistent compound relationships: "
            f"{self.compound_relationships_before} -> "
            f"{self.compound_relationships_after}; "
            f"unknowns: {self.unknowns_before} -> {self.unknowns_after} "
            f"({self.unknown_reduction_factor:.1f}x); "
            f"disequations: {self.disequations_before} -> "
            f"{self.disequations_after}"
        )


def pruning_report(
    schema: CRSchema,
    *groups: tuple[str, ...],
    limits: ExpansionLimits | None = None,
) -> PruningReport:
    """Measure how much the given disjointness groups shrink the system.

    Builds the pruned-mode disequation system with and without the
    groups and reports unknown / disequation counts — the paper's E9
    claim, quantified.
    """
    before = build_system(Expansion(schema, limits), mode="pruned")
    after_schema = with_disjointness(schema, *groups)
    after = build_system(Expansion(after_schema, limits), mode="pruned")
    return PruningReport(
        classes=len(schema.classes),
        compound_classes_before=len(
            before.expansion.consistent_compound_classes()
        ),
        compound_classes_after=len(
            after.expansion.consistent_compound_classes()
        ),
        compound_relationships_before=len(
            before.expansion.consistent_compound_relationships()
        ),
        compound_relationships_after=len(
            after.expansion.consistent_compound_relationships()
        ),
        unknowns_before=len(before.system.variables),
        unknowns_after=len(after.system.variables),
        disequations_before=len(before.system),
        disequations_after=len(after.system),
    )
