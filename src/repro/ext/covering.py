"""Covering constraints (Section 5, following [Lenzerini 1987]).

A covering ``cover(C by C1, ..., Ck)`` states that every instance of
``C`` belongs to at least one ``Ci``.  Like disjointness, the
constraint itself is stored on the schema and enforced through
compound-class consistency: a compound class containing ``C`` but none
of the ``Ci`` is inconsistent, hence empty in every model.

Together with ISA statements ``Ci ≼ C`` this expresses the classical
*total generalization*; with disjointness on the ``Ci`` it expresses a
*partition*.  Both composites are provided as helpers.
"""

from __future__ import annotations

from repro.cr.schema import CRSchema
from repro.ext.disjointness import with_disjointness


def with_covering(
    schema: CRSchema, covered: str, *coverers: str
) -> CRSchema:
    """A copy of ``schema`` with one more covering constraint."""
    return CRSchema(
        classes=schema.classes,
        relationships=schema.relationships,
        isa=schema.isa_statements,
        cards=schema.declared_cards,
        disjointness=schema.disjointness_groups,
        coverings=tuple(schema.coverings) + ((covered, frozenset(coverers)),),
        name=schema.name,
    )


def with_total_generalization(
    schema: CRSchema, parent: str, *children: str
) -> CRSchema:
    """ISA from every child to ``parent`` plus the covering of ``parent``.

    The children are assumed to be declared; the ISA statements are
    added if not already present.
    """
    existing = set(schema.isa_statements)
    new_isa = [
        (child, parent) for child in children if (child, parent) not in existing
    ]
    extended = CRSchema(
        classes=schema.classes,
        relationships=schema.relationships,
        isa=tuple(schema.isa_statements) + tuple(new_isa),
        cards=schema.declared_cards,
        disjointness=schema.disjointness_groups,
        coverings=schema.coverings,
        name=schema.name,
    )
    return with_covering(extended, parent, *children)


def with_partition(schema: CRSchema, parent: str, *children: str) -> CRSchema:
    """A total *and* disjoint generalization of ``parent`` into ``children``."""
    total = with_total_generalization(schema, parent, *children)
    if len(children) < 2:
        return total
    return with_disjointness(total, tuple(children))
