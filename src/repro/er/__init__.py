"""Entity-Relationship front-end.

The paper's motivating figures are ER diagrams; this package provides
an ER vocabulary (entity types, n-ary relationship types with
``(min, max)`` participation constraints, ISA arrows), the faithful
translation to the CR model, and an ASCII diagram renderer for the
Figure-1/Figure-2 style pictures.
"""

from repro.er.model import EREntity, ERRelationship, ERSchema, Participation
from repro.er.to_cr import er_to_cr
from repro.er.diagrams import render_er_diagram

__all__ = [
    "EREntity",
    "ERRelationship",
    "ERSchema",
    "Participation",
    "er_to_cr",
    "render_er_diagram",
]
