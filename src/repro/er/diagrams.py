"""ASCII rendering of ER diagrams in the paper's visual dialect.

Entities are rendered as ``[boxes]``, relationships as ``<diamonds>``,
participation legs carry their ``(min, max)`` pair, ISA arrows and
dashed refinement edges are listed underneath — a faithful textual
stand-in for Figures 1 and 2, printable from benchmarks and examples::

    [C] --(2,N)-- <R> --(0,1)-- [D]
    ISA:
      D --isa--> C

The renderer is presentation only — no reasoning reads this output.
"""

from __future__ import annotations

from repro.er.model import ERRelationship, ERSchema


def _relationship_line(rel: ERRelationship) -> str:
    """One line per relationship: ``[E1] --(c1)-- <R> --(c2)-- [E2] ...``."""
    legs = rel.participations
    pieces = [
        f"[{legs[0].entity}]",
        f"--{legs[0].cardinality_label()}--",
        f"<{rel.name}>",
    ]
    for leg in legs[1:]:
        pieces.append(f"--{leg.cardinality_label()}--")
        pieces.append(f"[{leg.entity}]")
    return " ".join(pieces)


def render_er_diagram(er: ERSchema) -> str:
    """A textual ER diagram: one line per relationship, then ISA arrows.

    Refinements (dashed edges) are rendered as ``- - ->`` lines, the
    Figure-2 notation for refined cardinalities.
    """
    lines: list[str] = [f"ER diagram: {er.name}", "=" * (12 + len(er.name))]
    for rel in er.relationships.values():
        lines.append(_relationship_line(rel))
    isa_lines = [
        f"  {entity.name} --isa--> {parent}"
        for entity in er.entities.values()
        for parent in entity.parents
    ]
    if isa_lines:
        lines.append("ISA:")
        lines.extend(isa_lines)
    if er.refinements:
        lines.append("refinements (dashed edges):")
        for refinement in er.refinements:
            upper = "N" if refinement.maximum is None else str(refinement.maximum)
            lines.append(
                f"  {refinement.entity} - - ({refinement.minimum},{upper}) - -> "
                f"{refinement.relationship}.{refinement.role}"
            )
    if er.disjointness:
        lines.append("disjointness:")
        for group in er.disjointness:
            lines.append("  disjoint(" + ", ".join(sorted(group)) + ")")
    if er.coverings:
        lines.append("coverings:")
        for covered, coverers in er.coverings:
            lines.append(
                f"  {covered} covered by " + ", ".join(sorted(coverers))
            )
    unconnected = set(er.entities) - {
        leg.entity
        for rel in er.relationships.values()
        for leg in rel.participations
    }
    if unconnected:
        lines.append("isolated entities: " + ", ".join(sorted(unconnected)))
    return "\n".join(lines)
