"""Translation from the ER front-end to the CR model.

The mapping is the one the paper sketches when it introduces CR as the
common abstraction: entities become classes, ER relationship legs
become relationship roles with the leg's entity as primary class, the
``(min, max)`` pair of a leg becomes the cardinality declaration of the
primary class on that role, ISA arrows become ISA statements, and
cardinality refinements become declarations for the sub-entity on the
inherited role.
"""

from __future__ import annotations

from repro.cr.builder import SchemaBuilder
from repro.cr.schema import CRSchema
from repro.er.model import ERSchema


def er_to_cr(er: ERSchema) -> CRSchema:
    """Translate a validated ER schema into an equivalent CR-schema."""
    er.validate()
    builder = SchemaBuilder(er.name)
    for entity in er.entities.values():
        builder.cls(entity.name)
    for entity in er.entities.values():
        for parent in entity.parents:
            builder.isa(entity.name, parent)
    for rel in er.relationships.values():
        builder.relationship(
            rel.name,
            **{leg.role: leg.entity for leg in rel.participations},
        )
        for leg in rel.participations:
            if leg.minimum > 0 or leg.maximum is not None:
                builder.card(
                    leg.entity, rel.name, leg.role, leg.minimum, leg.maximum
                )
    for refinement in er.refinements:
        builder.card(
            refinement.entity,
            refinement.relationship,
            refinement.role,
            refinement.minimum,
            refinement.maximum,
        )
    for group in er.disjointness:
        builder.disjoint(*sorted(group))
    for covered, coverers in er.coverings:
        builder.cover(covered, *sorted(coverers))
    return builder.build()
