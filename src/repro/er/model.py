"""An Entity-Relationship vocabulary in the paper's dialect.

Entities are boxes, relationships are diamonds, and every connection of
an entity to a relationship carries a ``(min-card, max-card)`` pair —
the notation of the paper's Figure 1 and Figure 2 (following Batini,
Ceri & Navathe).  ISA arrows connect entities.  Cardinality
*refinements* (the dashed edge of Figure 2) attach a tighter pair for a
sub-entity on a role it inherits.

The ER layer is deliberately thin: semantics is given by translation to
CR (:func:`repro.er.to_cr.er_to_cr`), and all reasoning happens there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cr.schema import UNBOUNDED
from repro.errors import DuplicateSymbolError, SchemaError, UnknownSymbolError


@dataclass(frozen=True)
class Participation:
    """One leg of a relationship: role, entity, and (min, max) pair."""

    role: str
    entity: str
    minimum: int = 0
    maximum: int | None = UNBOUNDED

    def cardinality_label(self) -> str:
        upper = "N" if self.maximum is None else str(self.maximum)
        return f"({self.minimum},{upper})"


@dataclass(frozen=True)
class EREntity:
    """An entity type; ``parents`` are the targets of its ISA arrows."""

    name: str
    parents: tuple[str, ...] = ()


@dataclass(frozen=True)
class ERRelationship:
    """A relationship type with its participations in declaration order."""

    name: str
    participations: tuple[Participation, ...]

    def __post_init__(self) -> None:
        if len(self.participations) < 2:
            raise SchemaError(
                f"ER relationship {self.name!r} must connect at least two legs"
            )


@dataclass(frozen=True)
class Refinement:
    """A tighter (min, max) pair declared for a sub-entity on a role.

    The dashed edges of the paper's Figure 2: ``Discussant`` refines the
    ``(1, ∞)`` of ``Speaker`` on role ``U1`` of ``Holds`` to ``(0, 2)``.
    """

    entity: str
    relationship: str
    role: str
    minimum: int = 0
    maximum: int | None = UNBOUNDED


@dataclass
class ERSchema:
    """A mutable ER schema; translate with :func:`repro.er.er_to_cr`."""

    name: str = "ER"
    entities: dict[str, EREntity] = field(default_factory=dict)
    relationships: dict[str, ERRelationship] = field(default_factory=dict)
    refinements: list[Refinement] = field(default_factory=list)
    disjointness: list[frozenset[str]] = field(default_factory=list)
    coverings: list[tuple[str, frozenset[str]]] = field(default_factory=list)

    # -- declaration helpers ------------------------------------------------

    def entity(self, name: str, isa: tuple[str, ...] | list[str] = ()) -> ERSchema:
        """Declare an entity, optionally with ISA arrows to ``isa``."""
        if name in self.entities:
            raise DuplicateSymbolError(f"entity {name!r} declared twice")
        self.entities[name] = EREntity(name, tuple(isa))
        return self

    def relationship(
        self,
        name: str,
        *legs: tuple[str, str, int, int | None],
    ) -> ERSchema:
        """Declare a relationship from ``(role, entity, min, max)`` legs."""
        if name in self.relationships:
            raise DuplicateSymbolError(f"relationship {name!r} declared twice")
        participations = tuple(
            Participation(role, entity, minimum, maximum)
            for role, entity, minimum, maximum in legs
        )
        self.relationships[name] = ERRelationship(name, participations)
        return self

    def refine(
        self,
        entity: str,
        relationship: str,
        role: str,
        minimum: int = 0,
        maximum: int | None = UNBOUNDED,
    ) -> ERSchema:
        """Attach a cardinality refinement (dashed edge) for a sub-entity."""
        self.refinements.append(
            Refinement(entity, relationship, role, minimum, maximum)
        )
        return self

    def disjoint(self, *entities: str) -> ERSchema:
        self.disjointness.append(frozenset(entities))
        return self

    def cover(self, covered: str, *coverers: str) -> ERSchema:
        self.coverings.append((covered, frozenset(coverers)))
        return self

    # -- light validation (full validation happens in the CR layer) --------

    def validate(self) -> None:
        for entity in self.entities.values():
            for parent in entity.parents:
                if parent not in self.entities:
                    raise UnknownSymbolError(
                        f"entity {entity.name!r} has ISA arrow to undeclared "
                        f"{parent!r}"
                    )
        for rel in self.relationships.values():
            for leg in rel.participations:
                if leg.entity not in self.entities:
                    raise UnknownSymbolError(
                        f"relationship {rel.name!r} connects undeclared "
                        f"entity {leg.entity!r}"
                    )
        for refinement in self.refinements:
            rel = self.relationships.get(refinement.relationship)
            if rel is None:
                raise UnknownSymbolError(
                    f"refinement targets undeclared relationship "
                    f"{refinement.relationship!r}"
                )
            if refinement.role not in {p.role for p in rel.participations}:
                raise UnknownSymbolError(
                    f"refinement targets unknown role {refinement.role!r} of "
                    f"{refinement.relationship!r}"
                )
            if refinement.entity not in self.entities:
                raise UnknownSymbolError(
                    f"refinement uses undeclared entity {refinement.entity!r}"
                )
