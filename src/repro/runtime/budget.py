"""Resource budgets for the decision pipeline.

The paper proves the expansion step is inherently exponential (compound
classes range over subsets of the class set, and Theorem 3.4's zero-set
enumeration is exponential on top of that), so on large or adversarial
schemas the reasoner must be able to *stop* — bounded in wall-clock
time and in work performed — rather than hang.  This module provides
the primitive that makes that possible:

:class:`Budget`
    A mutable account of the resources a computation may spend: a
    wall-clock timeout, a cap on expansion nodes visited, a cap on LP
    solver calls, a cap on simplex pivots, and a cooperative
    :meth:`~Budget.cancel` token.  The hot loops of the pipeline
    (expansion enumeration, the satisfiability fixpoint, simplex
    pivoting, Fourier–Motzkin elimination) charge the *ambient* budget
    as they work; exhaustion raises
    :class:`~repro.errors.BudgetExceededError` carrying a structured
    :class:`ProgressSnapshot`.

Budgets are installed ambiently (a :mod:`contextvars` variable) so that
the deep hot loops need no signature changes and third-party entry
points (the CLI, the debugging extractor) are governed for free::

    budget = Budget(timeout=10.0, max_expansion_nodes=100_000)
    with activate(budget):
        result = is_class_satisfiable(schema, "Speaker")

Public entry points also accept ``budget=`` directly and then degrade
to an UNKNOWN verdict instead of raising — see
:func:`repro.cr.satisfiability.is_class_satisfiable`.

Time is read through an injectable ``clock`` (default
:func:`time.monotonic`) so the timeout path is deterministic under
test.  Checks are cheap: counters are plain integer increments, the
cancellation flag is a bool read, and the clock is consulted only every
128 charges (plus at every coarse-grained point such as an LP call).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, TypeVar

from repro.errors import BudgetExceededError, CancelledError, ReproError

_T = TypeVar("_T")

_TICK_MASK = 0x7F
"""Consult the clock once per ``_TICK_MASK + 1`` fine-grained charges."""


@dataclass(frozen=True)
class ProgressSnapshot:
    """How far a governed computation got when its budget ran out.

    ``reason`` names the exhausted resource: ``"timeout"``,
    ``"expansion-nodes"``, ``"solver-calls"``, ``"pivots"``, or
    ``"cancelled"``.  ``phase`` is the pipeline stage that was running
    (``"expansion"``, ``"system"``, ``"decide:fixpoint"``, ...).
    """

    phase: str
    reason: str
    elapsed: float
    expansion_nodes: int
    solver_calls: int
    pivots: int

    def pretty(self) -> str:
        return (
            f"{self.reason} in phase {self.phase!r} after "
            f"{self.elapsed:.3f}s ({self.expansion_nodes} expansion nodes, "
            f"{self.solver_calls} LPs, {self.pivots} pivots)"
        )


class Budget:
    """A resource account charged cooperatively by the decision pipeline.

    Parameters
    ----------
    timeout:
        Wall-clock seconds the computation may run (``None`` =
        unlimited).  ``timeout=0`` exhausts at the first check.
    max_expansion_nodes:
        Cap on expansion work: nodes visited by the consistent-compound
        DFS plus compound classes/relationships materialised.
    max_solver_calls:
        Cap on LP solves (simplex runs plus Fourier–Motzkin runs).
    max_pivots:
        Cap on fine-grained solver work: simplex pivots plus
        Fourier–Motzkin constraint combinations.
    clock:
        Monotonic time source; injectable for deterministic tests.

    A budget is reusable only in the sense that its counters persist
    across the calls it governs — sequential calls under the same
    budget share one account.  ``cancel()`` may be called from another
    thread; the working thread notices at its next charge.
    """

    def __init__(
        self,
        timeout: float | None = None,
        max_expansion_nodes: int | None = None,
        max_solver_calls: int | None = None,
        max_pivots: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        for name, value in (
            ("timeout", timeout),
            ("max_expansion_nodes", max_expansion_nodes),
            ("max_solver_calls", max_solver_calls),
            ("max_pivots", max_pivots),
        ):
            if value is not None and value < 0:
                raise ReproError(f"{name} must be non-negative, got {value!r}")
        self.timeout = timeout
        self.max_expansion_nodes = max_expansion_nodes
        self.max_solver_calls = max_solver_calls
        self.max_pivots = max_pivots
        self.expansion_nodes = 0
        self.solver_calls = 0
        self.pivots = 0
        self.phase = "idle"
        self._clock = clock
        self._started: float | None = None
        self._cancelled = False
        self._ticks = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Anchor the wall clock; idempotent (first activation wins)."""
        if self._started is None:
            self._started = self._clock()

    def cancel(self) -> None:
        """Cooperatively cancel: the governed computation stops at its
        next budget check with a :class:`~repro.errors.CancelledError`."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def remaining_time(self) -> float | None:
        """Seconds left before the timeout, or ``None`` if unlimited."""
        if self.timeout is None:
            return None
        return max(0.0, self.timeout - self.elapsed())

    def enter_phase(self, name: str) -> None:
        """Record the pipeline stage (for snapshots) and run a full check."""
        self.phase = name
        self.check()

    # -- charging ----------------------------------------------------------

    def check(self) -> None:
        """Full check: cancellation and deadline.  Coarse-grained sites
        (phase entries, fixpoint iterations, LP calls) call this every
        time; fine-grained sites go through the cheaper charge methods."""
        if self._cancelled:
            self._exhaust("cancelled")
        if self.timeout is not None and self.elapsed() >= self.timeout:
            self._exhaust("timeout")

    def charge_expansion(self, nodes: int = 1) -> None:
        """Account for expansion work (DFS nodes, materialised compounds)."""
        self.expansion_nodes += nodes
        if (
            self.max_expansion_nodes is not None
            and self.expansion_nodes > self.max_expansion_nodes
        ):
            self._exhaust("expansion-nodes")
        self._tick()

    def charge_solver_call(self) -> None:
        """Account for one LP solve (simplex or Fourier–Motzkin run)."""
        self.solver_calls += 1
        if (
            self.max_solver_calls is not None
            and self.solver_calls > self.max_solver_calls
        ):
            self._exhaust("solver-calls")
        self.check()

    def charge_pivots(self, count: int = 1) -> None:
        """Account for fine-grained solver work (pivots, FM combinations)."""
        self.pivots += count
        if self.max_pivots is not None and self.pivots > self.max_pivots:
            self._exhaust("pivots")
        self._tick()

    def _tick(self) -> None:
        if self._cancelled:
            self._exhaust("cancelled")
        self._ticks += 1
        if (self._ticks & _TICK_MASK) == 0:
            if self.timeout is not None and self.elapsed() >= self.timeout:
                self._exhaust("timeout")

    def merge_charges(
        self,
        expansion_nodes: int = 0,
        solver_calls: int = 0,
        pivots: int = 0,
    ) -> None:
        """Fold the charges of a completed child computation into this
        account.

        The parallel execution layer (:mod:`repro.parallel`) runs work
        in worker processes, each under its own :class:`Budget`; the
        parent absorbs the workers' counters here so the aggregate
        account stays honest.  The usual cap semantics apply — if the
        merged totals cross a cap, the merge raises
        :class:`~repro.errors.BudgetExceededError` exactly like a local
        charge would, which is what cancels sibling workers.
        """
        if expansion_nodes:
            self.charge_expansion(expansion_nodes)
        if solver_calls:
            self.solver_calls += solver_calls
            if (
                self.max_solver_calls is not None
                and self.solver_calls > self.max_solver_calls
            ):
                self._exhaust("solver-calls")
        if pivots:
            self.charge_pivots(pivots)
        self.check()

    def remaining_caps(self) -> dict[str, float | int]:
        """Constructor keyword arguments for a child :class:`Budget`
        covering whatever this account has left.

        A worker process cannot share the parent's (unpicklable, clock-
        anchored) budget object, so the parent hands each dispatched
        chunk a fresh budget built from the *remaining* headroom at
        dispatch time.  Unlimited resources are omitted.  This
        intentionally does not split caps across siblings: any single
        worker may spend up to the whole remainder, and the parent's
        :meth:`merge_charges` is what detects aggregate overdraft.
        """
        caps: dict[str, float | int] = {}
        remaining = self.remaining_time()
        if remaining is not None:
            caps["timeout"] = remaining
        if self.max_expansion_nodes is not None:
            caps["max_expansion_nodes"] = max(
                0, self.max_expansion_nodes - self.expansion_nodes
            )
        if self.max_solver_calls is not None:
            caps["max_solver_calls"] = max(
                0, self.max_solver_calls - self.solver_calls
            )
        if self.max_pivots is not None:
            caps["max_pivots"] = max(0, self.max_pivots - self.pivots)
        return caps

    # -- reporting ---------------------------------------------------------

    def snapshot(self, reason: str = "in-progress") -> ProgressSnapshot:
        return ProgressSnapshot(
            phase=self.phase,
            reason=reason,
            elapsed=self.elapsed(),
            expansion_nodes=self.expansion_nodes,
            solver_calls=self.solver_calls,
            pivots=self.pivots,
        )

    def _exhaust(self, reason: str) -> None:
        snapshot = self.snapshot(reason)
        error_type = (
            CancelledError if reason == "cancelled" else BudgetExceededError
        )
        raise error_type(f"budget exhausted: {snapshot.pretty()}", snapshot)

    def __repr__(self) -> str:
        caps = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("timeout", self.timeout),
                ("max_expansion_nodes", self.max_expansion_nodes),
                ("max_solver_calls", self.max_solver_calls),
                ("max_pivots", self.max_pivots),
            )
            if value is not None
        )
        return f"Budget({caps or 'unlimited'}; {self.snapshot().pretty()})"


BUDGET_CAP_KEYS: dict[str, str] = {
    "timeout": "timeout",
    "max_expansion": "max_expansion_nodes",
    "max_lp": "max_solver_calls",
    "max_pivots": "max_pivots",
}
"""The externally-visible cap names (matching the CLI's ``--timeout`` /
``--max-expansion`` / ``--max-lp`` flags) mapped to :class:`Budget`
constructor keywords.  :func:`budget_from_caps` validates against this
table; the serve daemon uses it to turn a request's ``budget`` object
into the same governance the CLI flags produce."""


def budget_from_caps(caps: Mapping[str, Any] | None) -> Budget | None:
    """A :class:`Budget` from a mapping of CLI-named caps, or ``None``.

    ``caps`` uses the surface names of :data:`BUDGET_CAP_KEYS` — exactly
    the vocabulary of the CLI resource flags — so a JSON request body
    like ``{"timeout": 5, "max_lp": 100}`` maps onto the same
    degrade-to-UNKNOWN governance ``repro batch --timeout 5 --max-lp
    100`` gets.  ``None``-valued and absent caps are unlimited; an
    empty or ``None`` mapping yields no budget at all.  Unknown keys and
    non-numeric values raise :class:`~repro.errors.ReproError` (the
    usage-error class, exit code 2 / HTTP 400), as does a negative cap
    via the :class:`Budget` constructor.
    """
    if caps is None:
        return None
    if not isinstance(caps, Mapping):
        raise ReproError(
            f"budget must be an object of caps, got {caps!r}"
        )
    kwargs: dict[str, float | int] = {}
    for key, value in caps.items():
        target = BUDGET_CAP_KEYS.get(key)
        if target is None:
            raise ReproError(
                f"unknown budget cap {key!r}; expected one of "
                f"{sorted(BUDGET_CAP_KEYS)}"
            )
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(
                f"budget cap {key!r} must be a number, got {value!r}"
            )
        if target != "timeout" and not isinstance(value, int):
            raise ReproError(
                f"budget cap {key!r} must be an integer, got {value!r}"
            )
        kwargs[target] = value
    if not kwargs:
        return None
    return Budget(**kwargs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Ambient installation
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[Budget | None] = ContextVar(
    "repro_active_budget", default=None
)


def current_budget() -> Budget | None:
    """The budget governing the current context, or ``None``.

    Hot loops fetch this once per call and charge it if present; the
    ``None`` fast path costs a single attribute check per iteration.
    """
    return _ACTIVE.get()


@contextmanager
def activate(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for the enclosed block.

    ``activate(None)`` is a no-op (the enclosing budget, if any, stays
    in force).  Nested activations shadow the outer budget for the
    inner block.
    """
    if budget is None:
        yield None
        return
    budget.start()
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)


@contextmanager
def scoped_phase(name: str) -> Iterator[None]:
    """Record a pipeline stage on the ambient budget for a block.

    Like :meth:`Budget.enter_phase` (including its full check on entry)
    but restores the previous phase on exit, so nested governed layers
    — e.g. a cached session delegating to the core decision procedures
    — leave the outer layer's phase label intact in snapshots.  A no-op
    without an ambient budget.
    """
    budget = current_budget()
    if budget is None:
        yield
        return
    previous = budget.phase
    budget.enter_phase(name)
    try:
        yield
    finally:
        budget.phase = previous


def run_governed(
    budget: Budget | None,
    compute: Callable[[], _T],
    degrade: Callable[[BudgetExceededError], _T],
) -> _T:
    """Run ``compute`` under ``budget``, degrading on exhaustion.

    This is the common shape of every governed public entry point: with
    an explicit ``budget`` the caller asked for graceful degradation,
    so exhaustion becomes ``degrade(error)`` (an UNKNOWN-verdict
    result); without one, any :class:`BudgetExceededError` raised by an
    *ambient* budget propagates unchanged so the outermost governed
    caller handles it exactly once.
    """
    with activate(budget):
        try:
            return compute()
        except BudgetExceededError as error:
            if budget is None:
                raise
            return degrade(error)


__all__ = [
    "BUDGET_CAP_KEYS",
    "Budget",
    "ProgressSnapshot",
    "activate",
    "budget_from_caps",
    "current_budget",
    "run_governed",
    "scoped_phase",
]
