"""Fault-tolerant solver fallback, composed from the backend registry.

The satisfiability fixpoint normally runs every LP on the active
primary backend (the interned sparse simplex unless ``--backend`` /
``REPRO_BACKEND`` / :func:`repro.solver.registry.pin_backend` says
otherwise).  If a solve *faults* (a :class:`~repro.errors.SolverError`,
whether a genuine defect or one injected by
:mod:`repro.runtime.faults`), the affected LP is retried down the
policy's backend chain — by default the completely independent
Fourier–Motzkin backend — before the failure is allowed to surface; if
the whole fixpoint run still faults, the caller
(:func:`repro.cr.satisfiability.acceptable_with_positive`) falls back
to the naive Theorem-3.4 engine when the system is small enough.  The
default chain is

    fixpoint/primary LP backend  →  per-LP Fourier–Motzkin retry
    →  naive engine

and every link degrades, never silently changes the answer: each
backend is sound and complete on the systems it accepts, so a verdict
produced down-chain equals the verdict the unfaulted run would have
produced.

Budget exhaustion (:class:`~repro.errors.BudgetExceededError`) is
deliberately *not* retried — running out of resources on one backend
is not evidence the next, slower backend would do better.

Historically this module hard-wired ``simplex → fourier_motzkin``
calls; it is now a thin policy layer over
:mod:`repro.solver.registry`, and :class:`FallbackPolicy` can name an
arbitrary registered chain via ``chain=``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.solver.core import InternedSystem
from repro.solver.homogeneous import HomogeneousWitness
from repro.solver.linear import LinearSystem
from repro.solver.registry import (
    DEFAULT_BACKEND,
    FourierMotzkinBackend,
    SolverBackend,
    active_backend,
    chain_maximal_support,
    chain_positive_solution,
    get_backend,
)


@dataclass(frozen=True)
class FallbackPolicy:
    """What the degradation chain is allowed to try.

    ``fm_max_constraints`` bounds the intermediate systems of the
    Fourier–Motzkin retries (FM is doubly exponential in the number of
    eliminated variables; blowing through the bound raises
    :class:`~repro.errors.SolverError`, which moves the chain along).
    ``use_naive`` gates the final fall-back to the naive Theorem-3.4
    engine, which is only attempted when the system has at most
    ``naive_limit`` class unknowns (checked by the caller).

    ``chain`` overrides the derived chain with explicit registry
    backend names, in retry order (``"fourier-motzkin"`` entries honour
    ``fm_max_constraints``).  When ``None``, the chain is the active
    primary backend followed — if ``use_fourier_motzkin`` — by
    Fourier–Motzkin.
    """

    use_fourier_motzkin: bool = True
    use_naive: bool = True
    fm_max_constraints: int = 50_000
    chain: tuple[str, ...] | None = None

    def backends(self) -> tuple[SolverBackend, ...]:
        """The LP retry chain this policy denotes, in order."""
        if self.chain is not None:
            return tuple(self._resolve(name) for name in self.chain)
        primary = active_backend()
        if primary.capabilities.exponential:
            # The naive engine is a decision procedure, not an LP
            # backend; individual LPs run on the default engine.
            primary = get_backend(DEFAULT_BACKEND)
        links: list[SolverBackend] = [primary]
        if self.use_fourier_motzkin and primary.name != "fourier-motzkin":
            links.append(FourierMotzkinBackend(self.fm_max_constraints))
        return tuple(links)

    def _resolve(self, name: str) -> SolverBackend:
        if name == "fourier-motzkin":
            return FourierMotzkinBackend(self.fm_max_constraints)
        return get_backend(name)


DEFAULT_FALLBACK = FallbackPolicy()


def chain_for(policy: FallbackPolicy | None) -> tuple[SolverBackend, ...]:
    """The LP backend chain a policy denotes (``None`` disables retries:
    the active primary backend runs alone)."""
    if policy is None:
        primary = active_backend()
        if primary.capabilities.exponential:
            primary = get_backend(DEFAULT_BACKEND)
        return (primary,)
    return policy.backends()


def resilient_maximal_support(
    system: LinearSystem | InternedSystem,
    candidates: Iterable[str],
    policy: FallbackPolicy | None = DEFAULT_FALLBACK,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal support with down-chain retry.

    On a primary-backend fault the same support is recomputed by the
    next backend of the chain (per-unknown Fourier–Motzkin probes by
    default); budget exhaustion always propagates.  Accepts either the
    interned sparse form (the hot path) or a string-keyed system, which
    is interned at the boundary.
    """
    if isinstance(system, LinearSystem):
        system = InternedSystem.from_linear(system)
    return chain_maximal_support(system, list(candidates), chain_for(policy))


def fm_maximal_support(
    system: LinearSystem | InternedSystem,
    candidates: Iterable[str],
    max_constraints: int = 50_000,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal support by one Fourier–Motzkin probe per candidate.

    Kept as a named entry point for tests and callers that want the FM
    backend specifically; equivalent to
    ``FourierMotzkinBackend(max_constraints).maximal_support``.
    """
    if isinstance(system, LinearSystem):
        system = InternedSystem.from_linear(system)
    backend = FourierMotzkinBackend(max_constraints)
    return backend.maximal_support(system, list(candidates))


def resilient_positive_solution(
    system: LinearSystem | InternedSystem,
    policy: FallbackPolicy | None = DEFAULT_FALLBACK,
) -> HomogeneousWitness:
    """Positive-solution decision with down-chain retry.

    Used by the naive engine's per-zero-set feasibility tests.  The
    Fourier–Motzkin backend decides strict systems directly; the
    simplex backends sharpen them first (cone scaling).
    """
    if isinstance(system, LinearSystem):
        system = InternedSystem.from_linear(system)
    return chain_positive_solution(system, chain_for(policy))


__all__ = [
    "DEFAULT_FALLBACK",
    "FallbackPolicy",
    "chain_for",
    "fm_maximal_support",
    "resilient_maximal_support",
    "resilient_positive_solution",
]
