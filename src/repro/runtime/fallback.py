"""Fault-tolerant solver fallback chain.

The satisfiability fixpoint normally runs every LP on the exact
simplex.  If a solve *faults* (a :class:`~repro.errors.SolverError`,
whether a genuine defect or one injected by
:mod:`repro.runtime.faults`), the affected LP is retried on the
completely independent Fourier–Motzkin backend before the failure is
allowed to surface; if the whole fixpoint run still faults, the caller
(:func:`repro.cr.satisfiability.acceptable_with_positive`) falls back
to the naive Theorem-3.4 engine when the system is small enough.  The
chain is

    fixpoint/simplex  →  per-LP Fourier–Motzkin retry  →  naive engine

and every link degrades, never silently changes the answer: each
backend is sound and complete on the systems it accepts, so a verdict
produced down-chain equals the verdict the unfaulted run would have
produced.

Budget exhaustion (:class:`~repro.errors.BudgetExceededError`) is
deliberately *not* retried — running out of resources on one backend
is not evidence the next, slower backend would do better.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import BudgetExceededError, SolverError
from repro.solver.fourier_motzkin import fm_solve
from repro.solver.homogeneous import (
    HomogeneousWitness,
    integerize,
    find_positive_solution,
    maximal_support,
)
from repro.solver.linear import Constraint, LinearSystem, Relation, term

_ZERO = Fraction(0)


@dataclass(frozen=True)
class FallbackPolicy:
    """What the degradation chain is allowed to try.

    ``fm_max_constraints`` bounds the intermediate systems of the
    Fourier–Motzkin retries (FM is doubly exponential in the number of
    eliminated variables; blowing through the bound raises
    :class:`~repro.errors.SolverError`, which moves the chain along).
    ``use_naive`` gates the final fall-back to the naive Theorem-3.4
    engine, which is only attempted when the system has at most
    ``naive_limit`` class unknowns (checked by the caller).
    """

    use_fourier_motzkin: bool = True
    use_naive: bool = True
    fm_max_constraints: int = 50_000


DEFAULT_FALLBACK = FallbackPolicy()


def resilient_maximal_support(
    system: LinearSystem,
    candidates: Iterable[str],
    policy: FallbackPolicy | None = DEFAULT_FALLBACK,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """:func:`~repro.solver.homogeneous.maximal_support`, with FM retry.

    On a simplex fault the same support is recomputed by per-unknown
    Fourier–Motzkin probes (see :func:`fm_maximal_support`); budget
    exhaustion always propagates.
    """
    candidate_list = list(candidates)
    try:
        return maximal_support(system, candidates=candidate_list)
    except BudgetExceededError:
        raise
    except SolverError:
        if policy is None or not policy.use_fourier_motzkin:
            raise
        return fm_maximal_support(
            system, candidate_list, max_constraints=policy.fm_max_constraints
        )


def fm_maximal_support(
    system: LinearSystem,
    candidates: Iterable[str],
    max_constraints: int = 50_000,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal support by one Fourier–Motzkin probe per candidate.

    For each candidate unknown ``x`` the homogeneous system plus the
    strict row ``x > 0`` (FM handles strictness natively) is decided;
    an infeasible probe proves ``x`` is zero in every solution, and the
    witnesses of the feasible probes are summed.  By the cone argument
    of :mod:`repro.solver.homogeneous` the sum is itself a solution and
    its support is the union of the probe supports — exactly the
    contract of :func:`~repro.solver.homogeneous.maximal_support`,
    definitive on the candidates.
    """
    totals: dict[str, Fraction] = {name: _ZERO for name in system.variables}
    for name in candidates:
        if totals.get(name, _ZERO) > 0:
            continue  # already known positive via an earlier witness
        probe = system.with_constraints(
            [Constraint(term(name), Relation.GT, label=f"fm-probe:{name}")]
        )
        result = fm_solve(probe, max_constraints=max_constraints)
        if result.feasible:
            assert result.assignment is not None
            for var, value in result.assignment.items():
                totals[var] = totals.get(var, _ZERO) + value
    solution = {name: totals[name] for name in system.variables}
    support = frozenset(name for name, value in solution.items() if value > 0)
    return support, solution


def resilient_positive_solution(
    system: LinearSystem,
    policy: FallbackPolicy | None = DEFAULT_FALLBACK,
) -> HomogeneousWitness:
    """:func:`~repro.solver.homogeneous.find_positive_solution`, with FM retry.

    Used by the naive engine's per-zero-set feasibility tests.  The
    Fourier–Motzkin backend decides the strict system directly, so the
    retry needs no cone sharpening.
    """
    try:
        return find_positive_solution(system)
    except BudgetExceededError:
        raise
    except SolverError:
        if policy is None or not policy.use_fourier_motzkin:
            raise
        result = fm_solve(system, max_constraints=policy.fm_max_constraints)
        if not result.feasible:
            return HomogeneousWitness(False, None, None)
        assert result.assignment is not None
        rational = dict(result.assignment)
        return HomogeneousWitness(True, rational, integerize(rational))


__all__ = [
    "DEFAULT_FALLBACK",
    "FallbackPolicy",
    "fm_maximal_support",
    "resilient_maximal_support",
    "resilient_positive_solution",
]
