"""Resource governance for the decision pipeline.

The reasoning problem is provably exponential, so a production service
needs the discipline this package provides on top of the raw decision
procedures:

* **budgets** (:mod:`repro.runtime.budget`) — wall-clock deadlines,
  work caps, and cooperative cancellation, charged at every hot loop of
  the pipeline and raising a typed, snapshot-carrying
  :class:`~repro.errors.BudgetExceededError` on exhaustion;
* **three-valued verdicts** (:mod:`repro.runtime.outcome`) — SAT /
  UNSAT / UNKNOWN-with-reason, so governed entry points degrade instead
  of hanging or dying;
* **engine fallback** (:mod:`repro.runtime.fallback`) — per-LP retry on
  the Fourier–Motzkin backend and last-resort fall-back to the naive
  Theorem-3.4 engine when a solver faults mid-run;
* **fault injection** (:mod:`repro.runtime.faults`) — one deterministic
  registry that fails the N-th solver call or the N-th firing of a disk
  fault point in the persistent artifact store's write protocol, so the
  degradation paths are themselves under test.

Only the dependency-free modules are imported eagerly; ``fallback`` and
``faults`` (which import the solver layer) load lazily on first
attribute access, letting the solver modules import
:func:`current_budget` without a cycle.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.budget import (
    Budget,
    ProgressSnapshot,
    activate,
    current_budget,
    run_governed,
    scoped_phase,
)
from repro.runtime.outcome import ImplicationVerdict, Verdict

_LAZY = {
    "FallbackPolicy": "repro.runtime.fallback",
    "DEFAULT_FALLBACK": "repro.runtime.fallback",
    "fm_maximal_support": "repro.runtime.fallback",
    "resilient_maximal_support": "repro.runtime.fallback",
    "resilient_positive_solution": "repro.runtime.fallback",
    "FaultPlan": "repro.runtime.faults",
    "InjectedSolverFault": "repro.runtime.faults",
    "SimulatedCrash": "repro.runtime.faults",
    "inject_faults": "repro.runtime.faults",
    "inject_solver_faults": "repro.runtime.faults",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Budget",
    "ProgressSnapshot",
    "Verdict",
    "ImplicationVerdict",
    "activate",
    "current_budget",
    "run_governed",
    "scoped_phase",
    "FallbackPolicy",
    "DEFAULT_FALLBACK",
    "fm_maximal_support",
    "resilient_maximal_support",
    "resilient_positive_solution",
    "FaultPlan",
    "InjectedSolverFault",
    "SimulatedCrash",
    "inject_faults",
    "inject_solver_faults",
]
