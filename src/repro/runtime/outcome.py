"""Three-valued verdicts for governed decision procedures.

Under a resource budget the reasoner's answers are no longer binary:
besides SAT and UNSAT (resp. implied and not implied) a computation
may legitimately end in **UNKNOWN** — the budget ran out, or every
engine in the fallback chain faulted.  These enums make the third value
explicit instead of overloading ``bool`` or exceptions.

Both enums are falsy except for their positive member, so existing
truthiness-based call sites (``all(verdicts.values())``) remain
conservative: an UNKNOWN class is *not* reported as satisfiable.
"""

from __future__ import annotations

import enum


class Verdict(enum.Enum):
    """Outcome of a satisfiability question."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is Verdict.SAT

    @classmethod
    def from_bool(cls, satisfiable: bool) -> Verdict:
        return cls.SAT if satisfiable else cls.UNSAT

    @property
    def decided(self) -> bool:
        return self is not Verdict.UNKNOWN


class ImplicationVerdict(enum.Enum):
    """Outcome of an implication question ``S ⊨ K``."""

    IMPLIED = "implied"
    NOT_IMPLIED = "not-implied"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is ImplicationVerdict.IMPLIED

    @classmethod
    def from_bool(cls, implied: bool) -> ImplicationVerdict:
        return cls.IMPLIED if implied else cls.NOT_IMPLIED

    @property
    def decided(self) -> bool:
        return self is not ImplicationVerdict.UNKNOWN


__all__ = ["ImplicationVerdict", "Verdict"]
