"""Deterministic fault injection for the solver layer.

Degradation paths that are written but never executed are not robust —
they are untested code on the most stressful path.  This harness makes
the fallback chain of :mod:`repro.runtime.fallback` *testable*: it
wraps the two LP backends so that the N-th call to a backend raises a
chosen exception, deterministically::

    with inject_solver_faults(simplex_failures={1}) as plan:
        result = is_class_satisfiable(schema, "Speaker")
    assert plan.injected == [("simplex", 1)]

Backends expose a module-level ``_FAULT_HOOK`` seam
(:mod:`repro.solver.simplex`, :mod:`repro.solver.core` — the interned
sparse simplex, counted under the same ``"simplex"`` name since the two
are drop-in replacements — and :mod:`repro.solver.fourier_motzkin`)
called at the top of every solve; the harness installs a counting hook
for the duration of the ``with`` block and restores the previous hook
on exit, so injections nest and never leak.

``error_factory`` lets a test inject *any* failure mode at the chosen
call — e.g. a :class:`~repro.errors.BudgetExceededError` to simulate a
backend timing out mid-run — while the default
:class:`InjectedSolverFault` is a :class:`~repro.errors.SolverError`
subclass, i.e. exactly what the fallback chain catches.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import SolverError
from repro.solver import core, fourier_motzkin, simplex


class InjectedSolverFault(SolverError):
    """The deliberate failure raised by the default fault plan."""


def _default_error(backend: str, call_index: int) -> Exception:
    return InjectedSolverFault(
        f"injected fault: {backend} call #{call_index}"
    )


@dataclass
class FaultPlan:
    """Which calls fail, and a record of what actually happened.

    ``calls`` counts every solve per backend (1-based indices);
    ``injected`` lists the ``(backend, call_index)`` pairs at which a
    fault was raised, in order — assertions on it prove a degradation
    path genuinely ran.
    """

    simplex_failures: frozenset[int] = frozenset()
    fm_failures: frozenset[int] = frozenset()
    error_factory: Callable[[str, int], Exception] = _default_error
    calls: dict[str, int] = field(
        default_factory=lambda: {"simplex": 0, "fourier-motzkin": 0}
    )
    injected: list[tuple[str, int]] = field(default_factory=list)

    def _failures_for(self, backend: str) -> frozenset[int]:
        return (
            self.simplex_failures
            if backend == "simplex"
            else self.fm_failures
        )

    def on_call(self, backend: str) -> None:
        """The hook body: count the call, raise if it is scripted to fail."""
        self.calls[backend] += 1
        index = self.calls[backend]
        if index in self._failures_for(backend):
            self.injected.append((backend, index))
            raise self.error_factory(backend, index)


@contextmanager
def inject_solver_faults(
    simplex_failures: Iterable[int] = (),
    fm_failures: Iterable[int] = (),
    error_factory: Callable[[str, int], Exception] | None = None,
) -> Iterator[FaultPlan]:
    """Fail the given (1-based) solver calls for the enclosed block.

    Counters are per backend: ``simplex_failures={2, 3}`` fails the
    second and third simplex runs while Fourier–Motzkin runs normally.
    Yields the :class:`FaultPlan` so the caller can assert on
    ``plan.calls`` and ``plan.injected`` afterwards.
    """
    plan = FaultPlan(
        simplex_failures=frozenset(simplex_failures),
        fm_failures=frozenset(fm_failures),
        error_factory=error_factory or _default_error,
    )
    previous_simplex = simplex._FAULT_HOOK
    previous_core = core._FAULT_HOOK
    previous_fm = fourier_motzkin._FAULT_HOOK
    simplex._FAULT_HOOK = lambda: plan.on_call("simplex")
    core._FAULT_HOOK = lambda: plan.on_call("simplex")
    fourier_motzkin._FAULT_HOOK = lambda: plan.on_call("fourier-motzkin")
    try:
        yield plan
    finally:
        simplex._FAULT_HOOK = previous_simplex
        core._FAULT_HOOK = previous_core
        fourier_motzkin._FAULT_HOOK = previous_fm


__all__ = ["FaultPlan", "InjectedSolverFault", "inject_solver_faults"]
