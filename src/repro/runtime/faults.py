"""Deterministic fault injection: one registry for solver and disk faults.

Degradation paths that are written but never executed are not robust —
they are untested code on the most stressful path.  This harness makes
every degradation path in the repository *testable* through a single
deterministic injection registry:

* the **solver fallback chain** of :mod:`repro.runtime.fallback` — the
  N-th call to a backend raises a chosen exception::

      with inject_faults(simplex_failures={1}) as plan:
          result = is_class_satisfiable(schema, "Speaker")
      assert plan.injected == [("simplex", 1)]

* the **persistent artifact store** of :mod:`repro.store` — the N-th
  firing of a named disk fault point simulates a crash, an I/O error,
  or silent corruption at exactly that moment of the write protocol::

      with inject_faults(disk_failures={"store:write:pre-rename": {1}}):
          store.put(fingerprint, artifacts)   # dies after fsync,
                                              # before the rename

Both kinds of fault are scripted on the same :class:`FaultPlan` and
counted in the same ``calls`` table, so a test can stage a disk crash
*and* a solver fault in one plan and assert the combined history via
``plan.injected`` — there is exactly one injection mechanism.

Fault *points* are string names.  The two solver backends keep their
historical names (``"simplex"`` — shared by the dense and the interned
sparse implementation, which are drop-in replacements — and
``"fourier-motzkin"``); disk fault points are dotted paths like
``store:write:torn`` fired by :mod:`repro.store.atomic` between the
syscalls of the atomic-write protocol (see :data:`DISK_WRITE_POINTS`).

Backends expose a module-level ``_FAULT_HOOK`` seam called at the top
of every solve; the disk layer exposes the module-level :func:`fire`
seam.  :func:`inject_faults` installs counting hooks for the duration
of the ``with`` block and restores the previous hooks on exit, so
injections nest and never leak.

``error_factory`` lets a test inject *any* failure mode at the chosen
call — e.g. a :class:`~repro.errors.BudgetExceededError` to simulate a
backend timing out mid-run, or an ``OSError(ENOSPC)`` to simulate a
full disk.  The defaults are :class:`InjectedSolverFault` (a
:class:`~repro.errors.SolverError` — exactly what the fallback chain
catches) for solver points and :class:`SimulatedCrash` for disk points
(deliberately *not* an ``OSError``: the store degrades real I/O errors
gracefully, but a simulated kill must propagate like a dying process,
leaving the on-disk state exactly as the crash point left it).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SolverError
from repro.solver import core, fourier_motzkin, simplex


class InjectedSolverFault(SolverError):
    """The deliberate failure raised at a scripted solver fault point."""


class SimulatedCrash(Exception):
    """A scripted process death at a disk fault point.

    Deliberately a bare ``Exception`` subclass rather than an
    ``OSError`` or :class:`~repro.errors.ReproError`: the store's
    degradation paths swallow real I/O errors, and a simulated kill
    must not be swallowed — it has to unwind the stack the way a dying
    process abandons it, leaving files, temp files, and lock files in
    whatever state the crash point defines.
    """


SOLVER_POINTS = ("simplex", "fourier-motzkin")
"""The two solver fault points (per-backend call counters)."""

DISK_WRITE_POINTS = (
    "store:write:start",
    "store:write:torn",
    "store:write:pre-fsync",
    "store:write:pre-rename",
    "store:write:pre-dirsync",
)
"""The crash points of the atomic-write protocol, in protocol order.

``start`` fires before the temp file exists, ``torn`` after only half
the bytes are written (the temp file is left torn, like a real partial
write), ``pre-fsync`` after the data is written but not durable,
``pre-rename`` after fsync but before the entry becomes visible, and
``pre-dirsync`` after the rename but before the directory entry is
durable.  :mod:`repro.store.atomic` fires them in exactly this order on
every write.
"""

DISK_ENCODE_POINT = "store:put:encoded"
"""Fired by :meth:`repro.store.ArtifactStore.put` with the encoded
entry bytes as a mutable ``{"buffer": bytearray}`` context — the seam
``disk_corruptions`` uses to flip bits (simulated bit-rot that the
checksum must catch on read)."""


def _default_error(point: str, call_index: int) -> Exception:
    if point in SOLVER_POINTS:
        return InjectedSolverFault(
            f"injected fault: {point} call #{call_index}"
        )
    return SimulatedCrash(
        f"simulated crash: {point} call #{call_index}"
    )


_DISK_HOOK: Callable[[str, dict[str, Any] | None], None] | None = None
"""The disk-layer seam; ``None`` outside an :func:`inject_faults` block."""


def fire(point: str, context: dict[str, Any] | None = None) -> None:
    """Fire a disk fault point (no-op unless a plan is installed).

    Called by :mod:`repro.store` at each step of its write protocol.
    ``context`` optionally carries mutable state the plan may corrupt
    in place (see :data:`DISK_ENCODE_POINT`).
    """
    hook = _DISK_HOOK
    if hook is not None:
        hook(point, context)


@dataclass
class FaultPlan:
    """Which calls fail, and a record of what actually happened.

    ``calls`` counts every firing per fault point (1-based indices);
    ``injected`` lists the ``(point, call_index)`` pairs at which a
    fault was raised, in order, and ``corrupted`` the pairs at which a
    buffer was silently flipped — assertions on them prove a
    degradation path genuinely ran.
    """

    simplex_failures: frozenset[int] = frozenset()
    fm_failures: frozenset[int] = frozenset()
    disk_failures: Mapping[str, frozenset[int]] = field(default_factory=dict)
    disk_corruptions: Mapping[str, frozenset[int]] = field(
        default_factory=dict
    )
    error_factory: Callable[[str, int], Exception] = _default_error
    calls: dict[str, int] = field(
        default_factory=lambda: {"simplex": 0, "fourier-motzkin": 0}
    )
    injected: list[tuple[str, int]] = field(default_factory=list)
    corrupted: list[tuple[str, int]] = field(default_factory=list)

    def _failures_for(self, point: str) -> frozenset[int]:
        if point == "simplex":
            return self.simplex_failures
        if point == "fourier-motzkin":
            return self.fm_failures
        return self.disk_failures.get(point, frozenset())

    def on_call(
        self, point: str, context: dict[str, Any] | None = None
    ) -> None:
        """The hook body: count the call, corrupt or raise if scripted."""
        self.calls[point] = self.calls.get(point, 0) + 1
        index = self.calls[point]
        if index in self.disk_corruptions.get(point, frozenset()):
            buffer = (context or {}).get("buffer")
            if isinstance(buffer, bytearray) and buffer:
                # Flip every bit of the middle byte: a deterministic
                # single-byte corruption the checksum must catch.
                buffer[len(buffer) // 2] ^= 0xFF
                self.corrupted.append((point, index))
        if index in self._failures_for(point):
            self.injected.append((point, index))
            raise self.error_factory(point, index)


def _normalize_points(
    mapping: Mapping[str, Iterable[int]] | None,
) -> dict[str, frozenset[int]]:
    if not mapping:
        return {}
    return {point: frozenset(indices) for point, indices in mapping.items()}


@contextmanager
def inject_faults(
    simplex_failures: Iterable[int] = (),
    fm_failures: Iterable[int] = (),
    disk_failures: Mapping[str, Iterable[int]] | None = None,
    disk_corruptions: Mapping[str, Iterable[int]] | None = None,
    error_factory: Callable[[str, int], Exception] | None = None,
) -> Iterator[FaultPlan]:
    """Fail the given (1-based) fault-point firings for the block.

    Counters are per point: ``simplex_failures={2, 3}`` fails the
    second and third simplex runs while Fourier–Motzkin runs normally;
    ``disk_failures={"store:write:pre-rename": {1}}`` crashes the first
    write after its fsync but before its rename.  Yields the
    :class:`FaultPlan` so the caller can assert on ``plan.calls``,
    ``plan.injected``, and ``plan.corrupted`` afterwards.
    """
    global _DISK_HOOK
    plan = FaultPlan(
        simplex_failures=frozenset(simplex_failures),
        fm_failures=frozenset(fm_failures),
        disk_failures=_normalize_points(disk_failures),
        disk_corruptions=_normalize_points(disk_corruptions),
        error_factory=error_factory or _default_error,
    )
    previous_simplex = simplex._FAULT_HOOK
    previous_core = core._FAULT_HOOK
    previous_fm = fourier_motzkin._FAULT_HOOK
    previous_disk = _DISK_HOOK
    simplex._FAULT_HOOK = lambda: plan.on_call("simplex")
    core._FAULT_HOOK = lambda: plan.on_call("simplex")
    fourier_motzkin._FAULT_HOOK = lambda: plan.on_call("fourier-motzkin")
    _DISK_HOOK = plan.on_call
    try:
        yield plan
    finally:
        simplex._FAULT_HOOK = previous_simplex
        core._FAULT_HOOK = previous_core
        fourier_motzkin._FAULT_HOOK = previous_fm
        _DISK_HOOK = previous_disk


@contextmanager
def inject_solver_faults(
    simplex_failures: Iterable[int] = (),
    fm_failures: Iterable[int] = (),
    error_factory: Callable[[str, int], Exception] | None = None,
) -> Iterator[FaultPlan]:
    """Solver-only spelling of :func:`inject_faults` (kept because the
    solver suites predate the unified registry; same plan, same hooks)."""
    with inject_faults(
        simplex_failures=simplex_failures,
        fm_failures=fm_failures,
        error_factory=error_factory,
    ) as plan:
        yield plan


__all__ = [
    "DISK_ENCODE_POINT",
    "DISK_WRITE_POINTS",
    "FaultPlan",
    "InjectedSolverFault",
    "SOLVER_POINTS",
    "SimulatedCrash",
    "fire",
    "inject_faults",
    "inject_solver_faults",
]
