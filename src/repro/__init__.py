"""repro — ISA + cardinality reasoning for database schemas.

A complete reproduction of

    D. Calvanese, M. Lenzerini,
    "On the Interaction Between ISA and Cardinality Constraints",
    Proc. of the 10th IEEE Int. Conf. on Data Engineering (ICDE'94).

The library decides, for schemas in the paper's CR data model (classes,
n-ary relationships with roles, ISA statements, refinable cardinality
constraints), whether a class can be populated in a **finite** database
state, and whether the schema **implies** further ISA or cardinality
constraints — soundly and completely, by reduction to homogeneous
systems of linear disequations solved with an exact rational simplex.

Quickstart::

    from repro import SchemaBuilder, is_class_satisfiable, implies_isa

    schema = (
        SchemaBuilder("Meeting")
        .classes("Speaker", "Discussant", "Talk")
        .isa("Discussant", "Speaker")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .build()
    )
    assert is_class_satisfiable(schema, "Speaker").satisfiable
    assert not implies_isa(schema, "Speaker", "Talk").implied

Package map (see DESIGN.md for the full inventory):

=====================  ====================================================
``repro.cr``           the paper: schema model, expansion, disequation
                       system, satisfiability, model construction,
                       implication
``repro.solver``       exact rational LP substrate (simplex,
                       Fourier–Motzkin, homogeneous-cone routines)
``repro.er``           Entity-Relationship front-end (Figures 1–2)
``repro.oo``           object-oriented adapter (attributes as
                       relationships)
``repro.kr``           frame/KR adapter (slots with number restrictions)
``repro.ext``          Section-5 extensions: disjointness, covering,
                       schema debugging (MUS extraction)
``repro.session``      cached reasoning sessions: fingerprinted
                       schemas, amortised expansions, batch queries
``repro.dsl``          textual schema language (parse / serialize)
``repro.render``       regenerate the paper's figures as text
``repro.paper``        the paper's running examples, ready-made
=====================  ====================================================
"""

from repro.cr.builder import SchemaBuilder
from repro.cr.checker import check_model, is_model
from repro.cr.constraints import (
    CardinalityDeclaration,
    CoveringStatement,
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.construction import construct_model, construct_model_for_result
from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.explain import UnsatisfiabilityExplanation, explain_unsatisfiability
from repro.cr.implication import (
    ImplicationResult,
    implies,
    implies_disjointness,
    implies_isa,
    implies_max_cardinality,
    implies_min_cardinality,
)
from repro.cr.interpretation import Interpretation, LabeledTuple
from repro.cr.satisfiability import (
    SatisfiabilityResult,
    is_class_satisfiable,
    is_schema_fully_satisfiable,
    satisfiable_classes,
)
from repro.cr.schema import Card, CRSchema, Relationship, UNBOUNDED
from repro.cr.system import build_system
from repro.cr.unrestricted import (
    is_class_unrestricted_satisfiable,
    unrestricted_satisfiable_classes,
)
from repro.db import Database, IntegrityError
from repro.dsl import parse_schema, serialize_schema
from repro.er import ERSchema, er_to_cr
from repro.errors import (
    BudgetExceededError,
    CancelledError,
    LimitExceededError,
    ReproError,
    SchemaError,
)
from repro.ext import (
    minimal_unsatisfiable_constraints,
    pruning_report,
    quickxplain_unsatisfiable_constraints,
    with_covering,
    with_disjointness,
)
from repro.kr import KnowledgeBase, kr_to_cr
from repro.oo import OOModel, oo_to_cr
from repro.session import (
    ReasoningSession,
    SessionCache,
    SessionStats,
    schema_fingerprint,
)
from repro.runtime import (
    Budget,
    FallbackPolicy,
    ImplicationVerdict,
    ProgressSnapshot,
    Verdict,
    activate,
    current_budget,
    inject_solver_faults,
    run_governed,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # schema model
    "SchemaBuilder",
    "CRSchema",
    "Relationship",
    "Card",
    "UNBOUNDED",
    "Expansion",
    "ExpansionLimits",
    # statements
    "IsaStatement",
    "CardinalityDeclaration",
    "MinCardinalityStatement",
    "MaxCardinalityStatement",
    "DisjointnessStatement",
    "CoveringStatement",
    # interpretations / checking
    "Interpretation",
    "LabeledTuple",
    "check_model",
    "is_model",
    # reasoning
    "build_system",
    "SatisfiabilityResult",
    "is_class_satisfiable",
    "satisfiable_classes",
    "is_schema_fully_satisfiable",
    "unrestricted_satisfiable_classes",
    "is_class_unrestricted_satisfiable",
    "Database",
    "IntegrityError",
    "construct_model",
    "construct_model_for_result",
    "ImplicationResult",
    "implies",
    "implies_isa",
    "implies_min_cardinality",
    "implies_max_cardinality",
    "implies_disjointness",
    # front-ends
    "ERSchema",
    "er_to_cr",
    "OOModel",
    "oo_to_cr",
    "KnowledgeBase",
    "kr_to_cr",
    # extensions
    "with_disjointness",
    "with_covering",
    "pruning_report",
    "minimal_unsatisfiable_constraints",
    "quickxplain_unsatisfiable_constraints",
    "UnsatisfiabilityExplanation",
    "explain_unsatisfiability",
    # DSL
    "parse_schema",
    "serialize_schema",
    # sessions and caching
    "ReasoningSession",
    "SessionCache",
    "SessionStats",
    "schema_fingerprint",
    # resource governance
    "Budget",
    "ProgressSnapshot",
    "Verdict",
    "ImplicationVerdict",
    "FallbackPolicy",
    "activate",
    "current_budget",
    "run_governed",
    "inject_solver_faults",
    # errors
    "ReproError",
    "SchemaError",
    "LimitExceededError",
    "BudgetExceededError",
    "CancelledError",
]
