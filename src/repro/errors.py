"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while programming mistakes (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A CR-schema (or a front-end schema) is structurally ill-formed.

    Examples: a relationship with fewer than two roles, a role shared by
    two relationships, a cardinality declared for a class that is not a
    subclass of the role's primary class, ``minc`` exceeding ``maxc`` on
    the same declaration.
    """


class UnknownSymbolError(SchemaError):
    """A class, relationship, or role name is not declared in the schema."""


class DuplicateSymbolError(SchemaError):
    """A class, relationship, or role name is declared more than once."""


class InterpretationError(ReproError):
    """An interpretation is not well-formed with respect to its schema.

    This is distinct from the interpretation merely *violating* the
    schema's constraints: constraint violations are reported by the model
    checker as :class:`repro.cr.checker.Violation` values, whereas this
    exception signals data that cannot even be evaluated (for instance, a
    relationship tuple whose roles do not match the relationship's
    signature).
    """


class SolverError(ReproError):
    """The linear-arithmetic substrate was used incorrectly.

    Examples: mixing unknowns from different systems, asking the simplex
    for a certificate before solving, non-homogeneous input to a routine
    that requires a homogeneous system.
    """


class UnboundedProblemError(SolverError):
    """A linear program asked for optimisation has unbounded objective."""


class InfeasibleProblemError(SolverError):
    """A linear program required to be feasible is infeasible."""


class LimitExceededError(ReproError):
    """A configured resource limit was exceeded.

    This is *not* a bug or a usage error: the input is simply larger
    than the caller allowed for.  Distinguishing it from the other
    :class:`ReproError` subclasses lets callers degrade gracefully
    (report an UNKNOWN verdict, retry with larger limits) instead of
    treating the failure as fatal.
    """


class BudgetExceededError(LimitExceededError):
    """A :class:`repro.runtime.Budget` ran out mid-computation.

    ``snapshot`` (a :class:`repro.runtime.ProgressSnapshot` when raised
    by the runtime layer) records how far the computation got: the
    phase, the number of expansion nodes visited, the LPs solved, the
    simplex pivots performed, and the elapsed wall-clock time.
    """

    def __init__(self, message: str, snapshot: object | None = None) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class CancelledError(BudgetExceededError):
    """The computation was cooperatively cancelled via ``Budget.cancel()``."""


class StoreError(ReproError):
    """The persistent artifact store was used incorrectly.

    Examples: a fingerprint or kind containing path separators, a store
    root that is a regular file.  *Damaged data* is never reported this
    way to callers — corrupt entries are quarantined and read as misses
    (see :class:`StoreIntegrityError`, which the store raises and
    catches internally).
    """


class StoreIntegrityError(StoreError):
    """A stored entry failed validation on read.

    ``reason`` is a stable machine-readable tag (``"truncated-header"``,
    ``"magic"``, ``"format-version"``, ``"artifact-version"``,
    ``"truncated-payload"``, ``"trailing-garbage"``, ``"checksum"``,
    ``"unpickleable"``, ``"key-mismatch"``) — it becomes part of the
    quarantined file's name so ``repro cache quarantine list`` can
    report why each entry was pulled.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class StoreLockTimeout(StoreError):
    """An advisory store lock stayed contended past the bounded retry.

    Writers treat this as a degraded no-op (the cache write is skipped
    and counted, never fatal); it is a distinct type so tests can
    assert the contention path specifically.
    """


class ParseError(ReproError):
    """The schema DSL text could not be parsed.

    Carries the 1-based line and column of the offending token.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column
