"""Crash-safe persistent artifact store, content-addressed by schema
fingerprint.

=====================================  ==================================
:mod:`repro.store.atomic`              the one write path: temp file +
                                       fsync + rename, fault-point
                                       instrumented (invariant R6)
:mod:`repro.store.format`              versioned, checksummed entry
                                       envelope; typed integrity errors
:mod:`repro.store.locks`               advisory writer locks with stale
                                       reclaim and deterministic
                                       jittered backoff
:mod:`repro.store.store`               :class:`ArtifactStore` — the
                                       absent-or-valid contract,
                                       quarantine, verify/clear/summary
=====================================  ==================================

Quickstart::

    from repro.store import ArtifactStore

    store = ArtifactStore("/var/cache/repro")
    store.put(fingerprint, bundle)      # atomic, durable, locked
    store.get(fingerprint)              # valid bundle or None — never
                                        # an exception, never bad data

:class:`~repro.session.SessionCache` accepts a store as its persistent
second tier (``SessionCache(store=...)``), which is how ``repro batch
--cache-dir`` and the ``--jobs`` pool workers share warm artifacts
across processes; the ``repro cache`` CLI fronts the maintenance
surface (``stats`` / ``verify`` / ``clear`` / ``quarantine list``).
"""

from repro.store.atomic import atomic_write_bytes, sweep_temp_files
from repro.store.format import FORMAT_VERSION, decode_entry, encode_entry
from repro.store.locks import AdvisoryLock, LockOwner, backoff_delay
from repro.store.store import (
    ARTIFACT_VERSION,
    DEFAULT_KIND,
    ENV_CACHE_DIR,
    ArtifactStore,
    EntryInfo,
    QuarantineInfo,
    StoreStats,
    VerifyOutcome,
    resolve_cache_dir,
)

__all__ = [
    "ARTIFACT_VERSION",
    "AdvisoryLock",
    "ArtifactStore",
    "DEFAULT_KIND",
    "ENV_CACHE_DIR",
    "EntryInfo",
    "FORMAT_VERSION",
    "LockOwner",
    "QuarantineInfo",
    "StoreStats",
    "VerifyOutcome",
    "atomic_write_bytes",
    "backoff_delay",
    "decode_entry",
    "encode_entry",
    "resolve_cache_dir",
    "sweep_temp_files",
]
