"""The self-validating binary envelope of one stored entry.

Layout (big-endian, 48-byte header)::

    offset  size  field
    0       4     magic  b"RPST"
    4       2     format version   (the envelope layout itself)
    6       2     artifact version (the pickled payload's schema)
    8       8     payload length in bytes
    16      32    SHA-256 digest of the payload
    48      —     payload

Two version numbers because they fail differently: a **format**
mismatch means this code cannot even parse the envelope (the store
keeps per-format-version subdirectories, so in practice this only
happens to hand-damaged files), while an **artifact** mismatch means
the envelope is intact but the pickled reasoning artifacts inside were
produced by an incompatible codec — bump
:data:`repro.store.store.ARTIFACT_VERSION` whenever the shape of
cached artifacts changes and every stale entry degrades to a rebuild
instead of an unpickling surprise.

:func:`decode_entry` validates *everything* before a byte of payload is
returned — magic, both versions, declared length against actual length
(catching truncation *and* trailing garbage), and the checksum — and
raises :class:`~repro.errors.StoreIntegrityError` with a stable
``reason`` tag on the first violation.  The store maps each reason to a
quarantine, never to a crash.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import StoreIntegrityError

MAGIC = b"RPST"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">4sHHQ32s")
HEADER_SIZE = _HEADER.size


def encode_entry(payload: bytes, artifact_version: int) -> bytes:
    """Wrap ``payload`` in the versioned, checksummed envelope."""
    digest = hashlib.sha256(payload).digest()
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, artifact_version, len(payload), digest
    )
    return header + payload


def decode_entry(blob: bytes, artifact_version: int) -> bytes:
    """Return the validated payload of ``blob`` or raise
    :class:`~repro.errors.StoreIntegrityError` with a ``reason`` tag."""
    if len(blob) < HEADER_SIZE:
        raise StoreIntegrityError(
            f"entry too short for a header ({len(blob)} bytes)",
            reason="truncated-header",
        )
    magic, fmt, artifact, length, digest = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise StoreIntegrityError(
            f"bad magic {magic!r}", reason="magic"
        )
    if fmt != FORMAT_VERSION:
        raise StoreIntegrityError(
            f"format version {fmt} != {FORMAT_VERSION}",
            reason="format-version",
        )
    if artifact != artifact_version:
        raise StoreIntegrityError(
            f"artifact version {artifact} != {artifact_version}",
            reason="artifact-version",
        )
    payload = blob[HEADER_SIZE:]
    if len(payload) < length:
        raise StoreIntegrityError(
            f"payload truncated ({len(payload)} of {length} bytes)",
            reason="truncated-payload",
        )
    if len(payload) > length:
        raise StoreIntegrityError(
            f"{len(payload) - length} trailing byte(s) after the payload",
            reason="trailing-garbage",
        )
    if hashlib.sha256(payload).digest() != digest:
        raise StoreIntegrityError(
            "payload checksum mismatch", reason="checksum"
        )
    return payload


__all__ = [
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "decode_entry",
    "encode_entry",
]
