"""The one write path of the persistent store: temp + fsync + rename.

Every byte the store puts on disk goes through
:func:`atomic_write_bytes` (invariant R6, enforced by
``tools/check_invariants.py``: no other module under ``repro/store/``
may open a file for writing).  The protocol is the classic
crash-safe sequence:

1. create a uniquely-named temp file *in the target directory* (same
   filesystem, so the final rename cannot degrade to a copy),
2. write the payload,
3. ``fsync`` the temp file (data durable before it becomes visible),
4. ``os.replace`` onto the final name (atomic on POSIX: readers see
   the old complete entry or the new complete entry, never a mix),
5. ``fsync`` the directory (the rename itself durable).

A crash at *any* point between these steps leaves either no entry, the
old entry, or the new entry — never a torn final file.  The
deterministic fault points of :mod:`repro.runtime.faults`
(:data:`~repro.runtime.faults.DISK_WRITE_POINTS`) are fired between
the steps in exactly that order, so the crash-recovery property is
testable point by point: a scripted
:class:`~repro.runtime.faults.SimulatedCrash` abandons the write the
way a killed process would (the torn temp file is deliberately left
behind for the recovery sweep to find), while a real ``OSError``
(``ENOSPC``, ``EACCES``) cleans the temp file up before propagating to
the store's graceful-degradation path.

Temp files are named ``.<final-name>.<pid>.<seq>.tmp``: the leading dot
keeps them out of entry listings, the pid+sequence keeps concurrent
writers (and a crashed predecessor's leftovers) from colliding, and
:func:`sweep_temp_files` reclaims strays on store startup.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from repro.runtime import faults

TEMP_SUFFIX = ".tmp"
"""Suffix of in-flight temp files (swept by :func:`sweep_temp_files`)."""

_SEQUENCE = itertools.count()
"""Per-process temp-name counter; uniqueness, not meaning."""


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table; best-effort on platforms (or
    filesystems) that refuse to open directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Path, data: bytes, fault_prefix: str = "store:write"
) -> None:
    """Publish ``data`` at ``path`` atomically and durably.

    Raises ``OSError`` on real I/O failure (temp file removed first) and
    propagates :class:`~repro.runtime.faults.SimulatedCrash` from
    scripted fault points (on-disk state left exactly as the crash
    point defines — including a torn temp file at the ``:torn`` point).
    """
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    faults.fire(f"{fault_prefix}:start")
    temp = directory / f".{path.name}.{os.getpid()}.{next(_SEQUENCE)}{TEMP_SUFFIX}"
    fd = os.open(temp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    try:
        half = len(data) // 2
        os.write(fd, data[:half])
        faults.fire(f"{fault_prefix}:torn")
        os.write(fd, data[half:])
        faults.fire(f"{fault_prefix}:pre-fsync")
        os.fsync(fd)
    except faults.SimulatedCrash:
        os.close(fd)
        raise  # a killed process leaves its torn temp file behind
    except BaseException:
        os.close(fd)
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    os.close(fd)
    try:
        faults.fire(f"{fault_prefix}:pre-rename")
        os.replace(temp, path)
    except faults.SimulatedCrash:
        raise  # ditto: the durable temp file survives the crash
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    faults.fire(f"{fault_prefix}:pre-dirsync")
    fsync_directory(directory)


def sweep_temp_files(directory: Path) -> int:
    """Remove stray temp files a crashed writer left in ``directory``.

    Safe against live writers in *other* processes only in the sense
    that matters here: the store calls this once at startup, before it
    writes, and a concurrent writer whose temp file is swept fails its
    rename with a clean ``FileNotFoundError`` → degraded write, never
    corruption.  Returns the number of files removed.
    """
    removed = 0
    try:
        strays = list(directory.glob(f".*{TEMP_SUFFIX}"))
    except OSError:
        return 0
    for stray in strays:
        try:
            stray.unlink()
            removed += 1
        except OSError:
            continue
    return removed


__all__ = [
    "TEMP_SUFFIX",
    "atomic_write_bytes",
    "fsync_directory",
    "sweep_temp_files",
]
