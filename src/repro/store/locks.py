"""Advisory lock files for cross-process write serialisation.

Readers never lock: the atomic rename protocol guarantees a reader
always sees a complete entry (old or new), so locks exist only to
serialise *writers* on the same entry (two pool workers warming the
same fingerprint, or a writer racing the quarantine of a corrupt
entry).

A lock is a file created with ``O_CREAT | O_EXCL`` — the creation
itself is the atomic test-and-set — whose content identifies the owner
(``pid:timestamp:host``).  Because advisory locks can outlive a killed
owner, acquisition detects and reclaims **stale** locks: a lock whose
owner pid is no longer alive on this host, or whose age exceeds
``stale_after`` (covering crashed owners whose pid was recycled, locks
from other hosts on shared filesystems, and the same-pid case where
this very process crashed mid-write earlier in its life and then
retried).

Contention uses **bounded retry with deterministic jittered backoff**:
exponential base delays, each perturbed by a jitter derived from a hash
of ``(pid, attempt)`` — different processes desynchronise (the point of
jitter) while any single process retries on a reproducible schedule
(the point of determinism).  When the deadline passes, acquisition
raises :class:`~repro.errors.StoreLockTimeout`, which the store treats
as a degraded no-op write, never a failure of the reasoning path.
"""

from __future__ import annotations

import hashlib
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreLockTimeout

DEFAULT_TIMEOUT = 2.0
"""Seconds a writer will retry before degrading to a skipped write."""

DEFAULT_STALE_AFTER = 30.0
"""Age beyond which a lock is presumed abandoned even if its pid is
alive (pid recycling, other hosts); store writes hold locks for
milliseconds, so thirty seconds is orders of magnitude past legitimate."""

POLL_BASE = 0.005
"""Base of the exponential backoff schedule, in seconds."""

_POLL_CAP = 0.1
"""Ceiling on a single backoff sleep."""


@dataclass(frozen=True)
class LockOwner:
    """The identity a lock file records for staleness decisions."""

    pid: int
    timestamp: float
    host: str

    def encode(self) -> bytes:
        return f"{self.pid}:{self.timestamp!r}:{self.host}".encode("utf-8")

    @classmethod
    def decode(cls, blob: bytes) -> LockOwner | None:
        try:
            pid_text, timestamp_text, host = (
                blob.decode("utf-8").split(":", 2)
            )
            return cls(int(pid_text), float(timestamp_text), host)
        except (ValueError, UnicodeDecodeError):
            return None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # assume alive when the platform cannot say
    return True


def backoff_delay(attempt: int, base: float = POLL_BASE) -> float:
    """The ``attempt``-th retry delay: capped exponential plus a
    deterministic jitter hashed from ``(pid, attempt)``."""
    exponential = min(base * (2 ** min(attempt, 6)), _POLL_CAP)
    seed = f"{os.getpid()}:{attempt}".encode("utf-8")
    raw = int.from_bytes(
        hashlib.blake2b(seed, digest_size=2).digest(), "big"
    )
    jitter = (raw / 0xFFFF) * base
    return exponential + jitter


class AdvisoryLock:
    """One entry's writer lock; usable as a context manager."""

    def __init__(
        self,
        path: Path,
        timeout: float = DEFAULT_TIMEOUT,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        self.path = path
        self.timeout = timeout
        self.stale_after = stale_after
        self._held = False

    # -- acquisition -------------------------------------------------------

    def _try_create(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        owner = LockOwner(os.getpid(), time.time(), socket.gethostname())
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, owner.encode())
        finally:
            os.close(fd)
        self._held = True
        return True

    def _reclaim_if_stale(self) -> bool:
        """Remove the current holder's file if it is stale; ``True`` when
        the caller should retry acquisition immediately."""
        try:
            blob = self.path.read_bytes()
        except OSError:
            return True  # holder vanished between our attempts
        owner = LockOwner.decode(blob)
        stale = (
            owner is None  # unreadable owner: treat as wreckage
            or not _pid_alive(owner.pid)
            or time.time() - owner.timestamp > self.stale_after
        )
        if not stale:
            return False
        try:
            self.path.unlink()
        except OSError:
            pass  # somebody else reclaimed it first; retry either way
        return True

    def acquire(self) -> AdvisoryLock:
        deadline = time.monotonic() + self.timeout
        attempt = 0
        while True:
            if self._try_create():
                return self
            if self._reclaim_if_stale():
                continue
            delay = backoff_delay(attempt)
            attempt += 1
            if time.monotonic() + delay > deadline:
                raise StoreLockTimeout(
                    f"lock {self.path.name} still contended after "
                    f"{attempt} attempt(s) over {self.timeout:.2f}s"
                )
            time.sleep(delay)

    # -- release -----------------------------------------------------------

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> AdvisoryLock:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


__all__ = [
    "AdvisoryLock",
    "DEFAULT_STALE_AFTER",
    "DEFAULT_TIMEOUT",
    "LockOwner",
    "POLL_BASE",
    "backoff_delay",
]
