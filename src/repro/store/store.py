"""The content-addressed, crash-safe artifact store.

:class:`ArtifactStore` maps ``(fingerprint, kind)`` keys — the same
SHA-256 schema fingerprints :mod:`repro.session` caches under — to
pickled artifact bundles on disk, with one governing invariant:

    **absent or valid.**  After a crash at any point of the write
    protocol, a concurrent-writer race, bit-rot, truncation, or a
    version bump, a read returns either a checksum-valid bundle or
    ``None`` — never an exception on the reasoning path and never bad
    data.

Layout (under the store root)::

    v1/                         # one tree per envelope format version
      objects/<fp[:2]>/<fingerprint>.<kind>.bin
      quarantine/<entry-name>.<reason>.quarantined
      locks/<fingerprint>.<kind>.lock

Writes go through the atomic temp+fsync+rename protocol of
:mod:`repro.store.atomic` under an advisory per-entry lock
(:mod:`repro.store.locks`); real I/O failures (``ENOSPC``,
``EACCES``, lock timeouts) degrade to a counted no-op, because a cache
that cannot persist must never take the reasoner down with it.  Reads
are lock-free; an entry that fails validation is **quarantined** —
atomically renamed into ``quarantine/`` with its failure reason in the
name — so the next read is an honest miss, the caller rebuilds from
source, and the damaged bytes remain available for forensics
(*self-healing*).  Quarantine re-validates under the entry lock first:
if a concurrent writer already replaced the damaged entry with a good
one, the good entry is left alone.

Everything is observable: per-process :class:`StoreStats` counters for
hits/misses/writes/degradations, and on-disk :meth:`ArtifactStore.summary`
/ :meth:`~ArtifactStore.verify` / :meth:`~ArtifactStore.quarantined`
for the ``repro cache`` CLI.
"""

from __future__ import annotations

import logging
import os
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import (
    StoreError,
    StoreIntegrityError,
    StoreLockTimeout,
)
from repro.runtime import faults
from repro.store.atomic import atomic_write_bytes, fsync_directory, sweep_temp_files
from repro.store.format import FORMAT_VERSION, decode_entry, encode_entry
from repro.store.locks import (
    DEFAULT_STALE_AFTER,
    DEFAULT_TIMEOUT,
    AdvisoryLock,
)

logger = logging.getLogger("repro.store")

ARTIFACT_VERSION = 1
"""Version of the pickled artifact bundle schema.  Bump whenever the
shape of cached reasoning artifacts changes; every entry written under
the old version then degrades to a quarantine + rebuild instead of an
unpickling surprise."""

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
"""Environment variable naming the store root when no flag is given."""

DEFAULT_KIND = "artifacts"
"""The bundle kind :mod:`repro.session` persists warm entries under."""

ENTRY_SUFFIX = ".bin"
QUARANTINE_SUFFIX = ".quarantined"

_KEY_PATTERN = re.compile(r"^[A-Za-z0-9_-]+$")
"""Filesystem-safe, dot-free keys so ``<fp>.<kind>.bin`` parses back."""


def resolve_cache_dir(
    cache_dir: str | None = None, no_cache: bool = False
) -> str | None:
    """The effective store root: ``--no-cache`` > flag > env > none."""
    if no_cache:
        return None
    if cache_dir:
        return cache_dir
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    return env or None


@dataclass
class StoreStats:
    """Per-process observability counters (on-disk state is separate —
    see :meth:`ArtifactStore.summary`)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    lock_timeouts: int = 0
    quarantined: int = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment one counter by name.

        All store internals funnel increments through here so a subclass
        can make the read-modify-write atomic — the serve daemon installs
        a lock-guarded subclass to keep its ``/metrics`` counters
        monotone under concurrent requests.
        """
        setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "lock_timeouts": self.lock_timeouts,
            "quarantined": self.quarantined,
        }


@dataclass(frozen=True)
class EntryInfo:
    """One live entry as seen by a directory scan."""

    fingerprint: str
    kind: str
    path: Path
    size: int


@dataclass(frozen=True)
class QuarantineInfo:
    """One quarantined file: its original entry name and the validation
    failure that pulled it."""

    name: str
    reason: str
    path: Path
    size: int


@dataclass
class VerifyOutcome:
    """What :meth:`ArtifactStore.verify` found (and did)."""

    checked: int = 0
    valid: int = 0
    quarantined: list[dict[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined


class ArtifactStore:
    """See the module docstring for the contract and layout."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        artifact_version: int = ARTIFACT_VERSION,
        lock_timeout: float = DEFAULT_TIMEOUT,
        stale_lock_after: float = DEFAULT_STALE_AFTER,
        stats: StoreStats | None = None,
    ) -> None:
        self.root = Path(root)
        self.artifact_version = artifact_version
        self.lock_timeout = lock_timeout
        self.stale_lock_after = stale_lock_after
        self.stats = stats if stats is not None else StoreStats()
        version_root = self.root / f"v{FORMAT_VERSION}"
        self.objects_dir = version_root / "objects"
        self.quarantine_dir = version_root / "quarantine"
        self.locks_dir = version_root / "locks"
        # Startup recovery: make the tree (idempotent) and sweep temp
        # files crashed writers abandoned.  Both best-effort — a store
        # on a read-only filesystem still serves reads.
        try:
            for directory in (
                self.objects_dir,
                self.quarantine_dir,
                self.locks_dir,
            ):
                directory.mkdir(parents=True, exist_ok=True)
            for shard in self._shard_dirs():
                sweep_temp_files(shard)
        except OSError as error:
            logger.warning("store root %s not writable: %s", self.root, error)

    # -- paths ---------------------------------------------------------------

    @staticmethod
    def _check_key(value: str, what: str) -> str:
        if not _KEY_PATTERN.match(value):
            raise StoreError(
                f"{what} {value!r} is not a filesystem-safe key "
                "(letters, digits, '_', '-' only)"
            )
        return value

    def entry_path(self, fingerprint: str, kind: str = DEFAULT_KIND) -> Path:
        self._check_key(fingerprint, "fingerprint")
        self._check_key(kind, "kind")
        shard = fingerprint[:2]
        return self.objects_dir / shard / f"{fingerprint}.{kind}{ENTRY_SUFFIX}"

    def _lock_for(self, fingerprint: str, kind: str) -> AdvisoryLock:
        return AdvisoryLock(
            self.locks_dir / f"{fingerprint}.{kind}.lock",
            timeout=self.lock_timeout,
            stale_after=self.stale_lock_after,
        )

    def _shard_dirs(self) -> list[Path]:
        try:
            return [p for p in self.objects_dir.iterdir() if p.is_dir()]
        except OSError:
            return []

    # -- reads ---------------------------------------------------------------

    def _validate(self, blob: bytes, fingerprint: str, kind: str) -> Any:
        """The envelope + payload checks shared by get and verify;
        raises :class:`StoreIntegrityError` with a reason on failure."""
        payload = decode_entry(blob, self.artifact_version)
        try:
            bundle = pickle.loads(payload)
        except Exception as error:  # pickle raises a small zoo of types
            raise StoreIntegrityError(
                f"payload does not unpickle: {error}", reason="unpickleable"
            ) from error
        if (
            not isinstance(bundle, dict)
            or bundle.get("fingerprint") != fingerprint
            or bundle.get("kind") != kind
        ):
            raise StoreIntegrityError(
                "entry does not carry its own key", reason="key-mismatch"
            )
        return bundle["artifact"]

    def get(self, fingerprint: str, kind: str = DEFAULT_KIND) -> Any | None:
        """The stored artifact, or ``None``; never raises on damage.

        A damaged entry (torn, truncated, flipped, version-skewed,
        unpicklable, mislabelled) is quarantined on the spot and read
        as a miss, so the caller rebuilds from source.
        """
        path = self.entry_path(fingerprint, kind)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.bump("misses")
            return None
        except OSError as error:
            logger.warning("store read of %s failed: %s", path.name, error)
            self.stats.bump("misses")
            return None
        try:
            artifact = self._validate(blob, fingerprint, kind)
        except StoreIntegrityError as error:
            self._quarantine(path, fingerprint, kind, error.reason)
            self.stats.bump("misses")
            return None
        self.stats.bump("hits")
        return artifact

    # -- writes --------------------------------------------------------------

    def put(
        self, fingerprint: str, artifact: Any, kind: str = DEFAULT_KIND
    ) -> bool:
        """Persist ``artifact``; ``True`` on success, ``False`` on a
        degraded skip (lock contention, unpicklable input, I/O error).

        A :class:`~repro.runtime.faults.SimulatedCrash` from an injected
        fault point propagates — and deliberately leaves the entry lock
        behind, the way a killed process would, so stale-lock reclaim is
        exercised by the same tests that exercise crash recovery.
        """
        path = self.entry_path(fingerprint, kind)
        try:
            payload = pickle.dumps(
                {"fingerprint": fingerprint, "kind": kind, "artifact": artifact},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as error:
            logger.warning(
                "store put of %s skipped: unpicklable artifact (%s)",
                path.name,
                error,
            )
            self.stats.bump("write_errors")
            return False
        data = bytearray(encode_entry(payload, self.artifact_version))
        faults.fire(faults.DISK_ENCODE_POINT, {"buffer": data})
        lock = self._lock_for(fingerprint, kind)
        try:
            lock.acquire()
        except StoreLockTimeout:
            self.stats.bump("lock_timeouts")
            logger.warning("store put of %s skipped: lock contended", path.name)
            return False
        crashed = False
        try:
            atomic_write_bytes(path, bytes(data))
        except faults.SimulatedCrash:
            crashed = True
            raise
        except OSError as error:
            logger.warning("store put of %s failed: %s", path.name, error)
            self.stats.bump("write_errors")
            return False
        finally:
            if not crashed:
                lock.release()
        self.stats.bump("writes")
        return True

    # -- quarantine ----------------------------------------------------------

    def _quarantine(
        self, path: Path, fingerprint: str, kind: str, reason: str
    ) -> bool:
        """Move a damaged entry aside (atomic rename); ``False`` when the
        entry healed concurrently or the move could not be made safe."""
        lock = self._lock_for(fingerprint, kind)
        try:
            lock.acquire()
        except StoreLockTimeout:
            self.stats.bump("lock_timeouts")
            return False  # leave it; the next read retries
        try:
            # Re-validate under the lock: a concurrent writer may have
            # replaced the damaged file with a good entry already.
            try:
                self._validate(path.read_bytes(), fingerprint, kind)
            except FileNotFoundError:
                return False
            except OSError:
                return False
            except StoreIntegrityError as error:
                reason = error.reason
            else:
                return False  # healed; nothing to quarantine
            destination = self._quarantine_name(path.name, reason)
            try:
                os.replace(path, destination)
            except OSError as replace_error:
                logger.warning(
                    "could not quarantine %s: %s", path.name, replace_error
                )
                return False
            fsync_directory(path.parent)
            fsync_directory(self.quarantine_dir)
            self.stats.bump("quarantined")
            logger.warning(
                "quarantined %s (%s); will rebuild from source",
                path.name,
                reason,
            )
            return True
        finally:
            lock.release()

    def _quarantine_name(self, entry_name: str, reason: str) -> Path:
        base = f"{entry_name}.{reason}"
        candidate = self.quarantine_dir / f"{base}{QUARANTINE_SUFFIX}"
        serial = 1
        while candidate.exists():
            candidate = (
                self.quarantine_dir / f"{base}-{serial}{QUARANTINE_SUFFIX}"
            )
            serial += 1
        return candidate

    # -- maintenance and observability ---------------------------------------

    def entries(self) -> Iterator[EntryInfo]:
        """Every live entry, sorted for stable CLI output."""
        found: list[EntryInfo] = []
        for shard in self._shard_dirs():
            for path in shard.glob(f"*{ENTRY_SUFFIX}"):
                stem = path.name[: -len(ENTRY_SUFFIX)]
                fingerprint, _, kind = stem.rpartition(".")
                if not fingerprint:
                    continue  # not an entry we wrote
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                found.append(EntryInfo(fingerprint, kind, path, size))
        return iter(sorted(found, key=lambda e: (e.fingerprint, e.kind)))

    def quarantined(self) -> list[QuarantineInfo]:
        """Every quarantined file, with its parsed failure reason."""
        found: list[QuarantineInfo] = []
        try:
            paths = sorted(self.quarantine_dir.glob(f"*{QUARANTINE_SUFFIX}"))
        except OSError:
            return []
        for path in paths:
            stem = path.name[: -len(QUARANTINE_SUFFIX)]
            name, _, reason = stem.rpartition(".")
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            found.append(
                QuarantineInfo(name or stem, reason or "unknown", path, size)
            )
        return found

    def verify(self) -> VerifyOutcome:
        """Validate every entry end to end; quarantine the damaged ones."""
        outcome = VerifyOutcome()
        for entry in self.entries():
            outcome.checked += 1
            try:
                blob = entry.path.read_bytes()
            except OSError:
                continue  # vanished mid-scan: nothing to verify
            try:
                self._validate(blob, entry.fingerprint, entry.kind)
            except StoreIntegrityError as error:
                self._quarantine(
                    entry.path, entry.fingerprint, entry.kind, error.reason
                )
                outcome.quarantined.append(
                    {
                        "fingerprint": entry.fingerprint,
                        "kind": entry.kind,
                        "reason": error.reason,
                    }
                )
            else:
                outcome.valid += 1
        return outcome

    def clear(self, include_quarantine: bool = False) -> int:
        """Remove every entry (and optionally the quarantine); returns
        the number of entries removed."""
        removed = 0
        for entry in self.entries():
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                continue
        try:
            for lock_file in self.locks_dir.glob("*.lock"):
                try:
                    lock_file.unlink()
                except OSError:
                    continue
        except OSError:
            pass
        if include_quarantine:
            for info in self.quarantined():
                try:
                    info.path.unlink()
                except OSError:
                    continue
        for shard in self._shard_dirs():
            fsync_directory(shard)
        return removed

    def summary(self) -> dict[str, Any]:
        """On-disk state for ``repro cache stats`` (JSON-safe)."""
        entries = list(self.entries())
        return {
            "root": str(self.root),
            "format_version": FORMAT_VERSION,
            "artifact_version": self.artifact_version,
            "entries": len(entries),
            "bytes": sum(entry.size for entry in entries),
            "quarantined": len(self.quarantined()),
        }

    def __repr__(self) -> str:
        return (
            f"ArtifactStore({str(self.root)!r}, "
            f"{self.stats.hits} hits, {self.stats.writes} writes)"
        )


__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "DEFAULT_KIND",
    "ENV_CACHE_DIR",
    "EntryInfo",
    "QuarantineInfo",
    "StoreStats",
    "VerifyOutcome",
    "resolve_cache_dir",
]
