"""Exact rational linear algebra.

The decision procedure of the paper must be float-free: a feasibility
verdict that flips on a rounding error would break soundness or
completeness.  This package provides exact dense linear algebra over
``fractions.Fraction`` — vectors, matrices, reduced row echelon form,
rank, nullspace, linear solving — as a standalone toolkit for analysing
the generated disequation systems (e.g. the rank of the equality part,
or a nullspace basis of the homogeneous constraints).  The simplex in
:mod:`repro.solver` keeps its own tableau representation for
performance; the test-suite uses this package to cross-check it.
"""

from repro.linalg.matrix import Matrix
from repro.linalg.vector import Vector

__all__ = ["Matrix", "Vector"]
