"""Exact dense matrices over the rationals.

Provides the operations the solver layer needs: reduced row echelon
form, rank, nullspace bases, and linear-system solving.  Everything is
exact (``fractions.Fraction``); these matrices are small — at most the
size of a generated disequation system — so a dense representation is
the simple and adequate choice.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction

from repro.linalg.vector import Vector


class Matrix:
    """An immutable dense matrix of :class:`fractions.Fraction` entries."""

    __slots__ = ("_rows", "_num_rows", "_num_cols")

    def __init__(self, rows: Iterable[Iterable[Fraction | int]]) -> None:
        self._rows = tuple(
            tuple(Fraction(entry) for entry in row) for row in rows
        )
        self._num_rows = len(self._rows)
        self._num_cols = len(self._rows[0]) if self._rows else 0
        for row in self._rows:
            if len(row) != self._num_cols:
                raise ValueError("all matrix rows must have equal length")

    @classmethod
    def identity(cls, size: int) -> Matrix:
        """The ``size`` × ``size`` identity matrix."""
        return cls(
            [
                [Fraction(1) if i == j else Fraction(0) for j in range(size)]
                for i in range(size)
            ]
        )

    @classmethod
    def zeros(cls, num_rows: int, num_cols: int) -> Matrix:
        """An all-zero matrix of the given shape."""
        return cls([[Fraction(0)] * num_cols for _ in range(num_rows)])

    @classmethod
    def from_rows(cls, rows: Sequence[Vector]) -> Matrix:
        """Build a matrix whose rows are the given vectors."""
        return cls([list(row) for row in rows])

    @property
    def shape(self) -> tuple[int, int]:
        return (self._num_rows, self._num_cols)

    def row(self, index: int) -> Vector:
        return Vector(self._rows[index])

    def column(self, index: int) -> Vector:
        return Vector(row[index] for row in self._rows)

    def rows(self) -> tuple[Vector, ...]:
        return tuple(Vector(row) for row in self._rows)

    def __getitem__(self, position: tuple[int, int]) -> Fraction:
        i, j = position
        return self._rows[i][j]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def transpose(self) -> Matrix:
        return Matrix(
            [
                [self._rows[i][j] for i in range(self._num_rows)]
                for j in range(self._num_cols)
            ]
        )

    def __add__(self, other: Matrix) -> Matrix:
        self._check_shape(other)
        return Matrix(
            [
                [a + b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: Matrix) -> Matrix:
        self._check_shape(other)
        return Matrix(
            [
                [a - b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._rows, other._rows)
            ]
        )

    def __mul__(self, scalar: Fraction | int) -> Matrix:
        factor = Fraction(scalar)
        return Matrix([[entry * factor for entry in row] for row in self._rows])

    __rmul__ = __mul__

    def matmul(self, other: Matrix) -> Matrix:
        """Exact matrix product ``self @ other``."""
        if self._num_cols != other._num_rows:
            raise ValueError(
                f"shape mismatch for product: {self.shape} @ {other.shape}"
            )
        other_t = other.transpose()
        return Matrix(
            [
                [
                    sum(
                        (a * b for a, b in zip(row, col)),
                        Fraction(0),
                    )
                    for col in other_t._rows
                ]
                for row in self._rows
            ]
        )

    def apply(self, vector: Vector) -> Vector:
        """Matrix–vector product."""
        if len(vector) != self._num_cols:
            raise ValueError(
                f"shape mismatch: matrix has {self._num_cols} columns, "
                f"vector has length {len(vector)}"
            )
        return Vector(Vector(row).dot(vector) for row in self._rows)

    def rref(self) -> tuple[Matrix, list[int]]:
        """Reduced row echelon form and the list of pivot column indices."""
        rows = [list(row) for row in self._rows]
        pivots: list[int] = []
        pivot_row = 0
        for col in range(self._num_cols):
            if pivot_row >= len(rows):
                break
            chosen = next(
                (r for r in range(pivot_row, len(rows)) if rows[r][col] != 0),
                None,
            )
            if chosen is None:
                continue
            rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
            pivot_value = rows[pivot_row][col]
            rows[pivot_row] = [entry / pivot_value for entry in rows[pivot_row]]
            for r, row in enumerate(rows):
                if r != pivot_row and row[col] != 0:
                    factor = row[col]
                    rows[r] = [
                        entry - factor * lead
                        for entry, lead in zip(row, rows[pivot_row])
                    ]
            pivots.append(col)
            pivot_row += 1
        return Matrix(rows), pivots

    def rank(self) -> int:
        """Rank over the rationals."""
        return len(self.rref()[1])

    def nullspace(self) -> list[Vector]:
        """A basis of the (right) nullspace, one vector per free column."""
        reduced, pivots = self.rref()
        pivot_set = set(pivots)
        free_columns = [
            col for col in range(self._num_cols) if col not in pivot_set
        ]
        basis: list[Vector] = []
        for free in free_columns:
            entries = [Fraction(0)] * self._num_cols
            entries[free] = Fraction(1)
            for pivot_index, pivot_col in enumerate(pivots):
                entries[pivot_col] = -reduced[pivot_index, free]
            basis.append(Vector(entries))
        return basis

    def solve(self, rhs: Vector) -> Vector | None:
        """One exact solution of ``self @ x = rhs``, or ``None`` if inconsistent.

        When the system is underdetermined, free variables are set to 0.
        """
        if len(rhs) != self._num_rows:
            raise ValueError(
                f"shape mismatch: matrix has {self._num_rows} rows, "
                f"rhs has length {len(rhs)}"
            )
        augmented = Matrix(
            [list(row) + [rhs[i]] for i, row in enumerate(self._rows)]
        )
        reduced, pivots = augmented.rref()
        if self._num_cols in pivots:
            return None
        solution = [Fraction(0)] * self._num_cols
        for pivot_index, pivot_col in enumerate(pivots):
            solution[pivot_col] = reduced[pivot_index, self._num_cols]
        return Vector(solution)

    def _check_shape(self, other: Matrix) -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def __repr__(self) -> str:
        body = "; ".join(
            ", ".join(str(entry) for entry in row) for row in self._rows
        )
        return f"Matrix([{body}])"
