"""Immutable exact rational vectors."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from fractions import Fraction


class Vector:
    """A fixed-length vector of :class:`fractions.Fraction` entries.

    Instances are immutable and hashable; all arithmetic is exact.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[Fraction | int]) -> None:
        self._entries = tuple(Fraction(entry) for entry in entries)

    @classmethod
    def zeros(cls, size: int) -> Vector:
        """The zero vector of the given length."""
        return cls([Fraction(0)] * size)

    @classmethod
    def unit(cls, size: int, index: int) -> Vector:
        """The standard basis vector ``e_index`` of the given length."""
        entries = [Fraction(0)] * size
        entries[index] = Fraction(1)
        return cls(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Fraction]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Fraction:
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __add__(self, other: Vector) -> Vector:
        self._check_length(other)
        return Vector(a + b for a, b in zip(self._entries, other._entries))

    def __sub__(self, other: Vector) -> Vector:
        self._check_length(other)
        return Vector(a - b for a, b in zip(self._entries, other._entries))

    def __neg__(self) -> Vector:
        return Vector(-entry for entry in self._entries)

    def __mul__(self, scalar: Fraction | int) -> Vector:
        factor = Fraction(scalar)
        return Vector(entry * factor for entry in self._entries)

    __rmul__ = __mul__

    def dot(self, other: Vector) -> Fraction:
        """Exact inner product."""
        self._check_length(other)
        return sum(
            (a * b for a, b in zip(self._entries, other._entries)), Fraction(0)
        )

    def is_zero(self) -> bool:
        """Whether every entry is zero."""
        return all(entry == 0 for entry in self._entries)

    def _check_length(self, other: Vector) -> None:
        if len(self) != len(other):
            raise ValueError(
                f"vector length mismatch: {len(self)} vs {len(other)}"
            )

    def __repr__(self) -> str:
        return f"Vector([{', '.join(str(entry) for entry in self._entries)}])"
