"""Textual regeneration of the paper's figures.

Each function renders one of the paper's artifacts from live objects:

* :func:`render_schema` — Figure 3 (the CR-schema listing);
* :func:`render_expansion` — Figure 4 (the expansion);
* :func:`render_system` — Figure 5 (the disequation system);
* :func:`render_solution` and :func:`render_interpretation` — Figure 6;
* :func:`render_inferences` — Figure 7.

The benchmark harness prints these so a reader can diff the output
against the paper page by page.
"""

from repro.render.figures import (
    render_expansion,
    render_inferences,
    render_interpretation,
    render_schema,
    render_solution,
    render_system,
)

__all__ = [
    "render_schema",
    "render_expansion",
    "render_system",
    "render_solution",
    "render_interpretation",
    "render_inferences",
]
