"""Renderers for the paper's Figures 3–7.

These produce deterministic plain text, designed to be diffed against
the paper: the meeting schema of Figure 2 renders (up to typography)
exactly the listings of Figures 3, 4 and 5.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cr.expansion import Expansion
from repro.cr.implication import ImplicationResult
from repro.cr.interpretation import Interpretation
from repro.cr.schema import CRSchema
from repro.cr.system import CRSystem


def _class_abbreviations(schema: CRSchema) -> dict[str, str]:
    """Single-letter abbreviations when initials are unique (the paper
    abbreviates Speaker/Discussant/Talk to S/D/T), full names otherwise."""
    initials = [cls[0] for cls in schema.classes]
    if len(set(initials)) == len(initials):
        return {cls: cls[0] for cls in schema.classes}
    return {cls: cls for cls in schema.classes}


def render_schema(schema: CRSchema) -> str:
    """Figure-3 style listing of a CR-schema."""
    lines: list[str] = []
    lines.append("C = {" + ", ".join(schema.classes) + "};")
    lines.append(
        "R = {" + ", ".join(rel.name for rel in schema.relationships) + "};"
    )
    roles = [role for rel in schema.relationships for role in rel.roles]
    lines.append("U = {" + ", ".join(roles) + "};")
    isa = ", ".join(f"{sub} <= {sup}" for sub, sup in schema.isa_statements)
    lines.append("Sisa = {" + isa + "};")
    lines.append("")
    for rel in schema.relationships:
        inner = ", ".join(f"{role}: {cls}" for role, cls in rel.signature)
        lines.append(f"{rel.name} = <{inner}>;")
    lines.append("")
    for (cls, rel_name, role), card in sorted(
        schema.declared_cards.items(),
        key=lambda item: (item[0][1], item[0][2], item[0][0]),
    ):
        if card.minc > 0:
            lines.append(f"minc({cls}, {rel_name}, {role}) = {card.minc};")
        if card.maxc is not None:
            lines.append(f"maxc({cls}, {rel_name}, {role}) = {card.maxc};")
    for group in schema.disjointness_groups:
        lines.append("disjoint(" + ", ".join(sorted(group)) + ");")
    for covered, coverers in schema.coverings:
        lines.append(
            f"cover({covered} by " + ", ".join(sorted(coverers)) + ");"
        )
    return "\n".join(lines)


def render_expansion(expansion: Expansion) -> str:
    """Figure-4 style listing of an expansion.

    Compound classes appear with their paper indices and abbreviated
    member sets; the consistent subsets and the lifted non-default
    cardinalities follow.
    """
    schema = expansion.schema
    abbrev = _class_abbreviations(schema)
    lines: list[str] = []

    all_classes = list(expansion.all_compound_classes())
    rendered = ", ".join(
        f"C{expansion.class_index(cc)} = "
        + "{"
        + ",".join(abbrev[cls] for cls in schema.classes if cls in cc.members)
        + "}"
        for cc in all_classes
    )
    lines.append(f"Cbar = {{C1 .. C{len(all_classes)}}}, where {rendered};")
    consistent = expansion.consistent_compound_classes()
    lines.append(
        "Cc = {"
        + ", ".join(f"C{expansion.class_index(cc)}" for cc in consistent)
        + "};"
    )
    lines.append("")

    for rel in schema.relationships:
        compounds = expansion.consistent_relationships_of(rel.name)
        letter = rel.name[0]
        tuples = ", ".join(
            letter
            + "<"
            + ",".join(
                str(expansion.class_index(component))
                for _, component in compound.signature
            )
            + ">"
            for compound in compounds
        )
        lines.append(f"Rc({rel.name}) = {{{tuples}}};")
    lines.append("")

    for rel in schema.relationships:
        for role, _primary in rel.signature:
            for compound in consistent:
                if rel.primary_class(role) not in compound.members:
                    continue
                card = expansion.lifted_card(compound, rel.name, role)
                index = expansion.class_index(compound)
                if card.minc > 0:
                    lines.append(
                        f"minc(C{index}, {rel.name}, {role}) = {card.minc};"
                    )
                if card.maxc is not None:
                    lines.append(
                        f"maxc(C{index}, {rel.name}, {role}) = {card.maxc};"
                    )
    return "\n".join(lines)


def render_system(cr_system: CRSystem) -> str:
    """Figure-5 style listing: unknowns, then the disequations by group."""
    lines: list[str] = []
    class_names = ", ".join(cr_system.class_var.values())
    lines.append(f"class unknowns: {class_names}")
    rel_names = ", ".join(cr_system.rel_var.values())
    lines.append(f"relationship unknowns: {rel_names}")
    lines.append("")

    def section(prefix: str, title: str) -> None:
        rows = [
            constraint.pretty()
            for constraint in cr_system.system.constraints
            if constraint.label is not None
            and constraint.label.startswith(prefix)
        ]
        if rows:
            lines.append(f"-- {title}")
            lines.extend(rows)
            lines.append("")

    section("zero-class:", "inconsistent compound classes (= 0)")
    section("zero-rel:", "inconsistent compound relationships (= 0)")
    section("min:", "lifted minc disequations")
    section("max:", "lifted maxc disequations")
    section("nonneg:", "non-negativity")
    return "\n".join(lines).rstrip()


def render_solution(solution: Mapping[str, int], only_nonzero: bool = True) -> str:
    """Figure-6 style listing of a solution of the system."""
    lines = []
    for name in sorted(solution):
        value = solution[name]
        if only_nonzero and value == 0:
            continue
        lines.append(f"X({name}) = {value};")
    if not lines:
        return "X = 0 (the empty solution);"
    return "\n".join(lines)


def render_interpretation(interpretation: Interpretation) -> str:
    """Figure-6 style listing of a finite interpretation."""
    lines: list[str] = []
    domain = ", ".join(sorted(map(str, interpretation.domain)))
    lines.append(f"Delta = {{{domain}}};")
    for cls in sorted(interpretation.class_extensions):
        members = ", ".join(
            sorted(map(str, interpretation.instances_of(cls)))
        )
        lines.append(f"{cls}^I = {{{members}}};")
    for rel in sorted(interpretation.relationship_extensions):
        tuples = ", ".join(
            labelled.pretty() for labelled in sorted(interpretation.tuples_of(rel))
        )
        lines.append(f"{rel}^I = {{{tuples}}};")
    return "\n".join(lines)


def render_inferences(results: Iterable[ImplicationResult]) -> str:
    """Figure-7 style listing of implication verdicts."""
    return "\n".join(result.pretty() for result in results)
