"""Command-line interface: ``python -m repro <command> schema.cr ...``.

Brings the reasoner to the shell for schemas written in the DSL
(:mod:`repro.dsl`):

========  =============================================================
check     per-class finite satisfiability (optionally one class,
          optionally also the unrestricted verdict); runs the static
          analyzer first and serves statically-settled verdicts
          without expanding
lint      the polynomial-time static analyzer alone: structured
          diagnostics (errors / warnings / infos) with machine-checked
          witnesses, ``--json`` for tooling, ``--strict`` to fail on
          warnings; ``--repo`` turns the lens inward and runs the
          :mod:`repro.lintkit` rules (R1–R12) over the repo's own
          source against the checked-in baseline
          (``tools/lint_baseline.json``)
implies   decide ``S ⊨ K`` for a statement like ``"A isa B"`` or
          ``"maxc(Speaker, Holds, U1) = 1"``
batch     answer many queries (``sat <Class>`` lines and implication
          statements) from ONE cached reasoning session, so the
          exponential expansion is built once per constraint-graph
          component for the whole batch; ``--cache-dir`` (or
          ``REPRO_CACHE_DIR``) adds the crash-safe persistent artifact
          store so later runs — and ``--jobs`` pool workers — start warm
diff      component-level delta between two schemas: report which
          constraint-graph islands changed, reuse warm artifacts for
          the untouched ones (``--cache-dir``), and answer queries
          against the new schema recomputing only the delta
cache     maintenance surface of the persistent store: ``stats``,
          ``verify`` (checksum every entry, quarantining damage),
          ``clear``, ``quarantine list``; ``--json`` for tooling
model     construct and print a witness database state for a class
explain   print the verified infeasibility proof for an unsat class
debug     print a minimal unsatisfiable constraint set for a class
render    print the schema / expansion / disequation system in the
          paper's figure notation
fmt       parse and re-serialise the schema (canonical formatting)
========  =============================================================

Every command exits 0 on a "positive" outcome (satisfiable / implied /
model built), 1 on the negative outcome, 2 on usage or input errors,
and 3 on **resource exhaustion** — a ``--timeout`` / ``--max-expansion``
/ ``--max-lp`` budget ran out, or a static ``ExpansionLimits`` guard
fired — so the CLI composes with shell scripts and callers can retry
with a larger budget (exit 3) without misreading the answer as a
negative verdict (exit 1) or a broken invocation (exit 2).
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from contextlib import ExitStack
from pathlib import Path

from repro.analysis import analyze
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.construction import construct_model_for_result
from repro.cr.explain import explain_unsatisfiability
from repro.cr.implication import implies
from repro.cr.satisfiability import is_class_satisfiable, satisfiable_classes
from repro.cr.schema import CRSchema
from repro.cr.system import build_system
from repro.cr.unrestricted import unrestricted_satisfiable_classes
from repro.dsl import parse_schema, serialize_schema
from repro.errors import BudgetExceededError, LimitExceededError, ReproError
from repro.parallel import resolve_jobs
from repro.pipeline import STAGE_NORMALIZE, PipelineRun, activate_run, stage
from repro.runtime.budget import Budget, activate
from repro.solver.registry import backend_names, pin_backend
from repro.runtime.outcome import ImplicationVerdict, Verdict
from repro.ext.debugging import (
    minimal_unsatisfiable_constraints,
    quickxplain_unsatisfiable_constraints,
)
from repro.render import (
    render_expansion,
    render_interpretation,
    render_schema,
    render_system,
)

_STATEMENT_PATTERNS = [
    (
        re.compile(r"\s*(\w+)\s+isa\s+(\w+)\s*$"),
        lambda m: IsaStatement(m.group(1), m.group(2)),
    ),
    (
        re.compile(r"\s*minc\(\s*(\w+)\s*,\s*(\w+)\s*,\s*(\w+)\s*\)\s*=\s*(\d+)\s*$"),
        lambda m: MinCardinalityStatement(
            m.group(1), m.group(2), m.group(3), int(m.group(4))
        ),
    ),
    (
        re.compile(r"\s*maxc\(\s*(\w+)\s*,\s*(\w+)\s*,\s*(\w+)\s*\)\s*=\s*(\d+)\s*$"),
        lambda m: MaxCardinalityStatement(
            m.group(1), m.group(2), m.group(3), int(m.group(4))
        ),
    ),
    (
        re.compile(r"\s*disjoint\(\s*(\w+(?:\s*,\s*\w+)+)\s*\)\s*$"),
        lambda m: DisjointnessStatement(
            frozenset(part.strip() for part in m.group(1).split(","))
        ),
    ),
]


def parse_statement(text: str):
    """Parse a query statement in the Figure-7 surface syntax."""
    for pattern, build in _STATEMENT_PATTERNS:
        match = pattern.match(text)
        if match:
            return build(match)
    raise ReproError(
        f"cannot parse statement {text!r}; expected one of: "
        "'A isa B', 'minc(C, R, U) = n', 'maxc(C, R, U) = n', "
        "'disjoint(A, B, ...)'"
    )


def _load_schema(path: str) -> CRSchema:
    with stage(STAGE_NORMALIZE):
        return parse_schema(Path(path).read_text())


def _budget_from(args: argparse.Namespace) -> Budget | None:
    """A :class:`Budget` from the resource flags, or ``None`` if unset."""
    timeout = getattr(args, "timeout", None)
    max_expansion = getattr(args, "max_expansion", None)
    max_lp = getattr(args, "max_lp", None)
    if timeout is None and max_expansion is None and max_lp is None:
        return None
    return Budget(
        timeout=timeout,
        max_expansion_nodes=max_expansion,
        max_solver_calls=max_lp,
    )


def _verdict_word(value) -> str:
    """Render a satisfiability verdict (bool or Verdict) for output."""
    if value is Verdict.UNKNOWN:
        return "UNKNOWN"
    return "satisfiable" if value else "UNSATISFIABLE"


# -- subcommand implementations (return process exit codes) ---------------


def _cmd_check(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    budget = _budget_from(args)
    jobs = resolve_jobs(getattr(args, "jobs", None))
    if args.cls:
        result = is_class_satisfiable(
            schema,
            args.cls,
            engine=args.engine,
            budget=budget,
            precheck=True,
            jobs=jobs,
        )
        if result.verdict is Verdict.UNKNOWN:
            print(f"{args.cls}: UNKNOWN ({result.unknown_reason})")
            return 3
        verdict = "satisfiable" if result.satisfiable else "UNSATISFIABLE"
        print(f"{args.cls}: {verdict} (finite models)")
        if result.diagnostic is not None:
            print(f"  {result.diagnostic.pretty()}")
        return 0 if result.satisfiable else 1
    verdicts = satisfiable_classes(
        schema, budget=budget, precheck=True, jobs=jobs
    )
    unrestricted = (
        unrestricted_satisfiable_classes(schema) if args.unrestricted else None
    )
    for cls, satisfiable in verdicts.items():
        line = f"{cls}: {_verdict_word(satisfiable)}"
        if unrestricted is not None:
            line += (
                "  [unrestricted: "
                f"{'satisfiable' if unrestricted[cls] else 'unsatisfiable'}]"
            )
        print(line)
    if any(value is Verdict.UNKNOWN for value in verdicts.values()):
        return 3
    return 0 if all(verdicts.values()) else 1


# The one authoritative statement of ``repro lint``'s exit semantics.
# It appears verbatim in ``repro lint --help`` and in the README's
# "Static schema analysis" section; ``tests/test_lint_cli.py`` pins
# all three surfaces (epilog text, README text, actual exit codes)
# against each other so they cannot drift again.
LINT_EXIT_CODES = """\
exit codes:
  0 = clean (no errors; with --repo, no non-baselined finding)
  1 = findings (errors, or warnings under --strict; with --repo, new
      findings, or stale suppressions under --strict)
  2 = unreadable or invalid input (missing file, parse error, bad
      baseline)"""


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer alone and report its diagnostics.

    Exit codes (pinned by ``tests/test_lint_cli.py`` against the
    ``--help`` epilog and the README): 0 when the report has no error
    (and, under ``--strict``, no warning), 1 when it does, 2 for
    unreadable or unparsable input (via :func:`main`'s error mapping).
    Infos never affect the exit code.  With ``--repo`` the subject is
    the repo's own source instead of a schema: 0 means no
    non-baselined finding, 1 means new findings (or stale baseline
    suppressions under ``--strict``), 2 means an unreadable or invalid
    baseline.
    """
    if args.repo:
        return _cmd_lint_repo(args)
    if args.schema is None:
        raise ReproError(
            "lint needs a schema file (or --repo to lint the repo's "
            "own source)"
        )
    schema = _load_schema(args.schema)
    report = analyze(schema)
    assert report.verify(schema), "analysis witness failed verification"
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.pretty())
    failing = bool(report.errors) or (args.strict and bool(report.warnings))
    return 1 if failing else 0


def _cmd_lint_repo(args: argparse.Namespace) -> int:
    """``repro lint --repo``: run the lintkit rules over this repo's
    own source and gate against the checked-in baseline."""
    from repro.lintkit import default_baseline_path, lint_repo

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else default_baseline_path()
    )
    report = lint_repo(baseline_path=baseline_path)
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        for line in report.render_human():
            print(line)
    failing = bool(report.new_findings) or (
        args.strict and bool(report.stale_suppressions)
    )
    return 1 if failing else 0


def parse_batch_query(text: str):
    """One batch line: ``sat <Class>`` or a Figure-7 statement.

    Public because the serve daemon parses its request queries through
    this exact function — the surface syntax accepted over HTTP is the
    batch file syntax, by construction.
    """
    stripped = text.strip()
    sat_match = re.match(r"sat\s+(\w+)\s*$", stripped)
    if sat_match:
        return ("sat", sat_match.group(1))
    return ("implies", parse_statement(stripped))


def _collect_queries(args: argparse.Namespace) -> list:
    """Queries from ``--query`` flags plus the query file (``-`` = stdin).

    May be empty — ``batch`` rejects that, ``diff`` treats it as a
    report-only run.
    """
    lines: list[str] = list(args.query or [])
    if args.queries is not None:
        source = (
            sys.stdin.read()
            if args.queries == "-"
            else Path(args.queries).read_text()
        )
        lines.extend(source.splitlines())
    queries = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        queries.append(parse_batch_query(stripped))
    return queries


def _read_batch_queries(args: argparse.Namespace) -> list:
    queries = _collect_queries(args)
    if not queries:
        raise ReproError(
            "batch needs at least one query (lines of 'sat <Class>', "
            "'A isa B', 'minc(C, R, U) = n', 'maxc(C, R, U) = n', or "
            "'disjoint(A, B, ...)')"
        )
    return queries


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.parallel.worker import answer_query
    from repro.store import resolve_cache_dir

    jobs = resolve_jobs(getattr(args, "jobs", None))
    cache_dir = resolve_cache_dir(
        getattr(args, "cache_dir", None), getattr(args, "no_cache", False)
    )
    run = PipelineRun()
    wall_start = time.perf_counter()
    with activate_run(run):
        schema = _load_schema(args.schema)
        queries = _read_batch_queries(args)
        budget = _budget_from(args)
        if jobs > 1 and len(queries) > 1:
            # Fan out across worker processes.  Stage timings under this
            # branch come from the workers' own PipelineRuns (merged by
            # the pool as chunks land) — the parent's wait time belongs
            # to no stage, so ``run`` never double-counts it.
            from repro.parallel.fanout import run_parallel_batch
            from repro.session.fingerprint import schema_fingerprint

            outcome = run_parallel_batch(
                schema,
                queries,
                jobs,
                backend=getattr(args, "backend", None),
                budget=budget,
                cache_dir=cache_dir,
            )
            records = outcome.records
            any_unknown = outcome.any_unknown
            all_positive = outcome.all_positive
            stats_dict = outcome.session_stats
            fingerprint = schema_fingerprint(schema)
            if not args.json:
                for text in outcome.texts:
                    print(text)
        else:
            from repro.components import DecomposedSession
            from repro.session import SessionCache

            cache = None
            if cache_dir is not None:
                from repro.store import ArtifactStore

                cache = SessionCache(store=ArtifactStore(cache_dir))
            session = DecomposedSession(schema, cache=cache, budget=budget)
            records = []
            any_unknown = False
            all_positive = True
            for kind, payload in queries:
                record, text, positive, unknown = answer_query(
                    session, kind, payload
                )
                records.append(record)
                any_unknown = any_unknown or unknown
                all_positive = all_positive and positive
                if not args.json:
                    print(text)
            stats_dict = session.stats.as_dict()
            fingerprint = session.fingerprint
    wall_seconds = time.perf_counter() - wall_start
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "schema": schema.name,
                    "fingerprint": fingerprint,
                    "jobs": jobs,
                    "results": records,
                    "stats": stats_dict,
                    "stages": run.as_dict(),
                    "wall_seconds": wall_seconds,
                },
                indent=2,
            )
        )
    elif args.stats:
        _print_batch_stats(stats_dict, cache_dir, run, wall_seconds, jobs)
    if any_unknown:
        return 3
    return 0 if all_positive else 1


def _print_batch_stats(
    stats_dict: dict,
    cache_dir: str | None,
    run: PipelineRun,
    wall_seconds: float,
    jobs: int,
) -> None:
    """The ``--stats`` footer shared by ``batch`` and ``diff``."""
    print(
        f"# session: {stats_dict.get('queries', 0)} queries, "
        f"{stats_dict.get('expansion_builds', 0)} expansion build(s), "
        f"{stats_dict.get('fixpoint_runs', 0)} fixpoint run(s), "
        f"{stats_dict.get('hits', 0)} cache hit(s)"
    )
    print(
        f"# analyze: {stats_dict.get('analysis_runs', 0)} run(s), "
        f"{stats_dict.get('analysis_short_circuits', 0)} short-circuit(s)"
    )
    print(
        f"# components: {stats_dict.get('components_total', 0)} total, "
        f"{stats_dict.get('components_reused', 0)} reused, "
        f"{stats_dict.get('components_rebuilt', 0)} rebuilt"
    )
    print(
        f"# pruning: {stats_dict.get('zero_sets_enumerated', 0)} "
        "zero-set(s) enumerated, "
        f"{stats_dict.get('pruned_by_orbit', 0)} orbit-pruned, "
        f"{stats_dict.get('pruned_by_nogood', 0)} nogood-pruned, "
        f"{stats_dict.get('orbits_found', 0)} orbit(s)"
    )
    if cache_dir is not None:
        print(
            f"# store: {stats_dict.get('store_hits', 0)} hit(s), "
            f"{stats_dict.get('store_misses', 0)} miss(es), "
            f"{stats_dict.get('store_writes', 0)} write(s), "
            f"{stats_dict.get('store_write_failures', 0)} "
            "write failure(s)"
        )
    for name, timing in run.as_dict().items():
        print(
            f"# stage {name}: {timing['runs']} run(s), "
            f"{timing['seconds'] * 1000.0:.1f}ms"
        )
    print(
        f"# wall-clock: {wall_seconds * 1000.0:.1f}ms ({jobs} job(s))"
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    """Component-level delta between two schemas (``repro diff OLD NEW``).

    Reports which constraint-graph islands changed between the two
    schemas, classifies the new schema's components against the session
    cache and persistent store (warm → ``components_reused``, cold →
    ``components_rebuilt``), and answers any queries against the *new*
    schema — with a warm ``--cache-dir``, only the changed islands'
    artifacts are recomputed.  Without queries the run is report-only
    and exits 0; with queries the exit semantics match ``batch``.
    """
    from repro.components import (
        DecomposedSession,
        compute_delta,
        decompose_schema,
    )
    from repro.parallel.worker import answer_query
    from repro.pipeline import STAGE_DECOMPOSE
    from repro.store import resolve_cache_dir

    cache_dir = resolve_cache_dir(
        getattr(args, "cache_dir", None), getattr(args, "no_cache", False)
    )
    run = PipelineRun()
    wall_start = time.perf_counter()
    with activate_run(run):
        old_schema = _load_schema(args.old_schema)
        new_schema = _load_schema(args.new_schema)
        queries = _collect_queries(args)
        budget = _budget_from(args)
        from repro.session import SessionCache

        cache = None
        if cache_dir is not None:
            from repro.store import ArtifactStore

            cache = SessionCache(store=ArtifactStore(cache_dir))
        with stage(STAGE_DECOMPOSE):
            old_decomposition = decompose_schema(old_schema)
        session = DecomposedSession(new_schema, cache=cache, budget=budget)
        delta = compute_delta(old_decomposition, session.decomposition)
        session.classify_all()
        delta_dict = delta.as_dict()
        if not args.json:
            print(
                f"# diff {old_schema.name} -> {new_schema.name}: "
                f"{delta_dict['old_total']} old component(s), "
                f"{delta_dict['new_total']} new, "
                f"{len(delta.unchanged)} unchanged, "
                f"{len(delta.changed)} changed, "
                f"{len(delta.removed)} removed"
            )
            for label, components in (
                ("unchanged", delta.unchanged),
                ("changed", delta.changed),
                ("removed", delta.removed),
            ):
                for component in components:
                    classes = ", ".join(sorted(component.classes))
                    print(
                        f"# {label} {component.fingerprint[:12]} "
                        f"[{classes}]"
                    )
        records = []
        any_unknown = False
        all_positive = True
        for kind, payload in queries:
            record, text, positive, unknown = answer_query(
                session, kind, payload
            )
            records.append(record)
            any_unknown = any_unknown or unknown
            all_positive = all_positive and positive
            if not args.json:
                print(text)
        stats_dict = session.stats.as_dict()
    wall_seconds = time.perf_counter() - wall_start
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "old_schema": old_schema.name,
                    "new_schema": new_schema.name,
                    "old_fingerprint": old_decomposition.whole_fingerprint,
                    "new_fingerprint": session.fingerprint,
                    "components": delta_dict,
                    "results": records,
                    "stats": stats_dict,
                    "stages": run.as_dict(),
                    "wall_seconds": wall_seconds,
                },
                indent=2,
            )
        )
    elif args.stats:
        _print_batch_stats(stats_dict, cache_dir, run, wall_seconds, jobs=1)
    if queries:
        if any_unknown:
            return 3
        return 0 if all_positive else 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio reasoning daemon until SIGTERM/SIGINT drains it.

    The import is lazy in both directions: this module never imports
    :mod:`repro.serve` at the top level, and the serve package imports
    this module's parsers — so the daemon speaks exactly the CLI's
    surface syntax without an import cycle.
    """
    from repro.serve import ReasoningServer, ServeConfig
    from repro.store import resolve_cache_dir

    cache_dir = resolve_cache_dir(
        getattr(args, "cache_dir", None), getattr(args, "no_cache", False)
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        memory_entries=args.memory_entries,
        max_inflight=args.max_inflight,
        workers=args.workers,
        request_timeout=args.request_timeout,
        backend=getattr(args, "backend", None),
        log_json=args.log_json,
        ready_file=args.ready_file,
    )
    return ReasoningServer(config).run()


def _require_store(args: argparse.Namespace):
    """The store the ``cache`` subcommand operates on (flag or env)."""
    from repro.store import ArtifactStore, ENV_CACHE_DIR, resolve_cache_dir

    cache_dir = resolve_cache_dir(getattr(args, "cache_dir", None))
    if cache_dir is None:
        raise ReproError(
            f"no cache directory: pass --cache-dir or set {ENV_CACHE_DIR}"
        )
    return ArtifactStore(cache_dir)


def _cmd_cache(args: argparse.Namespace) -> int:
    """Maintenance surface of the persistent artifact store.

    ``stats`` and ``quarantine list`` report and exit 0; ``verify``
    exits 0 when every entry validates and 1 when any was damaged (the
    damage is quarantined, so a follow-up run is clean); ``clear``
    removes entries (and locks) and exits 0.
    """
    import json

    store = _require_store(args)
    if args.cache_command == "stats":
        summary = store.summary()
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(f"store: {summary['root']}")
            print(
                f"  format v{summary['format_version']}, "
                f"artifacts v{summary['artifact_version']}"
            )
            print(
                f"  {summary['entries']} entr(ies), {summary['bytes']} bytes, "
                f"{summary['quarantined']} quarantined"
            )
        return 0
    if args.cache_command == "verify":
        outcome = store.verify()
        if args.json:
            print(
                json.dumps(
                    {
                        "checked": outcome.checked,
                        "valid": outcome.valid,
                        "quarantined": outcome.quarantined,
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"verified {outcome.checked} entr(ies): {outcome.valid} valid, "
                f"{len(outcome.quarantined)} quarantined"
            )
            for item in outcome.quarantined:
                print(
                    f"  quarantined {item['fingerprint']}.{item['kind']} "
                    f"({item['reason']})"
                )
        return 0 if outcome.clean else 1
    if args.cache_command == "clear":
        removed = store.clear(include_quarantine=args.include_quarantine)
        if args.json:
            print(json.dumps({"removed": removed}, indent=2))
        else:
            print(f"removed {removed} entr(ies)")
        return 0
    assert args.cache_command == "quarantine"
    infos = store.quarantined()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": info.name,
                        "reason": info.reason,
                        "bytes": info.size,
                    }
                    for info in infos
                ],
                indent=2,
            )
        )
    else:
        if not infos:
            print("quarantine is empty")
        for info in infos:
            print(f"{info.name}  ({info.reason}, {info.size} bytes)")
    return 0


def _cmd_implies(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    statement = parse_statement(args.statement)
    result = implies(
        schema,
        statement,
        engine=args.engine,
        budget=_budget_from(args),
        jobs=resolve_jobs(getattr(args, "jobs", None)),
    )
    print(result.pretty())
    if result.verdict is ImplicationVerdict.UNKNOWN:
        return 3
    if not result.implied and args.countermodel:
        print(render_interpretation(result.countermodel))
    return 0 if result.implied else 1


def _cmd_model(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    result = is_class_satisfiable(schema, args.cls, engine=args.engine)
    if not result.satisfiable:
        print(f"{args.cls} is unsatisfiable; no model exists")
        return 1
    model = construct_model_for_result(result)
    print(render_interpretation(model))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    explanation = explain_unsatisfiability(schema, args.cls)
    assert explanation.verify()
    print(explanation.pretty())
    if getattr(args, "nogoods", False):
        print()
        print(_explain_nogoods(schema, args.cls))
    return 0


def _explain_nogoods(schema: CRSchema, cls: str) -> str:
    """The ``explain --nogoods`` appendix: re-run the class's
    Theorem-3.4 zero-set search with the pruned engine and render each
    learned Farkas nogood against its source system."""
    from repro.cr.expansion import Expansion
    from repro.cr.satisfiability import class_targets, decision_problem
    from repro.runtime.fallback import DEFAULT_FALLBACK, chain_for
    from repro.solver.pruned import (
        NogoodStore,
        pruned_zero_set_search,
        render_nogoods,
    )

    cr_system = build_system(Expansion(schema), mode="pruned")
    problem = decision_problem(cr_system, class_targets(cr_system, cls))
    store = NogoodStore()
    pruned_zero_set_search(
        problem, chain=chain_for(DEFAULT_FALLBACK), store=store
    )
    return (
        f"nogoods learned while deciding {cls!r} "
        f"(pruned zero-set search):\n{render_nogoods(problem, store)}"
    )


def _cmd_debug(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    extract = (
        quickxplain_unsatisfiable_constraints
        if args.algorithm == "quickxplain"
        else minimal_unsatisfiable_constraints
    )
    report = extract(schema, args.cls)
    print(report.pretty())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    if args.what == "schema":
        print(render_schema(schema))
        return 0
    from repro.cr.expansion import Expansion

    expansion = Expansion(schema)
    if args.what == "expansion":
        print(render_expansion(expansion))
    else:
        print(render_system(build_system(expansion, mode=args.mode)))
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    text = serialize_schema(schema)
    if args.write:
        Path(args.schema).write_text(text)
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reason about ISA + cardinality constraints "
        "(Calvanese & Lenzerini, ICDE'94).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--engine",
            choices=["fixpoint", "naive", "pruned"],
            default="fixpoint",
            help="satisfiability engine (default: fixpoint)",
        )

    def add_backend(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend",
            choices=backend_names(),
            default=None,
            help="pin the primary solver backend for this command "
            "(default: REPRO_BACKEND env var, else sparse-simplex)",
        )

    def add_jobs(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for parallelisable work "
            "(default: the REPRO_JOBS env var, else 1 = serial; "
            "results are identical at any job count)",
        )

    def add_budget(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget; exhaustion exits 3 instead of hanging",
        )
        sub.add_argument(
            "--max-expansion",
            type=int,
            default=None,
            metavar="NODES",
            help="cap on expansion nodes visited (the exponential step)",
        )
        sub.add_argument(
            "--max-lp",
            type=int,
            default=None,
            metavar="CALLS",
            help="cap on LP solver calls",
        )

    check = subparsers.add_parser("check", help="class satisfiability")
    check.add_argument("schema")
    check.add_argument("--class", dest="cls", default=None)
    check.add_argument(
        "--unrestricted",
        action="store_true",
        help="also report satisfiability over possibly-infinite models",
    )
    add_engine(check)
    add_backend(check)
    add_budget(check)
    add_jobs(check)
    check.set_defaults(run=_cmd_check)

    lint = subparsers.add_parser(
        "lint",
        help="static schema diagnostics (no expansion, polynomial "
        "time); --repo lints the repo's own source instead",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=LINT_EXIT_CODES,
    )
    lint.add_argument(
        "schema",
        nargs="?",
        default=None,
        help="schema file to lint (omit with --repo)",
    )
    lint.add_argument(
        "--repo",
        action="store_true",
        help="lint the repo's own source with the lintkit rules "
        "(R1-R12) against the checked-in baseline instead of "
        "linting a schema",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline of accepted findings for --repo "
        "(default: tools/lint_baseline.json)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the diagnostic report as JSON",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on schema warnings, or on stale baseline "
        "suppressions with --repo",
    )
    lint.set_defaults(run=_cmd_lint)

    batch = subparsers.add_parser(
        "batch",
        help="answer many queries from one cached reasoning session",
    )
    batch.add_argument("schema")
    batch.add_argument(
        "queries",
        nargs="?",
        default=None,
        help="file of queries, one per line ('-' for stdin); lines are "
        "'sat <Class>' or implication statements; '#' comments allowed",
    )
    batch.add_argument(
        "--query",
        action="append",
        metavar="QUERY",
        help="an inline query (repeatable, combined with the file)",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report (results, fingerprint, session stats)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="append session cache statistics and per-stage pipeline "
        "timings (normalize/expand/build-system/solve/verdict)",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact store shared across runs and --jobs "
        "workers (default: the REPRO_CACHE_DIR env var, else no "
        "persistence; output is byte-identical either way)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and REPRO_CACHE_DIR for this run",
    )
    add_backend(batch)
    add_budget(batch)
    add_jobs(batch)
    batch.set_defaults(run=_cmd_batch)

    diff = subparsers.add_parser(
        "diff",
        help="component-level schema delta; answer queries against the "
        "new schema reusing warm artifacts for unchanged islands",
    )
    diff.add_argument("old_schema")
    diff.add_argument("new_schema")
    diff.add_argument(
        "queries",
        nargs="?",
        default=None,
        help="optional file of queries against the NEW schema, one per "
        "line ('-' for stdin); same syntax as batch; omit for a "
        "report-only diff",
    )
    diff.add_argument(
        "--query",
        action="append",
        metavar="QUERY",
        help="an inline query (repeatable, combined with the file)",
    )
    diff.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report (component delta, results, reuse "
        "counters, session stats)",
    )
    diff.add_argument(
        "--stats",
        action="store_true",
        help="append session cache statistics and per-stage pipeline "
        "timings (as in batch --stats)",
    )
    diff.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact store to reuse unchanged components "
        "from (default: the REPRO_CACHE_DIR env var)",
    )
    diff.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and REPRO_CACHE_DIR for this run",
    )
    add_backend(diff)
    add_budget(diff)
    diff.set_defaults(run=_cmd_diff)

    serve = subparsers.add_parser(
        "serve",
        help="HTTP reasoning daemon over the shared session cache",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = kernel-assigned; the daemon "
        "announces the bound port on stderr and in --ready-file)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact store backing the memory tier "
        "(default: the REPRO_CACHE_DIR env var, else memory-only)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and REPRO_CACHE_DIR; memory tier only",
    )
    serve.add_argument(
        "--memory-entries",
        type=int,
        default=64,
        metavar="N",
        help="memory-tier LRU capacity in schema entries (default: 64); "
        "evicted entries re-warm from the store on next touch",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="concurrent reasoning requests before answering 503 + "
        "Retry-After (default: 8)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="reasoning worker threads (default: --max-inflight)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall-clock budget; requests degrade "
        "to UNKNOWN records at the deadline (requests may override "
        "via their own budget caps)",
    )
    add_backend(serve)
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON access-log line per request on stderr",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write a JSON readiness file (base_url, port, pid) once "
        "the socket is bound",
    )
    serve.set_defaults(run=_cmd_serve)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain the persistent artifact store",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="store root (default: the REPRO_CACHE_DIR env var)",
        )
        sub.add_argument(
            "--json", action="store_true", help="emit JSON for tooling"
        )
        sub.set_defaults(run=_cmd_cache)

    cache_stats = cache_sub.add_parser(
        "stats", help="on-disk entry/byte/quarantine counts"
    )
    add_cache_common(cache_stats)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="checksum every entry, quarantining damage (exit 1 if any)",
    )
    add_cache_common(cache_verify)
    cache_clear = cache_sub.add_parser(
        "clear", help="remove all entries (and stale locks)"
    )
    cache_clear.add_argument(
        "--include-quarantine",
        action="store_true",
        help="also empty the quarantine directory",
    )
    add_cache_common(cache_clear)
    cache_quarantine = cache_sub.add_parser(
        "quarantine", help="quarantine maintenance"
    )
    cache_quarantine.add_argument(
        "action", choices=["list"], help="what to do with the quarantine"
    )
    add_cache_common(cache_quarantine)

    imp = subparsers.add_parser("implies", help="decide S |= K")
    imp.add_argument("schema")
    imp.add_argument("statement")
    imp.add_argument(
        "--countermodel",
        action="store_true",
        help="print the counter-model when not implied",
    )
    add_engine(imp)
    add_backend(imp)
    add_budget(imp)
    add_jobs(imp)
    imp.set_defaults(run=_cmd_implies)

    model = subparsers.add_parser("model", help="construct a witness state")
    model.add_argument("schema")
    model.add_argument("--class", dest="cls", required=True)
    add_engine(model)
    add_backend(model)
    add_budget(model)
    model.set_defaults(run=_cmd_model)

    explain = subparsers.add_parser(
        "explain", help="verified proof of unsatisfiability"
    )
    explain.add_argument("schema")
    explain.add_argument("--class", dest="cls", required=True)
    explain.add_argument(
        "--nogoods",
        action="store_true",
        help="append the Farkas nogoods the pruned zero-set search "
        "learns while re-deciding the class",
    )
    add_backend(explain)
    add_budget(explain)
    explain.set_defaults(run=_cmd_explain)

    debug = subparsers.add_parser(
        "debug", help="minimal unsatisfiable constraint set"
    )
    debug.add_argument("schema")
    debug.add_argument("--class", dest="cls", required=True)
    debug.add_argument(
        "--algorithm",
        choices=["deletion", "quickxplain"],
        default="quickxplain",
    )
    add_backend(debug)
    add_budget(debug)
    debug.set_defaults(run=_cmd_debug)

    render = subparsers.add_parser(
        "render", help="print paper-style listings"
    )
    render.add_argument("schema")
    render.add_argument(
        "--what",
        choices=["schema", "expansion", "system"],
        default="schema",
    )
    render.add_argument(
        "--mode", choices=["pruned", "literal"], default="literal"
    )
    add_budget(render)
    render.set_defaults(run=_cmd_render)

    fmt = subparsers.add_parser("fmt", help="canonical formatting")
    fmt.add_argument("schema")
    fmt.add_argument("--write", action="store_true", help="rewrite in place")
    fmt.set_defaults(run=_cmd_fmt)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # ``check``/``implies`` thread the budget through explicit
        # ``budget=`` parameters (for degraded UNKNOWN verdicts); the
        # remaining commands are governed ambiently and surface
        # exhaustion as exit code 3 below.
        with ExitStack() as stack:
            backend = getattr(args, "backend", None)
            if backend is not None:
                stack.enter_context(pin_backend(backend))
            stack.enter_context(activate(_budget_from(args)))
            return args.run(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BudgetExceededError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except LimitExceededError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
