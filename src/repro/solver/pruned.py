"""Orbit symmetry reduction and Farkas-nogood pruning for the zero-set
search (the ``pruned`` backend).

The naive Theorem-3.4 engine (:class:`repro.solver.registry.NaiveBackend`)
walks every subset ``Z`` of the class unknowns and solves one exact LP
per subset — ``2^|V_C|`` LPs in the worst case.  Component decomposition
(PR 8) caps the blow-up at the largest island but does nothing *within*
a dense component.  This module prunes inside one component with two
compounding, *sound* levers, while keeping the output byte-identical to
the naive serial walk:

**Orbit reduction.**  Schemas routinely contain interchangeable classes
(k sibling classes with identical cardinality profiles under one root).
Interchangeability shows up in ``Ψ_S`` as an automorphism: a permutation
``σ`` of the unknowns that fixes the class-unknown set and the target
set setwise, maps the dependency relation onto itself, and maps the row
multiset onto itself (labels excluded — provenance does not affect
feasibility).  Such a ``σ`` carries ``Ψ_Z`` onto ``Ψ_{σZ}`` row for row,
so feasibility is orbit-invariant.  Candidate automorphisms are
discovered by Weisfeiler–Leman colour refinement over the columns of
``Ψ_S`` plus individualisation–refinement on same-colour class-unknown
pairs, then **verified exactly** (bijection, setwise class/target
preservation, dependency preservation, row-multiset invariance); a
candidate that fails verification is discarded, so a missed symmetry
costs pruning power, never correctness.  The verified generators are
closed under composition up to a size cap (on overflow the generator
set itself is used — still sound).  Enumeration then visits subsets in
the exact naive serial order but only *canonical* ones: ``Z`` is
canonical iff no known automorphism maps it to a serially-earlier
subset.  Because any feasible ``Z`` has a canonical, serially-no-later
image in its orbit and the serial-first feasible subset is itself
canonical (an earlier image would contradict first-ness), the first
canonical feasible candidate **is** the serial-first feasible candidate
— the same ``Ψ_Z`` is solved, so the witness is byte-identical with no
remapping (DESIGN §15).

**Farkas nogoods.**  Each infeasible candidate yields a dual
infeasibility certificate
(:func:`repro.solver.certificates.farkas_certificate`) over the
sharpened ``Ψ_Z``.  The certificate is generalised to the minimal
support it actually uses: the ``Z-zero``/``Z-positive``/``Z-dep`` rows
it weights identify a set ``zeros`` that must be pinned to 0 and a set
``positives`` that must be positive for the same weighted combination
to apply (for a weighted ``Z-dep`` row the serially-earliest zeroed
dependency is recorded, which keeps that row present in any matching
candidate).  Any later ``Z'`` with ``zeros ⊆ Z'`` and
``positives ∩ Z' = ∅`` contains every row the certificate weights, so
the identical combination proves ``Ψ_{Z'}`` infeasible and the LP is
skipped.  Nogoods only ever match infeasible candidates, so first-hit
semantics and the witness are untouched.  The store saturates as the
walk proceeds — each learned fact prunes all later cousins — and
subsumed (strictly less general) nogoods are dropped on install.

Counters flow through the ambient sink of :mod:`repro.solver.stats`:
``zero_sets_enumerated`` (LP-tested candidates), ``pruned_by_orbit``,
``pruned_by_nogood``, and ``orbits_found`` (non-trivial orbits of the
verified symmetry group acting on the class unknowns).  Budgets are
charged per *tested* representative — skipped cousins cost nothing.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations

from repro.errors import LimitExceededError, SolverError
from repro.runtime.budget import current_budget
from repro.solver.certificates import FarkasCertificate, farkas_certificate
from repro.solver.core import InternedSystem, sharpened_rows
from repro.solver.linear import LinearSystem
from repro.solver.registry import (
    DEFAULT_BACKEND,
    DEFAULT_NAIVE_LIMIT,
    AcceptabilityProblem,
    BackendCapabilities,
    SolverBackend,
    chain_positive_solution,
    get_backend,
    register_backend,
    zero_set_rows,
)
from repro.solver.stats import bump_search_stat

#: Closure size cap: |S_7| = 5040.  Beyond this the verified generators
#: are used unclosed — less pruning, identical answers.
GROUP_CLOSURE_CAP = 5040

#: Cap on individualisation–refinement verification attempts, bounding
#: the polynomial preprocessing on pathologically colour-uniform inputs.
MAX_PAIR_ATTEMPTS = 64


# ---------------------------------------------------------------------------
# Automorphism discovery: WL colour refinement + exact verification
# ---------------------------------------------------------------------------


class _Profile:
    """The refinement view of one acceptability problem.

    Columns are the unknowns of ``Ψ_S``; the structure refined over is
    the row multiset (labels excluded) plus the dependency bipartite
    graph, seeded with the class-unknown / target indicator colours.
    """

    def __init__(self, problem: AcceptabilityProblem) -> None:
        table = problem.system.table
        self.size = problem.system.num_variables
        self.rows = problem.system.rows
        self.class_cols = tuple(table.index(c) for c in problem.class_unknowns)
        class_set = set(self.class_cols)
        target_cols = {
            table.index(c) for c in problem.targets if c in table
        }
        self.dep_of = {
            table.index(rel): tuple(table.index(c) for c in deps)
            for rel, deps in problem.dependencies.items()
        }
        self.initial = [
            f"{int(col in class_set)}:{int(col in target_cols)}"
            for col in range(self.size)
        ]

    def refine(self, seeds: Mapping[int, str] | None = None) -> list[int]:
        """Stable colouring of the columns, optionally individualised.

        Colour identifiers are assigned by sorted signature, so two
        refinement runs over signature-isomorphic seedings produce
        directly comparable colour ids.
        """
        keys = list(self.initial)
        if seeds:
            for col, tag in seeds.items():
                keys[col] = f"{keys[col]}|{tag}"
        colors = _canonical_colors(keys)
        budget = current_budget()
        while True:
            # The partition strictly refines each round, so this runs at
            # most `size` times; the check keeps wall-clock caps honest.
            if budget is not None:
                budget.check()
            sigs: list[list[object]] = [[] for _ in range(self.size)]
            for row in self.rows:
                items = tuple(row.items())
                row_sig = (
                    row.relation.value,
                    str(row.const),
                    tuple(
                        sorted((str(coeff), colors[col]) for col, coeff in items)
                    ),
                )
                for col, coeff in items:
                    sigs[col].append(("r", str(coeff), row_sig))
            for rel_col, dep_cols in self.dep_of.items():
                sigs[rel_col].append(
                    ("d", tuple(sorted(colors[col] for col in dep_cols)))
                )
                for col in dep_cols:
                    sigs[col].append(("D", colors[rel_col]))
            refined = _canonical_colors(
                [
                    repr((colors[col], sorted(sigs[col], key=repr)))
                    for col in range(self.size)
                ]
            )
            if len(set(refined)) == len(set(colors)):
                return refined
            colors = refined


def _canonical_colors(keys: Sequence[str]) -> list[int]:
    """Dense colour ids, assigned in sorted-key order (run-stable)."""
    mapping = {key: index for index, key in enumerate(sorted(set(keys)))}
    return [mapping[key] for key in keys]


def _match_colorings(ca: Sequence[int], cb: Sequence[int]) -> list[int] | None:
    """The colour-class-wise bijection taking colouring ``ca`` to ``cb``.

    Members of each colour class are paired in ascending column order —
    a guess when classes stay non-singleton, which exact verification
    accepts or rejects.
    """
    groups_a: dict[int, list[int]] = defaultdict(list)
    groups_b: dict[int, list[int]] = defaultdict(list)
    for col, color in enumerate(ca):
        groups_a[color].append(col)
    for col, color in enumerate(cb):
        groups_b[color].append(col)
    if {c: len(m) for c, m in groups_a.items()} != {
        c: len(m) for c, m in groups_b.items()
    }:
        return None
    sigma = [0] * len(ca)
    for color in sorted(groups_a):
        for source, image in zip(groups_a[color], groups_b[color]):
            sigma[source] = image
    return sigma


def _verify_automorphism(
    problem: AcceptabilityProblem, profile: _Profile, sigma: Sequence[int]
) -> bool:
    """Exact check that ``sigma`` is an automorphism of the problem.

    Everything the decision depends on must be invariant: the
    class-unknown set and the target set (setwise), the dependency
    relation, and the row multiset (labels excluded).  Rejection is
    always safe — an unverified candidate is simply not used.
    """
    size = profile.size
    if sorted(sigma) != list(range(size)):
        return False
    class_set = set(profile.class_cols)
    if {sigma[col] for col in class_set} != class_set:
        return False
    table = problem.system.table
    target_cols = {table.index(c) for c in problem.targets if c in table}
    if {sigma[col] for col in target_cols} != target_cols:
        return False
    for rel_col, dep_cols in profile.dep_of.items():
        image_deps = profile.dep_of.get(sigma[rel_col])
        if image_deps is None:
            return False
        if {sigma[col] for col in dep_cols} != set(image_deps):
            return False

    def row_key(row, perm=None):
        items = (
            row.items()
            if perm is None
            else ((perm[col], coeff) for col, coeff in row.items())
        )
        return (row.relation, row.const, tuple(sorted(items)))

    return Counter(row_key(row) for row in profile.rows) == Counter(
        row_key(row, sigma) for row in profile.rows
    )


def orbit_permutations(
    problem: AcceptabilityProblem,
) -> tuple[tuple[tuple[int, ...], ...], int]:
    """Verified symmetry permutations over class-unknown *positions*.

    Returns ``(perms, orbits_found)``: permutations of the serial
    enumeration positions (restrictions of verified column
    automorphisms, closed under composition up to
    :data:`GROUP_CLOSURE_CAP`), and the number of non-trivial orbits of
    their action on the class unknowns.
    """
    names = problem.class_unknowns
    if len(names) < 2:
        return (), 0
    profile = _Profile(problem)
    base = profile.refine()
    by_color: dict[int, list[int]] = defaultdict(list)
    for col in profile.class_cols:
        by_color[base[col]].append(col)
    pairs = [
        (members[i], members[j])
        for _, members in sorted(by_color.items())
        if len(members) >= 2
        for i in range(len(members))
        for j in range(i + 1, len(members))
    ]
    if not pairs:
        return (), 0

    parent = {col: col for col in profile.class_cols}

    def find(col: int) -> int:
        while parent[col] != col:
            parent[col] = parent[parent[col]]
            col = parent[col]
        return col

    generators: list[list[int]] = []
    refinements: dict[int, list[int]] = {}
    for u, v in pairs[:MAX_PAIR_ATTEMPTS]:
        if find(u) == find(v):
            continue  # already connected by a verified generator
        if u not in refinements:
            refinements[u] = profile.refine({u: "pivot"})
        if v not in refinements:
            refinements[v] = profile.refine({v: "pivot"})
        sigma = _match_colorings(refinements[u], refinements[v])
        if sigma is None or not _verify_automorphism(problem, profile, sigma):
            continue
        generators.append(sigma)
        for col in profile.class_cols:
            image = sigma[col]
            root_a, root_b = find(col), find(image)
            if root_a != root_b:
                parent[root_b] = root_a
    if not generators:
        return (), 0
    orbit_sizes = Counter(find(col) for col in profile.class_cols)
    orbits_found = sum(1 for count in orbit_sizes.values() if count >= 2)

    # Restrict column automorphisms to serial positions of the class
    # unknowns (every generator fixes that set setwise, so the
    # restriction is a permutation of positions).
    position = {col: index for index, col in enumerate(profile.class_cols)}
    restricted = {
        tuple(position[sigma[col]] for col in profile.class_cols)
        for sigma in generators
    }
    return _close_permutations(restricted, len(names)), orbits_found


def _close_permutations(
    generators: set[tuple[int, ...]], size: int
) -> tuple[tuple[int, ...], ...]:
    """Composition closure of ``generators``, capped for safety.

    On overflow the (deduplicated) generators are returned unclosed —
    the canonicity filter stays sound with any subset of the true
    symmetry group, it just prunes less.
    """
    identity = tuple(range(size))
    gens = sorted(g for g in generators if g != identity)
    if not gens:
        return ()
    group: set[tuple[int, ...]] = {identity, *gens}
    frontier: list[tuple[int, ...]] = [*gens]
    while frontier:
        next_frontier: list[tuple[int, ...]] = []
        for left in frontier:
            for right in gens:
                composed = tuple(left[right[index]] for index in identity)
                if composed not in group:
                    group.add(composed)
                    if len(group) > GROUP_CLOSURE_CAP:
                        return tuple(gens)
                    next_frontier.append(composed)
        frontier = next_frontier
    group.discard(identity)
    return tuple(sorted(group))


def is_canonical(
    combo: tuple[int, ...], perms: Sequence[tuple[int, ...]]
) -> bool:
    """Whether ``combo`` (ascending positions) is its orbit's serial
    minimum under ``perms``.

    Serial order within a size class is lexicographic on the ascending
    position tuple (the :func:`itertools.combinations` order), so the
    comparison is a plain tuple comparison of sorted images.
    """
    for perm in perms:
        if tuple(sorted(perm[index] for index in combo)) < combo:
            return False
    return True


# ---------------------------------------------------------------------------
# Farkas nogoods
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Nogood:
    """A generalised infeasibility fact learned from one failed ``Ψ_Z``.

    Any candidate ``Z'`` with ``zeros ⊆ Z'`` and
    ``positives ∩ Z' = ∅`` contains every row ``certificate`` weights
    (with identical content), so the same weighted combination proves
    ``Ψ_{Z'}`` infeasible.  ``source`` is the zero-set the certificate
    was extracted from, kept so the certificate can be re-verified
    against its originating (sharpened) system.
    """

    zeros: frozenset[str]
    positives: frozenset[str]
    source: tuple[str, ...]
    certificate: FarkasCertificate

    def matches(self, zero_set: frozenset[str]) -> bool:
        return self.zeros <= zero_set and not (self.positives & zero_set)


class NogoodStore:
    """Saturating worklist of learned nogoods.

    Matching scans in learn order (deterministic); installing drops
    strictly-less-general entries.  Hit counts and first victims are
    tracked per nogood for ``repro explain --nogoods``.
    """

    def __init__(self) -> None:
        self.nogoods: list[Nogood] = []
        self.hits: list[int] = []
        self.first_victims: list[tuple[str, ...] | None] = []

    def match(self, zero_set: frozenset[str]) -> int | None:
        """Index of the first nogood covering ``zero_set``, if any."""
        for index, nogood in enumerate(self.nogoods):
            if nogood.matches(zero_set):
                return index
        return None

    def record_hit(self, index: int, zero_tuple: tuple[str, ...]) -> None:
        self.hits[index] += 1
        if self.first_victims[index] is None:
            self.first_victims[index] = zero_tuple

    def install(self, nogood: Nogood) -> bool:
        """Add ``nogood`` unless an at-least-as-general one is present;
        drop entries the new fact subsumes.  Returns whether it was kept.
        """
        for existing in self.nogoods:
            if (
                existing.zeros <= nogood.zeros
                and existing.positives <= nogood.positives
            ):
                return False
        kept = [
            index
            for index, existing in enumerate(self.nogoods)
            if not (
                nogood.zeros <= existing.zeros
                and nogood.positives <= existing.positives
            )
        ]
        self.nogoods = [self.nogoods[index] for index in kept]
        self.hits = [self.hits[index] for index in kept]
        self.first_victims = [self.first_victims[index] for index in kept]
        self.nogoods.append(nogood)
        self.hits.append(0)
        self.first_victims.append(None)
        return True

    def install_all(self, nogoods: Sequence[Nogood]) -> None:
        for nogood in nogoods:
            self.install(nogood)


def candidate_system(
    problem: AcceptabilityProblem, zero_set: frozenset[str]
) -> InternedSystem:
    """``Ψ_Z`` — the base system plus the Theorem-3.4 zero-set rows."""
    return problem.system.with_rows(zero_set_rows(problem, zero_set))


def nogood_source_system(
    problem: AcceptabilityProblem, nogood: Nogood
) -> LinearSystem:
    """The sharpened originating system of ``nogood``, rebuilt.

    Row order matches the extraction exactly, so the certificate's
    constraint indices (and :meth:`FarkasCertificate.verify` /
    :meth:`~FarkasCertificate.pretty`) line up.
    """
    return _sharpened_linear(candidate_system(problem, frozenset(nogood.source)))


def _sharpened_linear(candidate: InternedSystem) -> LinearSystem:
    sharp = InternedSystem(candidate.table, tuple(sharpened_rows(candidate)))
    return sharp.to_linear()


_ZERO_PREFIX = "Z-zero:"
_POSITIVE_PREFIX = "Z-positive:"
_DEP_PREFIX = "Z-dep:"


def learn_nogood(
    problem: AcceptabilityProblem,
    zero_set: frozenset[str],
    candidate: InternedSystem,
) -> Nogood | None:
    """Extract and generalise a nogood from an infeasible ``Ψ_Z``.

    The candidate is sharpened (strict rows become their integer-cone
    equivalents, exactly as the LP probes do), a Farkas certificate is
    extracted, and only the zero-set rows it actually weights survive
    into the nogood.  Extraction faults (or a feasible sharpening, which
    cannot happen for a candidate the chain called infeasible) simply
    skip learning — pruning less is always sound.
    """
    linear = _sharpened_linear(candidate)
    try:
        certificate = farkas_certificate(linear)
    except SolverError:
        return None
    if certificate is None:
        return None
    zeros: set[str] = set()
    positives: set[str] = set()
    constraints = linear.constraints
    for index, _weight in certificate.weights:
        label = constraints[index].label
        if not label:
            continue
        if label.startswith(_ZERO_PREFIX):
            zeros.add(label[len(_ZERO_PREFIX):])
        elif label.startswith(_POSITIVE_PREFIX):
            positives.add(label[len(_POSITIVE_PREFIX):])
        elif label.startswith(_DEP_PREFIX):
            rel = label[len(_DEP_PREFIX):]
            deps = problem.dependencies.get(rel, ())
            for name in problem.class_unknowns:
                if name in zero_set and name in deps:
                    zeros.add(name)  # keeps this Z-dep row in any match
                    break
    return Nogood(
        zeros=frozenset(zeros),
        positives=frozenset(positives),
        source=tuple(sorted(zero_set)),
        certificate=certificate,
    )


# ---------------------------------------------------------------------------
# The pruned walk
# ---------------------------------------------------------------------------


def pruned_zero_set_search(
    problem: AcceptabilityProblem,
    chain: Sequence[SolverBackend] | None = None,
    store: NogoodStore | None = None,
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """The Theorem-3.4 walk with orbit and nogood pruning (serial).

    Same contract and byte-identical output as the naive walk of
    :class:`~repro.solver.registry.NaiveBackend` — see the module
    docstring for why pruning cannot change the first hit.  ``store``
    may be supplied to observe the learned nogoods (``repro explain``).
    """
    names = list(problem.class_unknowns)
    probes = chain or (get_backend(DEFAULT_BACKEND),)
    if store is None:
        store = NogoodStore()
    perms, orbits_found = orbit_permutations(problem)
    bump_search_stat("orbits_found", orbits_found)
    universe = set(names)
    budget = current_budget()
    for size in range(len(names) + 1):
        for combo in combinations(range(len(names)), size):
            if budget is not None:
                budget.check()
            zero_tuple = tuple(names[index] for index in combo)
            zero_set = frozenset(zero_tuple)
            if problem.targets <= zero_set:
                continue  # the required positivity would be impossible
            if perms and not is_canonical(combo, perms):
                bump_search_stat("pruned_by_orbit")
                continue
            matched = store.match(zero_set)
            if matched is not None:
                store.record_hit(matched, zero_tuple)
                bump_search_stat("pruned_by_nogood")
                continue
            bump_search_stat("zero_sets_enumerated")
            candidate = candidate_system(problem, zero_set)
            witness = chain_positive_solution(candidate, probes)
            if witness.feasible:
                assert witness.integral is not None
                support = frozenset(
                    name
                    for name, value in witness.integral.items()
                    if value > 0
                )
                assert universe - zero_set <= support
                return True, witness.integral, support
            learned = learn_nogood(problem, zero_set, candidate)
            if learned is not None:
                store.install(learned)
    return False, None, frozenset()


class PrunedBackend(SolverBackend):
    """The pruned Theorem-3.4 decision procedure, registry-selectable.

    Exactly the :class:`~repro.solver.registry.NaiveBackend` contract —
    a decision procedure gated by ``naive_limit`` that refuses the LP
    primitives so chains skip over it — with the orbit/nogood walk
    underneath.  ``jobs > 1`` fans the canonical representatives out
    through :func:`repro.parallel.fanout.parallel_pruned_zero_set_search`.
    """

    name = "pruned"
    capabilities = BackendCapabilities(exponential=True)

    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        raise SolverError(
            "the pruned backend provides no LP primitives; use "
            "decide_acceptable"
        )

    def positive_solution(self, system: InternedSystem):
        raise SolverError(
            "the pruned backend provides no LP primitives; use "
            "decide_acceptable"
        )

    def decide_acceptable(
        self,
        problem: AcceptabilityProblem,
        chain: Sequence[SolverBackend] | None = None,
        naive_limit: int = DEFAULT_NAIVE_LIMIT,
        jobs: int = 1,
    ) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
        class_unknowns = problem.class_unknowns
        if len(class_unknowns) > naive_limit:
            raise LimitExceededError(
                f"the pruned (Theorem 3.4) engine still visits the "
                f"2^{len(class_unknowns)} zero-set lattice, above the "
                f"configured naive_limit of {naive_limit}; use "
                "engine='fixpoint' for schemas of this size or raise the "
                "limit"
            )
        probes = chain or (get_backend(DEFAULT_BACKEND),)
        if jobs > 1:
            # Deferred import: repro.parallel sits above the solver layer.
            from repro.parallel.fanout import parallel_pruned_zero_set_search

            return parallel_pruned_zero_set_search(problem, probes, jobs)
        return pruned_zero_set_search(problem, probes)


# ---------------------------------------------------------------------------
# Rendering (repro explain --nogoods)
# ---------------------------------------------------------------------------


def render_nogoods(problem: AcceptabilityProblem, store: NogoodStore) -> str:
    """Human-readable account of the learned nogoods, in learn order.

    Each entry names the generalised support, what it eliminated, and
    the full Farkas combination via
    :meth:`~repro.solver.certificates.FarkasCertificate.pretty` against
    the rebuilt source system.
    """
    if not store.nogoods:
        return "no nogoods learned (no infeasible candidate generalised)"
    def braced(names) -> str:
        return "{" + ", ".join(sorted(names)) + "}" if names else "{}"

    blocks: list[str] = []
    for index, nogood in enumerate(store.nogoods):
        victim = store.first_victims[index]
        eliminated = (
            f"eliminated {store.hits[index]} candidate zero-set(s), "
            f"first {braced(victim)}"
            if victim is not None
            else "eliminated 0 candidate zero-set(s)"
        )
        header = (
            f"nogood {index + 1}: Z must contain {braced(nogood.zeros)} "
            f"and avoid {braced(nogood.positives)}\n"
            f"  learned from Z = {braced(nogood.source)}; {eliminated}\n"
            f"  Farkas combination over the sharpened source system:"
        )
        pretty = nogood.certificate.pretty(nogood_source_system(problem, nogood))
        body = "\n".join(f"    {line}" for line in pretty.splitlines())
        blocks.append(f"{header}\n{body}")
    return "\n".join(blocks)


register_backend(PrunedBackend())

__all__ = [
    "GROUP_CLOSURE_CAP",
    "Nogood",
    "NogoodStore",
    "PrunedBackend",
    "candidate_system",
    "is_canonical",
    "learn_nogood",
    "nogood_source_system",
    "orbit_permutations",
    "pruned_zero_set_search",
    "render_nogoods",
]
