"""Farkas certificates: independently checkable proofs of infeasibility.

When the reasoner declares a schema class unsatisfiable, the verdict
rests on the infeasibility of a linear system — which, unlike a
feasibility verdict, normally has no witness a user could inspect.
Farkas' lemma closes that gap: a system over non-negative unknowns is
infeasible **iff** there is a weighted combination of its constraints

    S(x)  =  Σ  uᵢ · exprᵢ(x)        (uᵢ ≥ 0 for ``exprᵢ ≤ 0`` rows,
                                      uᵢ ≤ 0 for ``exprᵢ ≥ 0`` rows,
                                      uᵢ free for equalities)

whose variable coefficients are all non-negative and whose constant
term is strictly positive: every feasible point would need ``S ≤ 0``,
but ``S > 0`` holds for all ``x ≥ 0``.

:func:`farkas_certificate` extracts the weights from the phase-1
optimum of the exact simplex (the duals of the artificial columns);
:meth:`FarkasCertificate.verify` re-checks the proof with nothing but
exact arithmetic — no trust in the solver required.  The schema layer
(:mod:`repro.cr.explain`) attaches these proofs to unsatisfiability
reports, fulfilling the paper's "support the designer in schema
debugging" agenda with machine-checkable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.runtime.budget import current_budget
from repro.solver.linear import LinearSystem, LinExpr, Relation
from repro.solver.simplex import _Tableau

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class FarkasCertificate:
    """Weights proving a :class:`LinearSystem` infeasible.

    ``weights[i]`` is the multiplier of ``system.constraints[i]``
    (absent indices weigh zero).  The certificate is self-contained:
    :meth:`verify` recomputes the combination from scratch.
    """

    weights: tuple[tuple[int, Fraction], ...]

    def combination(self, system: LinearSystem) -> LinExpr:
        """``Σ uᵢ · exprᵢ`` over the weighted constraints."""
        total = LinExpr()
        for index, weight in self.weights:
            total = total + weight * system.constraints[index].expr
        return total

    def verify(self, system: LinearSystem) -> bool:
        """Check the proof: sign conditions, coefficients, constant.

        Sound and complete relative to Farkas' lemma for systems over
        non-negative variables; runs in exact arithmetic.
        """
        for index, weight in self.weights:
            if index < 0 or index >= len(system.constraints):
                return False
            relation = system.constraints[index].relation
            if relation is Relation.LE and weight < 0:
                return False
            if relation is Relation.GE and weight > 0:
                return False
            if relation.is_strict:
                return False
        combined = self.combination(system)
        if any(
            coeff < 0 for coeff in combined.coefficients.values()
        ):
            return False
        return combined.constant_term > 0

    def pretty(self, system: LinearSystem) -> str:
        """Human-readable proof listing, one weighted constraint per line."""
        lines = ["infeasibility proof (Farkas combination):"]
        for index, weight in self.weights:
            constraint = system.constraints[index]
            label = f" [{constraint.label}]" if constraint.label else ""
            lines.append(
                f"  {weight} * ({constraint.pretty()}){label}"
            )
        combined = self.combination(system)
        lines.append(
            f"  => {combined.pretty()} <= 0 must hold, but it is >= "
            f"{combined.constant_term} > 0 for all non-negative unknowns"
        )
        return "\n".join(lines)


def farkas_certificate(system: LinearSystem) -> FarkasCertificate | None:
    """A verified infeasibility proof, or ``None`` if the system is feasible.

    The system must be non-strict (sharpen strict homogeneous
    constraints first — see :mod:`repro.solver.homogeneous`); variables
    are implicitly non-negative, matching
    :func:`repro.solver.simplex.solve_lp`.

    The extraction runs its own phase-1 simplex *without* presolve so
    that tableau rows map one-to-one onto ``system.constraints``; the
    resulting certificate is verified before being returned, so a
    caller can trust it unconditionally.
    """
    for constraint in system.constraints:
        if constraint.relation.is_strict:
            raise SolverError(
                "farkas_certificate needs a non-strict system; sharpen "
                "strict homogeneous constraints first"
            )
    budget = current_budget()
    if budget is not None:
        # One phase-1 simplex run; charging it keeps certificate
        # extraction (explain, debug) under the same account as the
        # decision procedures.
        budget.charge_solver_call()

    variables = list(system.variables)
    column_of = {name: j for j, name in enumerate(variables)}
    num_structural = len(variables)

    # Normalised rows: coeffs . x (REL') rhs with rhs >= 0; remember the
    # sign flip to translate dual values back to the original statement.
    normalised: list[tuple[list[Fraction], Relation, Fraction, int]] = []
    for constraint in system.constraints:
        coeffs = [_ZERO] * num_structural
        for name, value in constraint.expr.coefficients.items():
            coeffs[column_of[name]] += value
        rhs = -constraint.expr.constant_term
        relation = constraint.relation
        sign = 1
        if rhs < 0:
            coeffs = [-value for value in coeffs]
            rhs = -rhs
            relation = relation.flipped()
            sign = -1
        normalised.append((coeffs, relation, rhs, sign))

    num_slacks = sum(
        1 for _, relation, _, _ in normalised if relation is not Relation.EQ
    )
    num_rows = len(normalised)
    total_columns = num_structural + num_slacks + num_rows

    rows: list[list[Fraction]] = []
    basis: list[int] = []
    artificial_of_row: list[int] = []
    slack_cursor = num_structural
    artificial_cursor = num_structural + num_slacks
    for coeffs, relation, rhs, _sign in normalised:
        row = list(coeffs) + [_ZERO] * (total_columns - num_structural) + [rhs]
        if relation is Relation.LE:
            row[slack_cursor] = _ONE
            slack_cursor += 1
        elif relation is Relation.GE:
            row[slack_cursor] = -_ONE
            slack_cursor += 1
        # Every row gets an artificial so the duals can be read off
        # uniformly: y_i = 1 - reduced_cost(artificial_i).
        row[artificial_cursor] = _ONE
        basis.append(artificial_cursor)
        artificial_of_row.append(artificial_cursor)
        artificial_cursor += 1
        rows.append(row)

    tableau = _Tableau(rows, basis, total_columns)
    phase1_cost = [_ZERO] * total_columns
    for column in artificial_of_row:
        phase1_cost[column] = _ONE
    status, value = tableau.minimize(phase1_cost)
    if value <= 0:
        return None  # feasible: no certificate exists
    assert status.name == "OPTIMAL"

    reduced = tableau.last_reduced
    weights: list[tuple[int, Fraction]] = []
    for index, (artificial, (_, _, _, sign)) in enumerate(
        zip(artificial_of_row, normalised)
    ):
        dual = _ONE - reduced[artificial]
        weight = -dual * sign
        if weight != 0:
            weights.append((index, weight))

    certificate = FarkasCertificate(tuple(weights))
    if not certificate.verify(system):  # pragma: no cover - soundness net
        raise SolverError(
            "internal error: extracted Farkas certificate failed verification"
        )
    return certificate


__all__ = ["FarkasCertificate", "farkas_certificate"]
