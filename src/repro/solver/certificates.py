"""Farkas certificates: independently checkable proofs of infeasibility.

When the reasoner declares a schema class unsatisfiable, the verdict
rests on the infeasibility of a linear system — which, unlike a
feasibility verdict, normally has no witness a user could inspect.
Farkas' lemma closes that gap: a system over non-negative unknowns is
infeasible **iff** there is a weighted combination of its constraints

    S(x)  =  Σ  uᵢ · exprᵢ(x)        (uᵢ ≥ 0 for ``exprᵢ ≤ 0`` rows,
                                      uᵢ ≤ 0 for ``exprᵢ ≥ 0`` rows,
                                      uᵢ free for equalities)

whose variable coefficients are all non-negative and whose constant
term is strictly positive: every feasible point would need ``S ≤ 0``,
but ``S > 0`` holds for all ``x ≥ 0``.

:func:`farkas_certificate` extracts the weights from the phase-1
optimum of the exact simplex (the duals of the artificial columns);
:meth:`FarkasCertificate.verify` re-checks the proof with nothing but
exact arithmetic — no trust in the solver required.  The schema layer
(:mod:`repro.cr.explain`) attaches these proofs to unsatisfiability
reports, fulfilling the paper's "support the designer in schema
debugging" agenda with machine-checkable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.runtime.budget import current_budget
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation
from repro.solver.simplex import _Tableau

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class FarkasCertificate:
    """Weights proving a :class:`LinearSystem` infeasible.

    ``weights[i]`` is the multiplier of ``system.constraints[i]``
    (absent indices weigh zero).  The certificate is self-contained:
    :meth:`verify` recomputes the combination from scratch.
    """

    weights: tuple[tuple[int, Fraction], ...]

    def combination(self, system: LinearSystem) -> LinExpr:
        """``Σ uᵢ · exprᵢ`` over the weighted constraints."""
        total = LinExpr()
        for index, weight in self.weights:
            total = total + weight * system.constraints[index].expr
        return total

    def verify(self, system: LinearSystem) -> bool:
        """Check the proof: sign conditions, coefficients, constant.

        Sound and complete relative to Farkas' lemma for systems over
        non-negative variables; runs in exact arithmetic.
        """
        for index, weight in self.weights:
            if index < 0 or index >= len(system.constraints):
                return False
            relation = system.constraints[index].relation
            if relation is Relation.LE and weight < 0:
                return False
            if relation is Relation.GE and weight > 0:
                return False
            if relation.is_strict:
                return False
        combined = self.combination(system)
        if any(
            coeff < 0 for coeff in combined.coefficients.values()
        ):
            return False
        return combined.constant_term > 0

    def pretty(self, system: LinearSystem) -> str:
        """Human-readable proof listing, one weighted constraint per line."""
        lines = ["infeasibility proof (Farkas combination):"]
        for index, weight in self.weights:
            constraint = system.constraints[index]
            label = f" [{constraint.label}]" if constraint.label else ""
            lines.append(
                f"  {weight} * ({constraint.pretty()}){label}"
            )
        combined = self.combination(system)
        lines.append(
            f"  => {combined.pretty()} <= 0 must hold, but it is >= "
            f"{combined.constant_term} > 0 for all non-negative unknowns"
        )
        return "\n".join(lines)


def _reduce_for_certificate(
    system: LinearSystem,
) -> tuple[
    list[tuple[int, "Constraint"]],
    dict[str, tuple[int, Fraction, Relation]],
    int | None,
]:
    """Presolve that keeps certificates liftable to the full system.

    Two reductions, iterated to a fixpoint over the implicitly
    non-negative variables:

    * **pinning** — a row forcing one variable to zero (``c·x = 0``, or
      ``c·x ≤ 0`` with ``c > 0``, or the ``≥`` mirror) removes the
      variable everywhere; the row index, coefficient, and relation are
      remembered so the lift can re-weight it;
    * **triviality** — a row non-negativity alone guarantees weighs
      zero in any certificate and is dropped outright.

    Returns the surviving ``(original_index, reduced_constraint)``
    pairs, the pinning map, and — when substitution exposes a row whose
    remaining constant already violates its relation — that row's
    index, which by itself (plus pinning patches) proves infeasibility.
    """
    remaining = list(enumerate(system.constraints))
    pinning: dict[str, tuple[int, Fraction, Relation]] = {}
    changed = True
    while changed:
        changed = False
        survivors: list[tuple[int, Constraint]] = []
        for index, constraint in remaining:
            coeffs = {
                name: value
                for name, value in constraint.expr.coefficients.items()
                if name not in pinning and value != 0
            }
            const = constraint.expr.constant_term
            relation = constraint.relation
            if not coeffs:
                if (
                    (relation is Relation.EQ and const != 0)
                    or (relation is Relation.LE and const > 0)
                    or (relation is Relation.GE and const < 0)
                ):
                    return [], pinning, index
                continue  # trivially true: weighs zero
            if len(coeffs) == 1 and const == 0:
                ((name, coeff),) = coeffs.items()
                if (
                    relation is Relation.EQ
                    or (relation is Relation.LE and coeff > 0)
                    or (relation is Relation.GE and coeff < 0)
                ):
                    pinning[name] = (index, coeff, relation)
                    changed = True
                    continue
            if (
                relation is Relation.GE
                and const >= 0
                and all(value >= 0 for value in coeffs.values())
            ) or (
                relation is Relation.LE
                and const <= 0
                and all(value <= 0 for value in coeffs.values())
            ):
                continue  # non-negativity already guarantees it
            survivors.append(
                (index, Constraint(LinExpr(coeffs, const), relation))
            )
        remaining = survivors
    return remaining, pinning, None


def _lift_weights(
    system: LinearSystem,
    weights: dict[int, Fraction],
    pinning: dict[str, tuple[int, Fraction, Relation]],
) -> FarkasCertificate:
    """Patch a reduced-system certificate into a full-system one.

    The reduced rows differ from the originals only in the pinned
    (zero-forced) variables, so the weighted combination over the full
    system can pick up negative coefficients on exactly those names;
    each is cancelled by weighting its pinning row with ``-γ/c`` — a
    sign-legal weight by the pinning conditions, adding nothing to the
    constant term (pinning rows have constant 0).  A pinning row was
    single-variable only *after* earlier substitutions, so its patch can
    reintroduce names pinned before it: walking the map latest-first
    makes one pass suffice.
    """
    partial = FarkasCertificate(
        tuple(sorted((i, w) for i, w in weights.items() if w != 0))
    )
    combined = partial.combination(system)
    for name in reversed(pinning):
        index, coeff, _relation = pinning[name]
        gamma = combined.coefficients.get(name, _ZERO)
        if gamma < 0:
            delta = -gamma / coeff
            weights[index] = weights.get(index, _ZERO) + delta
            combined = combined + delta * system.constraints[index].expr
    certificate = FarkasCertificate(
        tuple(sorted((i, w) for i, w in weights.items() if w != 0))
    )
    if not certificate.verify(system):  # pragma: no cover - soundness net
        raise SolverError(
            "internal error: extracted Farkas certificate failed verification"
        )
    return certificate


def farkas_certificate(system: LinearSystem) -> FarkasCertificate | None:
    """A verified infeasibility proof, or ``None`` if the system is feasible.

    The system must be non-strict (sharpen strict homogeneous
    constraints first — see :mod:`repro.solver.homogeneous`); variables
    are implicitly non-negative, matching
    :func:`repro.solver.simplex.solve_lp`.

    The extraction presolves with the certificate-preserving reductions
    of :func:`_reduce_for_certificate` (the pruned zero-set search
    extracts a certificate per infeasible candidate, so this is a hot
    path), runs its own phase-1 simplex whose rows map one-to-one onto
    the surviving constraints, and lifts the weights back to the full
    system; the resulting certificate is verified before being
    returned, so a caller can trust it unconditionally.
    """
    for constraint in system.constraints:
        if constraint.relation.is_strict:
            raise SolverError(
                "farkas_certificate needs a non-strict system; sharpen "
                "strict homogeneous constraints first"
            )
    budget = current_budget()
    if budget is not None:
        # One phase-1 simplex run; charging it keeps certificate
        # extraction (explain, debug) under the same account as the
        # decision procedures.
        budget.charge_solver_call()

    surviving, pinning, violated = _reduce_for_certificate(system)
    if violated is not None:
        relation = system.constraints[violated].relation
        const = system.constraints[violated].expr.constant_term
        sign = _ONE if relation is Relation.LE or const > 0 else -_ONE
        return _lift_weights(system, {violated: sign}, pinning)
    if not surviving:
        return None  # every row is trivially satisfiable

    variables = [
        name for name in system.variables if name not in pinning
    ]
    column_of = {name: j for j, name in enumerate(variables)}
    num_structural = len(variables)

    # Normalised rows: coeffs . x (REL') rhs with rhs >= 0; remember the
    # original row index and the sign flip to translate dual values back
    # to the full system's statement.
    normalised: list[tuple[int, list[Fraction], Relation, Fraction, int]] = []
    for original_index, constraint in surviving:
        coeffs = [_ZERO] * num_structural
        for name, value in constraint.expr.coefficients.items():
            coeffs[column_of[name]] += value
        rhs = -constraint.expr.constant_term
        relation = constraint.relation
        sign = 1
        if rhs < 0:
            coeffs = [-value for value in coeffs]
            rhs = -rhs
            relation = relation.flipped()
            sign = -1
        normalised.append((original_index, coeffs, relation, rhs, sign))

    num_slacks = sum(
        1 for _, _, relation, _, _ in normalised if relation is not Relation.EQ
    )
    num_rows = len(normalised)
    total_columns = num_structural + num_slacks + num_rows

    rows: list[list[Fraction]] = []
    basis: list[int] = []
    artificial_of_row: list[int] = []
    slack_cursor = num_structural
    artificial_cursor = num_structural + num_slacks
    for _index, coeffs, relation, rhs, _sign in normalised:
        row = list(coeffs) + [_ZERO] * (total_columns - num_structural) + [rhs]
        if relation is Relation.LE:
            # Slack-basic start, exactly like solve_lp's phase 1: with
            # rhs >= 0 after normalisation the slack is already feasible,
            # so the row contributes no phase-1 work.
            row[slack_cursor] = _ONE
            basis.append(slack_cursor)
            slack_cursor += 1
        elif relation is Relation.GE:
            row[slack_cursor] = -_ONE
            slack_cursor += 1
            basis.append(artificial_cursor)
        else:  # EQ
            basis.append(artificial_cursor)
        # Every row still gets an artificial *column* so the duals can
        # be read off uniformly (y_i = cost_i - reduced_cost(art_i)),
        # but only GE/EQ artificials are basic and costed; LE ones are
        # blocked from ever entering.
        row[artificial_cursor] = _ONE
        artificial_of_row.append(artificial_cursor)
        artificial_cursor += 1
        rows.append(row)

    tableau = _Tableau(rows, basis, total_columns)
    phase1_cost = [_ZERO] * total_columns
    for column, (_, _, relation, _, _) in zip(artificial_of_row, normalised):
        if relation is Relation.LE:
            tableau.blocked.add(column)
        else:
            phase1_cost[column] = _ONE
    status, value = tableau.minimize(phase1_cost, floor=_ZERO)
    if value <= 0:
        return None  # feasible: no certificate exists
    assert status.name == "OPTIMAL"

    reduced = tableau.last_reduced
    weights: dict[int, Fraction] = {}
    for artificial, (original_index, _, _, _, sign) in zip(
        artificial_of_row, normalised
    ):
        dual = phase1_cost[artificial] - reduced[artificial]
        weight = -dual * sign
        if weight != 0:
            weights[original_index] = weight

    return _lift_weights(system, weights, pinning)


__all__ = ["FarkasCertificate", "farkas_certificate"]
