"""Exact linear-arithmetic substrate.

The paper reduces reasoning over ISA + cardinality constraints to the
existence of particular solutions of homogeneous systems of linear
disequations (Section 3.2).  This package supplies everything that
reduction needs, implemented from scratch and float-free:

* :mod:`repro.solver.linear` — expressions, constraints, systems;
* :mod:`repro.solver.simplex` — exact two-phase simplex (Bland's rule);
* :mod:`repro.solver.fourier_motzkin` — Fourier–Motzkin elimination,
  supporting strict inequalities natively (used on small systems and as
  a differential-testing oracle for the simplex);
* :mod:`repro.solver.homogeneous` — decision routines specialised to
  homogeneous systems: feasibility with strict constraints (by cone
  scaling), maximal-support computation, integer witnesses.
"""

from repro.solver.certificates import FarkasCertificate, farkas_certificate
from repro.solver.fourier_motzkin import FourierMotzkinResult, fm_feasible, fm_solve
from repro.solver.homogeneous import (
    HomogeneousWitness,
    find_positive_solution,
    integerize,
    maximal_support,
)
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation, term
from repro.solver.simplex import SimplexResult, SimplexStatus, solve_lp

# Importing the package finalises the backend registry: the pruned
# (orbit/nogood) decision procedure registers itself on import, and it
# lives above repro.solver.registry, so the registry module cannot pull
# it in directly without a cycle.
from repro.solver import pruned as _pruned  # noqa: E402  (registration import)

del _pruned

__all__ = [
    "Constraint",
    "LinearSystem",
    "LinExpr",
    "Relation",
    "term",
    "SimplexResult",
    "SimplexStatus",
    "solve_lp",
    "FarkasCertificate",
    "farkas_certificate",
    "FourierMotzkinResult",
    "fm_feasible",
    "fm_solve",
    "HomogeneousWitness",
    "find_positive_solution",
    "integerize",
    "maximal_support",
]
