"""Ambient counter sink for the zero-set search engines.

The decision procedures (:mod:`repro.solver.registry`'s naive walk and
:mod:`repro.solver.pruned`'s orbit/nogood walk) run far below the layers
that own statistics objects — sessions hold a
:class:`~repro.session.cache.CacheStats`, benchmarks hold ad-hoc
counter bags — and threading a stats parameter through
``decide_acceptable`` → ``chain_positive_solution`` call chains would
contaminate every backend signature.  Instead the owner *activates* its
stats object as the ambient sink::

    with search_stats_sink(cache.stats):
        session.is_class_satisfiable("Employee")

and the search engines report through :func:`bump_search_stat`, which is
a no-op when no sink is active.  Any object with a
``bump(counter, amount)`` method qualifies — ``CacheStats``, the serve
daemon's lock-guarded subclass, or the lightweight
:class:`SearchCounters` below (used by benchmarks and unit tests).

A :class:`~contextvars.ContextVar` carries the sink so concurrent serve
requests on one event loop and worker subprocesses each see their own
activation (workers re-activate around their chunk bodies; counters are
folded into the parent's sink when results merge).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields
from typing import Any, Protocol


class StatsSink(Protocol):
    def bump(self, counter: str, amount: int = 1) -> None: ...


#: Counters the zero-set search engines report, in render order.
SEARCH_STAT_KEYS: tuple[str, ...] = (
    "zero_sets_enumerated",
    "pruned_by_orbit",
    "pruned_by_nogood",
    "orbits_found",
)

_SINK: ContextVar[StatsSink | None] = ContextVar("search_stats_sink", default=None)


@contextmanager
def search_stats_sink(sink: StatsSink | None) -> Iterator[None]:
    """Activate ``sink`` as the ambient search-counter receiver."""
    token = _SINK.set(sink)
    try:
        yield
    finally:
        _SINK.reset(token)


def bump_search_stat(counter: str, amount: int = 1) -> None:
    """Report ``counter += amount`` to the active sink (no-op without one)."""
    sink = _SINK.get()
    if sink is not None and amount:
        sink.bump(counter, amount)


@dataclass
class SearchCounters:
    """A free-standing bag of the search counters.

    Benchmarks and unit tests activate one via :func:`search_stats_sink`
    when there is no session cache around to absorb the bumps.
    """

    zero_sets_enumerated: int = 0
    pruned_by_orbit: int = 0
    pruned_by_nogood: int = 0
    orbits_found: int = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        if hasattr(self, counter):
            setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def fold_search_stats(stats: dict[str, Any] | None) -> None:
    """Fold a worker-returned counter dict into the ambient sink."""
    if not stats:
        return
    for key in SEARCH_STAT_KEYS:
        amount = int(stats.get(key, 0))
        if amount:
            bump_search_stat(key, amount)


__all__ = [
    "SEARCH_STAT_KEYS",
    "SearchCounters",
    "StatsSink",
    "bump_search_stat",
    "fold_search_stats",
    "search_stats_sink",
]
