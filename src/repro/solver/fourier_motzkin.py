"""Fourier–Motzkin elimination over the rationals.

A second, completely independent decision procedure for linear
feasibility.  Unlike the simplex (:mod:`repro.solver.simplex`) it
handles **strict** inequalities natively, which makes it the reference
oracle for the cone-scaling argument used by
:mod:`repro.solver.homogeneous`: the test-suite cross-checks the two
engines on thousands of random systems.

Fourier–Motzkin is doubly exponential in the number of eliminated
variables, so this module guards against blow-up with an explicit
constraint budget and is only used directly on small systems.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.runtime.budget import current_budget
from repro.solver.linear import LinearSystem, Relation

_ZERO = Fraction(0)

_FAULT_HOOK = None
"""Test seam: when set (by :mod:`repro.runtime.faults`), called with no
arguments at the top of every :func:`fm_solve`; may raise to simulate a
backend fault."""


@dataclass(frozen=True)
class _Ineq:
    """A normalised inequality ``coeffs . x + const (<= | <) 0``."""

    coeffs: tuple[tuple[str, Fraction], ...]
    const: Fraction
    strict: bool

    @classmethod
    def make(
        cls, coeffs: dict[str, Fraction], const: Fraction, strict: bool
    ) -> _Ineq:
        cleaned = tuple(
            sorted((name, value) for name, value in coeffs.items() if value != 0)
        )
        return cls(cleaned, const, strict)

    def coefficient(self, name: str) -> Fraction:
        for var, value in self.coeffs:
            if var == name:
                return value
        return _ZERO

    def is_constant(self) -> bool:
        return not self.coeffs

    def is_trivially_true(self) -> bool:
        if self.coeffs:
            return False
        return self.const < 0 or (self.const == 0 and not self.strict)

    def is_contradiction(self) -> bool:
        if self.coeffs:
            return False
        return self.const > 0 or (self.const == 0 and self.strict)

    def canonical(self) -> _Ineq:
        """Scale so the leading coefficient has magnitude 1 (for dedup)."""
        if not self.coeffs:
            sign = _canonical_const(self.const)
            return _Ineq((), sign, self.strict)
        leading = abs(self.coeffs[0][1])
        if leading == 1:
            return self
        return _Ineq(
            tuple((name, value / leading) for name, value in self.coeffs),
            self.const / leading,
            self.strict,
        )


def _canonical_const(const: Fraction) -> Fraction:
    if const > 0:
        return Fraction(1)
    if const < 0:
        return Fraction(-1)
    return _ZERO


def _combine(lower: _Ineq, upper: _Ineq, name: str) -> _Ineq:
    """Eliminate ``name`` from a lower bound and an upper bound.

    ``upper`` has a positive coefficient on ``name`` (it bounds the
    variable from above); ``lower`` has a negative one.  The positive
    combination cancels the variable exactly.
    """
    upper_coeff = upper.coefficient(name)
    lower_coeff = lower.coefficient(name)
    multiplier_upper = -lower_coeff  # positive
    multiplier_lower = upper_coeff  # positive
    coeffs: dict[str, Fraction] = {}
    for var, value in upper.coeffs:
        coeffs[var] = coeffs.get(var, _ZERO) + multiplier_upper * value
    for var, value in lower.coeffs:
        coeffs[var] = coeffs.get(var, _ZERO) + multiplier_lower * value
    const = multiplier_upper * upper.const + multiplier_lower * lower.const
    return _Ineq.make(coeffs, const, upper.strict or lower.strict)


def _to_inequalities(system: LinearSystem) -> list[_Ineq]:
    result: list[_Ineq] = []
    for constraint in system.constraints:
        coeffs = constraint.expr.coefficients
        const = constraint.expr.constant_term
        relation = constraint.relation
        if relation in (Relation.LE, Relation.LT):
            result.append(
                _Ineq.make(coeffs, const, relation is Relation.LT)
            )
        elif relation in (Relation.GE, Relation.GT):
            negated = {name: -value for name, value in coeffs.items()}
            result.append(
                _Ineq.make(negated, -const, relation is Relation.GT)
            )
        else:  # EQ: two opposite non-strict inequalities
            result.append(_Ineq.make(coeffs, const, False))
            negated = {name: -value for name, value in coeffs.items()}
            result.append(_Ineq.make(negated, -const, False))
    return result


@dataclass(frozen=True)
class FourierMotzkinResult:
    """Outcome of :func:`fm_solve`."""

    feasible: bool
    assignment: dict[str, Fraction] | None


def fm_feasible(
    system: LinearSystem,
    free_variables: Iterable[str] = (),
    max_constraints: int = 200_000,
) -> bool:
    """Whether the system admits a rational solution (strictness honoured)."""
    return fm_solve(system, free_variables, max_constraints).feasible


def fm_solve(
    system: LinearSystem,
    free_variables: Iterable[str] = (),
    max_constraints: int = 200_000,
) -> FourierMotzkinResult:
    """Decide feasibility by variable elimination and return a witness.

    Every variable not in ``free_variables`` is implicitly non-negative,
    mirroring :func:`repro.solver.simplex.solve_lp`.  Raises
    :class:`~repro.errors.SolverError` if intermediate systems exceed
    ``max_constraints`` (Fourier–Motzkin can blow up doubly
    exponentially; callers choosing this engine accept small inputs).
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK()
    budget = current_budget()
    if budget is not None:
        budget.charge_solver_call()
    free = frozenset(free_variables)
    inequalities = _to_inequalities(system)
    for name in system.variables:
        if name not in free:
            inequalities.append(_Ineq.make({name: Fraction(-1)}, _ZERO, False))

    order = list(system.variables)
    snapshots: list[tuple[str, list[_Ineq]]] = []
    current = _dedup(inequalities)

    for name in order:
        if budget is not None:
            budget.check()
        snapshots.append((name, current))
        uppers = [ineq for ineq in current if ineq.coefficient(name) > 0]
        lowers = [ineq for ineq in current if ineq.coefficient(name) < 0]
        others = [ineq for ineq in current if ineq.coefficient(name) == 0]
        combined = others
        for lower in lowers:
            for upper in uppers:
                if budget is not None:
                    budget.charge_pivots()
                combined.append(_combine(lower, upper, name))
                if len(combined) > max_constraints:
                    raise SolverError(
                        "Fourier-Motzkin exceeded the constraint budget "
                        f"({max_constraints}); use the simplex engine"
                    )
        current = _dedup(combined)
        contradiction = next(
            (ineq for ineq in current if ineq.is_contradiction()), None
        )
        if contradiction is not None:
            return FourierMotzkinResult(False, None)

    # All variables eliminated; remaining constraints are constant and
    # true, so the system is feasible.  Back-substitute a witness.
    assignment: dict[str, Fraction] = {}
    for name, inequalities_before in reversed(snapshots):
        assignment[name] = _choose_value(name, inequalities_before, assignment)
    return FourierMotzkinResult(True, assignment)


def _dedup(inequalities: Sequence[_Ineq]) -> list[_Ineq]:
    seen: set[_Ineq] = set()
    result: list[_Ineq] = []
    for ineq in inequalities:
        canonical = ineq.canonical()
        if canonical.is_trivially_true() or canonical in seen:
            continue
        seen.add(canonical)
        result.append(canonical)
    return result


def _choose_value(
    name: str, inequalities: Sequence[_Ineq], chosen: dict[str, Fraction]
) -> Fraction:
    """Pick a value for ``name`` inside the interval its bounds induce.

    ``inequalities`` is the system as it stood *before* ``name`` was
    eliminated; all variables other than ``name`` appearing in it are
    either already assigned (later in elimination order) or absent.
    """
    lower: Fraction | None = None
    lower_strict = False
    upper: Fraction | None = None
    upper_strict = False
    for ineq in inequalities:
        coeff = ineq.coefficient(name)
        if coeff == 0:
            continue
        rest = ineq.const
        for var, value in ineq.coeffs:
            if var != name:
                rest += value * chosen[var]
        bound = -rest / coeff
        if coeff > 0:  # name <= bound
            if upper is None or bound < upper or (bound == upper and ineq.strict):
                upper = bound
                upper_strict = ineq.strict
        else:  # name >= bound
            if lower is None or bound > lower or (bound == lower and ineq.strict):
                lower = bound
                lower_strict = ineq.strict
    if lower is None and upper is None:
        return _ZERO
    if lower is None:
        assert upper is not None
        return upper - 1 if upper_strict else upper
    if upper is None:
        return lower + 1 if lower_strict else lower
    if lower == upper:
        # Feasibility of the eliminated system guarantees the bounds are
        # compatible, which rules out both being strict here.
        return lower
    return (lower + upper) / 2


__all__ = ["FourierMotzkinResult", "fm_feasible", "fm_solve"]
