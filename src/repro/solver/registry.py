"""Pluggable solver backends with declared capabilities.

The decision pipeline needs three numeric services — maximal support of
a homogeneous system, a positive solution of a possibly-strict system,
and the full acceptability decision of Theorem 3.3/3.4 — and the repo
has grown several engines providing them: the interned sparse simplex
(:mod:`repro.solver.core`), the dense exact tableau
(:mod:`repro.solver.simplex` via :mod:`repro.solver.homogeneous`),
Fourier–Motzkin elimination (:mod:`repro.solver.fourier_motzkin`), and
the naive Theorem-3.4 zero-set enumeration.  This module makes them
first-class :class:`SolverBackend` objects in a process-wide registry,
each declaring :class:`BackendCapabilities`, so that

* the fallback chain (:mod:`repro.runtime.fallback`) is *composed* from
  registered backends instead of hard-wiring module calls;
* the active primary backend is selectable — ``pin_backend`` from code,
  the ``--backend`` CLI flag, or the ``REPRO_BACKEND`` environment
  variable — without touching call sites;
* a new engine plugs in by subclassing :class:`SolverBackend` and
  calling :func:`register_backend` (see DESIGN.md, "Solver core and
  backends").

Layering: this module sits strictly in the solver layer.  It knows
nothing about CR-schemas; the acceptability decision operates on the
plain :class:`AcceptabilityProblem` data that
:mod:`repro.cr.satisfiability` extracts from a :class:`~repro.cr.system.CRSystem`.
"""

from __future__ import annotations

import abc
import os
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Iterator

from repro.errors import (
    BudgetExceededError,
    LimitExceededError,
    ReproError,
    SolverError,
)
from repro.runtime.budget import current_budget
from repro.solver.core import (
    InternedSystem,
    SparseRow,
    interned_maximal_support,
    interned_positive_solution,
)
from repro.solver.fourier_motzkin import fm_solve
from repro.solver.homogeneous import (
    HomogeneousWitness,
    find_positive_solution,
    integerize,
    maximal_support,
)
from repro.solver.linear import Constraint, Relation, term
from repro.solver.stats import bump_search_stat

_ZERO = Fraction(0)

DEFAULT_BACKEND = "sparse-simplex"
"""Registry name of the backend used when nothing pins a choice."""

DEFAULT_NAIVE_LIMIT = 16
"""Default cap on class unknowns for the naive (Theorem 3.4) engine,
which enumerates ``2^n`` zero-sets."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can accept and produce.

    ``equalities``
        Accepts ``= 0`` rows directly (every current backend does).
    ``strict``
        Decides strict disequations (``> 0``) — natively, as
        Fourier–Motzkin does, or soundly via cone sharpening.
    ``certificates``
        Can produce the infeasibility certificates that
        :mod:`repro.cr.explain` turns into provenance (only the dense
        tableau records the multipliers today).
    ``exponential``
        Worst-case exponential in the *number of unknowns* (the naive
        zero-set enumeration); such backends are gated by
        ``naive_limit`` rather than offered as LP primitives.
    """

    equalities: bool = True
    strict: bool = True
    certificates: bool = False
    exponential: bool = False


@dataclass(frozen=True)
class AcceptabilityProblem:
    """The Theorem-3.3 decision input, as plain solver-layer data.

    ``system`` is the interned homogeneous ``Ψ_S`` (non-strict);
    ``class_unknowns`` the consistent compound-class unknown names (the
    probe set of the fixpoint and the universe of the naive zero-set
    enumeration); ``dependencies`` maps each relationship unknown to the
    class unknowns it depends on (Section 3.3's acceptability);
    ``targets`` the unknowns whose joint positivity is queried.
    """

    system: InternedSystem
    class_unknowns: tuple[str, ...]
    dependencies: Mapping[str, tuple[str, ...]]
    targets: frozenset[str]


class SolverBackend(abc.ABC):
    """One engine answering the pipeline's numeric questions.

    LP-style backends implement :meth:`maximal_support` and
    :meth:`positive_solution` and inherit the generic acceptability
    fixpoint as :meth:`decide_acceptable`; decision-procedure backends
    (the naive engine) override :meth:`decide_acceptable` directly and
    may refuse the LP primitives with :class:`~repro.errors.SolverError`
    (which a chain treats as "try the next backend").
    """

    name: str
    capabilities: BackendCapabilities

    @abc.abstractmethod
    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        """Largest simultaneously-positive set among ``candidates`` of a
        homogeneous non-strict ``system``, with a witness solution
        (contract of :func:`repro.solver.homogeneous.maximal_support`)."""

    @abc.abstractmethod
    def positive_solution(self, system: InternedSystem) -> HomogeneousWitness:
        """Decide a homogeneous system that may contain strict rows."""

    def decide_acceptable(
        self,
        problem: AcceptabilityProblem,
        chain: Sequence[SolverBackend] | None = None,
        naive_limit: int = DEFAULT_NAIVE_LIMIT,
        jobs: int = 1,
    ) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
        """Is some acceptable solution positive on a target unknown?

        Returns ``(found, integer_witness, support)``.  The default
        implementation is the acceptability fixpoint of
        :mod:`repro.cr.satisfiability` run on ``chain`` (defaulting to
        this backend alone) — each support LP is retried down the chain
        on a :class:`~repro.errors.SolverError`.  ``jobs`` is ignored
        here: the fixpoint's witness solution comes out of one shadow
        LP, and keeping that witness bit-identical means keeping the
        serial path; only the naive backend fans out.
        """
        del naive_limit, jobs  # only the exponential backend uses these
        support, solution = fixpoint_support(problem, chain or (self,))
        if not (problem.targets & support):
            return False, None, support
        return True, integerize(solution), support

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Chains: ordered retry over backends
# ---------------------------------------------------------------------------


def chain_maximal_support(
    system: InternedSystem,
    candidates: Sequence[str],
    chain: Sequence[SolverBackend],
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Try ``maximal_support`` on each backend in order.

    A :class:`~repro.errors.SolverError` moves to the next backend;
    budget exhaustion always propagates (a slower backend would not
    have more resources).  The last error surfaces if every backend
    faults.
    """
    last_error: SolverError | None = None
    for backend in chain:
        try:
            return backend.maximal_support(system, candidates)
        except BudgetExceededError:
            raise
        except SolverError as error:
            last_error = error
    assert last_error is not None, "chain_maximal_support needs a backend"
    raise last_error


def chain_positive_solution(
    system: InternedSystem, chain: Sequence[SolverBackend]
) -> HomogeneousWitness:
    """Try ``positive_solution`` on each backend in order (same
    degradation contract as :func:`chain_maximal_support`)."""
    last_error: SolverError | None = None
    for backend in chain:
        try:
            return backend.positive_solution(system)
        except BudgetExceededError:
            raise
        except SolverError as error:
            last_error = error
    assert last_error is not None, "chain_positive_solution needs a backend"
    raise last_error


def fixpoint_support(
    problem: AcceptabilityProblem, chain: Sequence[SolverBackend]
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal support over all *acceptable* solutions, with a witness.

    The acceptability fixpoint (module docstring of
    :mod:`repro.cr.satisfiability`): compute the maximal support over
    the class unknowns, force to zero every relationship unknown that
    depends on a class unknown outside it, and iterate until stable.
    Forced-zero rows are added at the interned level; each support LP
    degrades down ``chain``.
    """
    table = problem.system.table
    forced_zero: set[str] = set()
    budget = current_budget()
    while True:
        if budget is not None:
            budget.check()
        constrained = problem.system.with_rows(
            SparseRow.make(
                {table.index(name): 1},
                Relation.EQ,
                label=f"forced-zero:{name}",
            )
            for name in sorted(forced_zero)
        )
        support, solution = chain_maximal_support(
            constrained, problem.class_unknowns, chain
        )
        newly_forced = {
            rel_unknown
            for rel_unknown, class_unknowns in problem.dependencies.items()
            if rel_unknown not in forced_zero
            and any(c not in support for c in class_unknowns)
        }
        if not newly_forced:
            return support, solution
        forced_zero |= newly_forced


# ---------------------------------------------------------------------------
# The concrete backends
# ---------------------------------------------------------------------------


class SparseSimplexBackend(SolverBackend):
    """The interned sparse revised simplex (:mod:`repro.solver.core`).

    The default primary backend: integer fast path, sparse pivoting,
    no string-keyed data on the hot path.  Strict rows are handled by
    cone sharpening.  No certificates (use ``dense-simplex`` when
    provenance is required).
    """

    name = "sparse-simplex"
    capabilities = BackendCapabilities(certificates=False)

    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        return interned_maximal_support(system, candidates)

    def positive_solution(self, system: InternedSystem) -> HomogeneousWitness:
        rational = interned_positive_solution(system)
        if rational is None:
            return HomogeneousWitness(False, None, None)
        return HomogeneousWitness(True, rational, integerize(rational))


class DenseSimplexBackend(SolverBackend):
    """The original dense exact tableau (:mod:`repro.solver.simplex`).

    Kept for differential testing and because only the dense tableau
    records the certificate multipliers :mod:`repro.cr.explain`
    consumes.  Interned input is projected to the string-keyed form at
    the boundary.
    """

    name = "dense-simplex"
    capabilities = BackendCapabilities(certificates=True)

    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        return maximal_support(system.to_linear(), candidates=list(candidates))

    def positive_solution(self, system: InternedSystem) -> HomogeneousWitness:
        return find_positive_solution(system.to_linear())


class FourierMotzkinBackend(SolverBackend):
    """Variable elimination (:mod:`repro.solver.fourier_motzkin`).

    Completely independent of the simplex code paths — the retry link
    of the degradation chain.  Handles strict rows natively, so needs
    no cone sharpening.  ``max_constraints`` bounds the intermediate
    systems (FM is doubly exponential); blowing through it raises
    :class:`~repro.errors.SolverError`, which moves a chain along.
    """

    name = "fourier-motzkin"
    capabilities = BackendCapabilities(certificates=False)

    def __init__(self, max_constraints: int = 50_000) -> None:
        self.max_constraints = max_constraints

    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        linear = system.to_linear()
        totals: dict[str, Fraction] = {
            name: _ZERO for name in linear.variables
        }
        # One strict probe per candidate; feasible witnesses are summed
        # (cone closure), so the union of probe supports is itself the
        # support of a single solution — the maximal_support contract.
        for name in candidates:
            if totals.get(name, _ZERO) > 0:
                continue  # already known positive via an earlier witness
            probe = linear.with_constraints(
                [Constraint(term(name), Relation.GT, label=f"fm-probe:{name}")]
            )
            result = fm_solve(probe, max_constraints=self.max_constraints)
            if result.feasible:
                assert result.assignment is not None
                for var, value in result.assignment.items():
                    totals[var] = totals.get(var, _ZERO) + value
        solution = {name: totals[name] for name in linear.variables}
        support = frozenset(
            name for name, value in solution.items() if value > 0
        )
        return support, solution

    def positive_solution(self, system: InternedSystem) -> HomogeneousWitness:
        result = fm_solve(
            system.to_linear(), max_constraints=self.max_constraints
        )
        if not result.feasible:
            return HomogeneousWitness(False, None, None)
        assert result.assignment is not None
        rational = dict(result.assignment)
        return HomogeneousWitness(True, rational, integerize(rational))


class NaiveBackend(SolverBackend):
    """The literal Theorem-3.4 zero-set enumeration.

    A decision procedure, not an LP engine: it answers
    :meth:`decide_acceptable` by enumerating every subset ``Z`` of the
    class unknowns and testing feasibility of ``Ψ_Z`` — exponential,
    hence gated by ``naive_limit`` — and refuses the LP primitives so
    that chains skip over it.  The per-zero-set strict probes run on
    ``chain`` (defaulting to the registry default backend), because the
    naivety is in the *enumeration strategy*, not the arithmetic.
    """

    name = "naive"
    capabilities = BackendCapabilities(exponential=True)

    def maximal_support(
        self, system: InternedSystem, candidates: Sequence[str]
    ) -> tuple[frozenset[str], dict[str, Fraction]]:
        raise SolverError(
            "the naive backend provides no LP primitives; use "
            "decide_acceptable"
        )

    def positive_solution(self, system: InternedSystem) -> HomogeneousWitness:
        raise SolverError(
            "the naive backend provides no LP primitives; use "
            "decide_acceptable"
        )

    def decide_acceptable(
        self,
        problem: AcceptabilityProblem,
        chain: Sequence[SolverBackend] | None = None,
        naive_limit: int = DEFAULT_NAIVE_LIMIT,
        jobs: int = 1,
    ) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
        class_unknowns = list(problem.class_unknowns)
        if len(class_unknowns) > naive_limit:
            raise LimitExceededError(
                f"the naive (Theorem 3.4) engine enumerates "
                f"2^{len(class_unknowns)} zero-sets, above the configured "
                f"naive_limit of {naive_limit}; use engine='fixpoint' for "
                "schemas of this size or raise the limit"
            )
        probes = chain or (get_backend(DEFAULT_BACKEND),)
        if jobs > 1:
            # Deferred import: repro.parallel sits above the solver
            # layer (its workers answer whole queries), so the registry
            # only reaches for it when a fan-out was requested.
            from repro.parallel.fanout import parallel_zero_set_search

            return parallel_zero_set_search(problem, probes, jobs)
        universe = set(class_unknowns)
        budget = current_budget()
        # Smaller zero-sets first: solutions with rich support come out
        # of the search earlier, and Z = {} settles most satisfiable cases.
        for size in range(len(class_unknowns) + 1):
            for zero_tuple in combinations(class_unknowns, size):
                if budget is not None:
                    budget.check()
                zero_set = frozenset(zero_tuple)
                if problem.targets <= zero_set:
                    continue  # the required positivity would be impossible
                bump_search_stat("zero_sets_enumerated")
                candidate = problem.system.with_rows(
                    zero_set_rows(problem, zero_set)
                )
                witness = chain_positive_solution(candidate, probes)
                if witness.feasible:
                    assert witness.integral is not None
                    support = frozenset(
                        name
                        for name, value in witness.integral.items()
                        if value > 0
                    )
                    assert universe - zero_set <= support
                    return True, witness.integral, support
        return False, None, frozenset()


def zero_set_rows(
    problem: AcceptabilityProblem, zero_set: frozenset[str]
) -> list[SparseRow]:
    """The extra rows of ``Ψ_Z`` (Theorem 3.4), interned.

    Class unknowns in ``Z`` are pinned to 0, the others required
    strictly positive, and every relationship unknown depending on a
    member of ``Z`` is pinned to 0.
    """
    table = problem.system.table
    rows: list[SparseRow] = []
    for name in problem.class_unknowns:
        index = table.index(name)
        if name in zero_set:
            rows.append(
                SparseRow.make({index: 1}, Relation.EQ, label=f"Z-zero:{name}")
            )
        else:
            rows.append(
                SparseRow.make(
                    {index: 1}, Relation.GT, label=f"Z-positive:{name}"
                )
            )
    for rel_unknown, class_unknowns in problem.dependencies.items():
        if any(c in zero_set for c in class_unknowns):
            rows.append(
                SparseRow.make(
                    {table.index(rel_unknown): 1},
                    Relation.EQ,
                    label=f"Z-dep:{rel_unknown}",
                )
            )
    return rows


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, SolverBackend] = {}

_PINNED: ContextVar[str | None] = ContextVar("repro_backend_pin", default=None)


def register_backend(backend: SolverBackend, replace: bool = False) -> None:
    """Add a backend under ``backend.name``.

    Third-party engines register here and become selectable through
    every mechanism (``--backend``, ``REPRO_BACKEND``,
    :func:`pin_backend`) without further wiring.
    """
    if not replace and backend.name in _REGISTRY:
        raise ReproError(
            f"solver backend {backend.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> SolverBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown solver backend {name!r}; available: "
            f"{', '.join(backend_names())}"
        ) from None


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def available_backends() -> tuple[SolverBackend, ...]:
    return tuple(_REGISTRY[name] for name in backend_names())


def active_backend_name() -> str:
    """The selected primary backend: pin > ``REPRO_BACKEND`` > default."""
    pinned = _PINNED.get()
    if pinned is not None:
        return pinned
    env = os.environ.get("REPRO_BACKEND")
    if env:
        get_backend(env)  # validate eagerly: fail loudly, not mid-query
        return env
    return DEFAULT_BACKEND


def active_backend() -> SolverBackend:
    return get_backend(active_backend_name())


@contextmanager
def pin_backend(name: str) -> Iterator[SolverBackend]:
    """Select the primary backend for the enclosed block.

    Context-local (safe under threads and nested pins); the CLI
    ``--backend`` flag wraps the whole command in one pin.
    """
    backend = get_backend(name)  # validate before pinning
    token = _PINNED.set(name)
    try:
        yield backend
    finally:
        _PINNED.reset(token)


register_backend(SparseSimplexBackend())
register_backend(DenseSimplexBackend())
register_backend(FourierMotzkinBackend())
register_backend(NaiveBackend())


__all__ = [
    "AcceptabilityProblem",
    "BackendCapabilities",
    "DEFAULT_BACKEND",
    "DEFAULT_NAIVE_LIMIT",
    "DenseSimplexBackend",
    "FourierMotzkinBackend",
    "NaiveBackend",
    "SolverBackend",
    "SparseSimplexBackend",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "backend_names",
    "chain_maximal_support",
    "chain_positive_solution",
    "fixpoint_support",
    "get_backend",
    "pin_backend",
    "register_backend",
    "zero_set_rows",
]
