"""Interned sparse solver core: the numeric engine behind ``Ψ_S``.

The systems the paper generates (Section 3.2) are *homogeneous with
integer coefficients*, and their unknowns explode with the expansion —
thousands of columns of which each row touches a handful.  The original
solver stack (:mod:`repro.solver.linear` + :mod:`repro.solver.simplex`)
passes string-keyed dense ``Fraction`` dicts through a dense tableau;
this module replaces that on the hot path with

* a **variable interning table** (:class:`VariableTable`) mapping the
  pretty string unknowns (``c3``, ``h13``) to dense integer indices —
  strings exist only at the render/explain boundary;
* a **sparse row representation** (:class:`SparseRow`,
  :class:`InternedSystem`) holding ``(column, coefficient)`` pairs with
  an **integer fast path**: coefficients stay native ``int`` (an order
  of magnitude cheaper than :class:`~fractions.Fraction` arithmetic)
  until a pivot genuinely forces a non-integral value, and collapse
  back to ``int`` the moment a denominator cancels;
* a **revised sparse simplex** (:func:`solve_interned`): rows are
  column-indexed hash maps, a column→rows occupancy index restricts
  every pivot to the rows actually containing the pivot column, and
  reduced costs live in a sparse map so pricing scans only non-zero
  entries instead of the full column range.

The pivoting rules, presolve reductions, early-exit floor, budget
charging and fault-injection seam all mirror
:mod:`repro.solver.simplex`, so the two engines are exact drop-in
replacements for each other — which the differential test-suite and the
cross-backend parity property test exploit.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.runtime.budget import current_budget
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation

Coeff = int | Fraction
"""Exact coefficient: native ``int`` on the fast path, ``Fraction``
only when a value is genuinely non-integral."""

_FAULT_HOOK: Callable[[], None] | None = None
"""Test seam: when set (by :mod:`repro.runtime.faults`), called with no
arguments at the top of every :func:`solve_interned`; may raise to
simulate a backend fault."""

_DEGENERATE_PIVOT_LIMIT = 40
"""Consecutive degenerate pivots tolerated under the Dantzig rule
before switching to Bland's rule (same policy as the dense tableau)."""


def _norm(value: Coeff) -> Coeff:
    """Collapse an integral :class:`Fraction` back to ``int``.

    This is the heart of the integer fast path: once a denominator
    cancels, all further arithmetic on the value is native ``int``.
    """
    if value.__class__ is Fraction and value.denominator == 1:
        return value.numerator
    return value


def _div(a: Coeff, b: Coeff) -> Coeff:
    """Exact ``a / b`` staying on ``int`` when the division is exact."""
    if a.__class__ is int and b.__class__ is int:
        quotient, remainder = divmod(a, b)
        if remainder == 0:
            return quotient
        return Fraction(a, b)
    return _norm(Fraction(a) / Fraction(b))


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------


class VariableTable:
    """A bijective string ↔ dense-integer interning table.

    Indices are assigned in first-intern order, so a table built from a
    system enumerates its unknowns in declaration order — which keeps
    witnesses and supports deterministic.
    """

    __slots__ = ("_names", "_index")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """Index of ``name``, assigning the next free index if new."""
        index = self._index.get(name)
        if index is None:
            index = len(self._names)
            self._index[name] = index
            self._names.append(name)
        return index

    def index(self, name: str) -> int:
        """Index of an already-interned ``name`` (raises if unknown)."""
        try:
            return self._index[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    def name(self, index: int) -> str:
        return self._names[index]

    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def copy(self) -> VariableTable:
        clone = VariableTable.__new__(VariableTable)
        clone._names = list(self._names)
        clone._index = dict(self._index)
        return clone

    def __repr__(self) -> str:
        return f"VariableTable({len(self._names)} variables)"


@dataclass(frozen=True)
class SparseRow:
    """One constraint ``Σ coeffs[k] · x[cols[k]] + const REL 0``.

    ``cols`` is strictly increasing and parallel to ``coeffs``; zero
    coefficients are never stored.
    """

    cols: tuple[int, ...]
    coeffs: tuple[Coeff, ...]
    relation: Relation
    const: Coeff = 0
    label: str | None = None
    origin: object = None

    @classmethod
    def make(
        cls,
        entries: Mapping[int, Coeff],
        relation: Relation,
        const: Coeff = 0,
        label: str | None = None,
        origin: object = None,
    ) -> SparseRow:
        cleaned = sorted(
            (col, _norm(value)) for col, value in entries.items() if value != 0
        )
        return cls(
            cols=tuple(col for col, _ in cleaned),
            coeffs=tuple(value for _, value in cleaned),
            relation=relation,
            const=_norm(const),
            label=label,
            origin=origin,
        )

    def items(self) -> Iterable[tuple[int, Coeff]]:
        return zip(self.cols, self.coeffs)

    @property
    def is_homogeneous(self) -> bool:
        return self.const == 0


class InternedSystem:
    """A linear system over interned integer unknowns.

    The canonical internal currency of the solver layer: generated
    directly by :func:`repro.cr.system.build_system`, consumed by the
    sparse simplex and the backend registry, convertible to and from the
    string-keyed :class:`~repro.solver.linear.LinearSystem` at the
    render/explain boundary.
    """

    __slots__ = ("table", "rows")

    def __init__(
        self,
        table: VariableTable | None = None,
        rows: Iterable[SparseRow] = (),
    ) -> None:
        self.table = table if table is not None else VariableTable()
        self.rows: list[SparseRow] = list(rows)

    # -- construction --------------------------------------------------

    def add(
        self,
        entries: Mapping[int, Coeff],
        relation: Relation,
        const: Coeff = 0,
        label: str | None = None,
        origin: object = None,
    ) -> None:
        self.rows.append(SparseRow.make(entries, relation, const, label, origin))

    def add_named(
        self,
        entries: Mapping[str, Coeff],
        relation: Relation,
        const: Coeff = 0,
        label: str | None = None,
        origin: object = None,
    ) -> None:
        """Add a row given by variable *names*, interning as needed."""
        self.add(
            {self.table.intern(name): value for name, value in entries.items()},
            relation,
            const,
            label,
            origin,
        )

    def with_rows(self, extra: Iterable[SparseRow]) -> InternedSystem:
        """A copy with ``extra`` appended; the table is shared (indices
        in ``extra`` must already be interned)."""
        return InternedSystem(self.table, [*self.rows, *extra])

    @classmethod
    def from_linear(
        cls, system: LinearSystem, table: VariableTable | None = None
    ) -> InternedSystem:
        """Intern a string-keyed system (declaration order preserved)."""
        interned = cls(table)
        for name in system.variables:
            interned.table.intern(name)
        for constraint in system.constraints:
            interned.add_named(
                {
                    name: _norm(coeff)
                    for name, coeff in constraint.expr.coefficients.items()
                },
                constraint.relation,
                _norm(constraint.expr.constant_term),
                constraint.label,
                constraint.origin,
            )
        return interned

    def to_linear(self) -> LinearSystem:
        """Project back to the string-keyed form (render/explain only)."""
        system = LinearSystem(variables=self.table.names())
        for row in self.rows:
            system.add(
                Constraint(
                    LinExpr(
                        {
                            self.table.name(col): Fraction(value)
                            for col, value in row.items()
                        },
                        Fraction(row.const),
                    ),
                    row.relation,
                    row.label,
                    row.origin,
                )
            )
        return system

    # -- inspection ----------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.table)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def is_homogeneous(self) -> bool:
        return all(row.is_homogeneous for row in self.rows)

    def has_strict_rows(self) -> bool:
        return any(row.relation.is_strict for row in self.rows)

    def nonzeros(self) -> int:
        """Total stored coefficients (the sparsity measure)."""
        return sum(len(row.cols) for row in self.rows)

    def __repr__(self) -> str:
        return (
            f"InternedSystem({len(self.rows)} rows, "
            f"{len(self.table)} variables, {self.nonzeros()} nonzeros)"
        )


# ---------------------------------------------------------------------------
# Sparse revised simplex
# ---------------------------------------------------------------------------


class SparseStatus(enum.Enum):
    """Outcome of a sparse simplex run (mirrors ``SimplexStatus``)."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class SparseResult:
    """Solution report of :func:`solve_interned`.

    ``values`` maps every variable index of the input system to its
    value in the found vertex (``None`` unless ``OPTIMAL``).
    """

    status: SparseStatus
    objective_value: Coeff | None
    values: dict[int, Coeff] | None

    @property
    def is_feasible(self) -> bool:
        return self.status is SparseStatus.OPTIMAL

    def named_values(self, table: VariableTable) -> dict[str, Fraction]:
        """The assignment keyed by pretty names (boundary helper)."""
        assert self.values is not None
        return {
            table.name(index): Fraction(value)
            for index, value in self.values.items()
        }


class _SparseTableau:
    """Simplex state on hash-map rows with a column occupancy index.

    ``rows[i]`` maps column → non-zero coefficient; ``rhs[i]`` is the
    right-hand side; ``col_rows[j]`` is the set of row indices with a
    non-zero entry in column ``j``.  A pivot touches only the rows in
    ``col_rows[pivot_column]`` and, within each, only the support of the
    pivot row — on the paper's systems that is a small constant fraction
    of the dense ``m × n`` work.
    """

    __slots__ = (
        "rows",
        "rhs",
        "basis",
        "num_columns",
        "col_rows",
        "blocked",
        "reduced",
        "neg_obj",
    )

    def __init__(
        self,
        rows: list[dict[int, Coeff]],
        rhs: list[Coeff],
        basis: list[int],
        num_columns: int,
    ) -> None:
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.num_columns = num_columns
        self.col_rows: dict[int, set[int]] = {}
        for i, row in enumerate(rows):
            for j in row:
                self.col_rows.setdefault(j, set()).add(i)
        self.blocked: set[int] = set()
        self.reduced: dict[int, Coeff] = {}
        self.neg_obj: Coeff = 0

    # -- pivoting ------------------------------------------------------

    def pivot(self, row_index: int, col_index: int) -> None:
        """Make ``col_index`` basic in ``row_index``; update rows, the
        occupancy index, and the sparse reduced costs."""
        pivot_row = self.rows[row_index]
        pivot_value = pivot_row[col_index]
        if pivot_value == 0:  # pragma: no cover - defensive
            raise SolverError("internal error: pivot on a zero entry")
        if pivot_value != 1:
            for j, value in pivot_row.items():
                pivot_row[j] = _div(value, pivot_value)
            self.rhs[row_index] = _div(self.rhs[row_index], pivot_value)
        pivot_rhs = self.rhs[row_index]
        col_rows = self.col_rows
        occupants = col_rows.get(col_index, set())
        for i in list(occupants):
            if i == row_index:
                continue
            target = self.rows[i]
            factor = target[col_index]
            for j, value in pivot_row.items():
                current = target.get(j)
                if current is None:
                    product = factor * value
                    if product != 0:
                        target[j] = _norm(-product)
                        col_rows.setdefault(j, set()).add(i)
                else:
                    updated = current - factor * value
                    if updated == 0:
                        del target[j]
                        col_rows[j].discard(i)
                    else:
                        target[j] = _norm(updated)
            if pivot_rhs != 0:
                self.rhs[i] = _norm(self.rhs[i] - factor * pivot_rhs)
        factor = self.reduced.get(col_index)
        if factor:
            reduced = self.reduced
            for j, value in pivot_row.items():
                updated = reduced.get(j, 0) - factor * value
                if updated == 0:
                    reduced.pop(j, None)
                else:
                    reduced[j] = _norm(updated)
            self.neg_obj = _norm(self.neg_obj - factor * pivot_rhs)
        self.basis[row_index] = col_index

    def set_costs(self, cost: Mapping[int, Coeff]) -> None:
        """Initialise the sparse reduced-cost map for ``min cost · x``."""
        reduced: dict[int, Coeff] = dict(cost)
        neg_obj: Coeff = 0
        for row, rhs, basic in zip(self.rows, self.rhs, self.basis):
            basic_cost = cost.get(basic, 0)
            if basic_cost:
                for j, value in row.items():
                    updated = reduced.get(j, 0) - basic_cost * value
                    if updated == 0:
                        reduced.pop(j, None)
                    else:
                        reduced[j] = _norm(updated)
                neg_obj -= basic_cost * rhs
        self.reduced = reduced
        self.neg_obj = _norm(neg_obj)

    def minimize(
        self, cost: Mapping[int, Coeff], floor: Coeff | None = None
    ) -> tuple[SparseStatus, Coeff]:
        """Simplex iterations minimising ``cost · x`` (see the dense
        :meth:`~repro.solver.simplex._Tableau.minimize` for the floor
        early-exit rationale)."""
        self.set_costs(cost)
        degenerate_run = 0
        use_bland = False
        budget = current_budget()
        while True:
            if budget is not None:
                budget.charge_pivots()
            objective = -self.neg_obj
            if floor is not None and objective <= floor:
                return SparseStatus.OPTIMAL, objective
            entering = self._entering_column(use_bland)
            if entering is None:
                return SparseStatus.OPTIMAL, objective
            leaving: int | None = None
            best_ratio: Coeff | None = None
            for i in self.col_rows.get(entering, ()):
                coeff = self.rows[i][entering]
                if coeff > 0:
                    ratio = _div(self.rhs[i], coeff)
                    better = best_ratio is None or ratio < best_ratio
                    tie = best_ratio is not None and ratio == best_ratio
                    if better or (
                        tie
                        and leaving is not None
                        and self.basis[i] < self.basis[leaving]
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                return SparseStatus.UNBOUNDED, objective
            if best_ratio == 0:
                degenerate_run += 1
                if degenerate_run >= _DEGENERATE_PIVOT_LIMIT:
                    use_bland = True
            else:
                degenerate_run = 0
            self.pivot(leaving, entering)

    def _entering_column(self, use_bland: bool) -> int | None:
        blocked = self.blocked
        if use_bland:
            best: int | None = None
            for j, value in self.reduced.items():
                if value < 0 and j not in blocked:
                    if best is None or j < best:
                        best = j
            return best
        best = None
        best_value: Coeff = 0
        for j, value in self.reduced.items():
            if j in blocked:
                continue
            if value < best_value or (value == best_value != 0 and (best is None or j < best)):
                best = j
                best_value = value
        return best

    def basic_values(self) -> dict[int, Coeff]:
        return {basic: rhs for basic, rhs in zip(self.basis, self.rhs)}


# ---------------------------------------------------------------------------
# Presolve (interned port of repro.solver.simplex._presolve)
# ---------------------------------------------------------------------------


def _presolve_interned(
    rows: Sequence[SparseRow], free: frozenset[int]
) -> tuple[list[SparseRow], set[int]]:
    """Pinning + triviality reductions, iterated to a fixpoint.

    Same two sound rules as the dense presolve: a constraint forcing a
    single non-negative variable to zero removes the variable; a
    constraint non-negativity alone guarantees is dropped.
    """
    constraints = list(rows)
    pinned: set[int] = set()
    changed = True
    while changed:
        changed = False
        remaining: list[SparseRow] = []
        for row in constraints:
            if pinned and any(col in pinned for col in row.cols):
                entries = {
                    col: value
                    for col, value in row.items()
                    if col not in pinned
                }
                row = SparseRow.make(
                    entries, row.relation, row.const, row.label, row.origin
                )
            relation = row.relation
            if len(row.cols) == 1 and row.const == 0:
                col = row.cols[0]
                coeff = row.coeffs[0]
                if col not in free and (
                    relation is Relation.EQ
                    or (relation is Relation.LE and coeff > 0)
                    or (relation is Relation.GE and coeff < 0)
                ):
                    pinned.add(col)
                    changed = True
                    continue
            if not any(col in free for col in row.cols):
                if (
                    relation is Relation.GE
                    and row.const >= 0
                    and all(value >= 0 for value in row.coeffs)
                ):
                    continue
                if (
                    relation is Relation.LE
                    and row.const <= 0
                    and all(value <= 0 for value in row.coeffs)
                ):
                    continue
            if relation is Relation.EQ and not row.cols and row.const == 0:
                continue
            remaining.append(row)
        constraints = remaining
    return constraints, pinned


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def solve_interned(
    system: InternedSystem,
    objective: Mapping[int, Coeff] | None = None,
    sense: str = "min",
    free_variables: Iterable[int] = (),
    known_bound: Coeff | None = None,
) -> SparseResult:
    """Solve ``optimise objective subject to system`` exactly, sparsely.

    The contract mirrors :func:`repro.solver.simplex.solve_lp` — strict
    rows rejected, variables non-negative unless listed in
    ``free_variables``, ``known_bound`` an early-exit floor/ceiling the
    caller can prove — but unknowns are interned integer indices and
    all arithmetic runs on the int-first sparse representation.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK()
    budget = current_budget()
    if budget is not None:
        budget.charge_solver_call()
    if sense not in ("min", "max"):
        raise SolverError(f"sense must be 'min' or 'max', not {sense!r}")
    for row in system.rows:
        if row.relation.is_strict:
            raise SolverError(
                "strict inequalities are not LP constraints; sharpen them "
                "first (repro.solver.core cone helpers)"
            )
    num_vars = system.num_variables
    free = frozenset(free_variables)
    if objective is not None:
        unknown = [index for index in objective if not 0 <= index < num_vars]
        if unknown:
            raise SolverError(
                f"objective uses undeclared variable indices: {sorted(unknown)}"
            )

    presolved, pinned = _presolve_interned(system.rows, free)
    if objective is not None and pinned:
        objective = {
            index: value
            for index, value in objective.items()
            if index not in pinned
        }

    # Assign compact internal columns: one per active non-free variable,
    # a (pos, neg) pair per active free variable.
    column_of: dict[int, int] = {}
    neg_column_of: dict[int, int] = {}
    cursor = 0
    for index in range(num_vars):
        if index in pinned:
            continue
        column_of[index] = cursor
        cursor += 1
        if index in free:
            neg_column_of[index] = cursor
            cursor += 1
    num_structural = cursor

    # Standard-form rows with non-negative right-hand sides.
    raw_rows: list[tuple[dict[int, Coeff], Relation, Coeff]] = []
    for row in presolved:
        entries: dict[int, Coeff] = {}
        for index, coeff in row.items():
            entries[column_of[index]] = _norm(
                entries.get(column_of[index], 0) + coeff
            )
            if index in free:
                neg_col = neg_column_of[index]
                entries[neg_col] = _norm(entries.get(neg_col, 0) - coeff)
        entries = {col: value for col, value in entries.items() if value != 0}
        rhs = _norm(-row.const)
        relation = row.relation
        if rhs < 0:
            entries = {col: -value for col, value in entries.items()}
            rhs = -rhs
            relation = relation.flipped()
        raw_rows.append((entries, relation, rhs))

    num_slacks = sum(
        1 for _, relation, _ in raw_rows if relation is not Relation.EQ
    )
    num_artificials = sum(
        1 for _, relation, _ in raw_rows if relation is not Relation.LE
    )
    total_columns = num_structural + num_slacks + num_artificials

    rows: list[dict[int, Coeff]] = []
    rhs_values: list[Coeff] = []
    basis: list[int] = []
    artificial_columns: list[int] = []
    slack_cursor = num_structural
    artificial_cursor = num_structural + num_slacks
    for entries, relation, rhs in raw_rows:
        row_map = dict(entries)
        if relation is Relation.LE:
            row_map[slack_cursor] = 1
            basis.append(slack_cursor)
            slack_cursor += 1
        elif relation is Relation.GE:
            row_map[slack_cursor] = -1
            slack_cursor += 1
            row_map[artificial_cursor] = 1
            basis.append(artificial_cursor)
            artificial_columns.append(artificial_cursor)
            artificial_cursor += 1
        else:  # EQ
            row_map[artificial_cursor] = 1
            basis.append(artificial_cursor)
            artificial_columns.append(artificial_cursor)
            artificial_cursor += 1
        rows.append(row_map)
        rhs_values.append(rhs)

    tableau = _SparseTableau(rows, rhs_values, basis, total_columns)

    # ---- Phase 1: drive artificials to zero. -------------------------
    if artificial_columns:
        phase1_cost = {col: 1 for col in artificial_columns}
        status, value = tableau.minimize(phase1_cost, floor=0)
        if status is not SparseStatus.OPTIMAL or value > 0:
            return SparseResult(SparseStatus.INFEASIBLE, None, None)
        _evict_basic_artificials(
            tableau, set(artificial_columns), num_structural + num_slacks
        )
        tableau.blocked.update(artificial_columns)

    # ---- Phase 2: optimise the real objective. ------------------------
    if objective is None:
        cost: dict[int, Coeff] = {}
        objective_constant: Coeff = 0
        flip = False
        floor: Coeff | None = 0  # feasibility only: nothing to improve
    else:
        flip = sense == "max"
        cost = {}
        for index, coeff in objective.items():
            signed = -coeff if flip else coeff
            col = column_of[index]
            cost[col] = _norm(cost.get(col, 0) + signed)
            if index in free:
                neg_col = neg_column_of[index]
                cost[neg_col] = _norm(cost.get(neg_col, 0) - signed)
        cost = {col: value for col, value in cost.items() if value != 0}
        objective_constant = 0
        if known_bound is None:
            floor = None
        else:
            floor = _norm(known_bound)
            if flip:
                floor = -floor

    status, value = tableau.minimize(cost, floor=floor)
    if status is SparseStatus.UNBOUNDED:
        return SparseResult(SparseStatus.UNBOUNDED, None, None)

    basic = tableau.basic_values()
    values: dict[int, Coeff] = {}
    for index in range(num_vars):
        if index in pinned:
            values[index] = 0
        elif index in free:
            positive = basic.get(column_of[index], 0)
            negative = basic.get(neg_column_of[index], 0)
            values[index] = _norm(positive - negative)
        else:
            values[index] = basic.get(column_of[index], 0)

    objective_value = _norm((-value if flip else value) + objective_constant)
    return SparseResult(SparseStatus.OPTIMAL, objective_value, values)


def _evict_basic_artificials(
    tableau: _SparseTableau, artificial_columns: set[int], num_real_columns: int
) -> None:
    """Pivot zero-valued artificials out of the basis (degenerate rows);
    see the dense counterpart for why leaving a fully-zero row basic is
    sound once the column is blocked."""
    tableau.reduced = {}
    tableau.neg_obj = 0
    for i in range(len(tableau.rows)):
        if tableau.basis[i] not in artificial_columns:
            continue
        replacement = min(
            (j for j in tableau.rows[i] if j < num_real_columns),
            default=None,
        )
        if replacement is not None:
            tableau.pivot(i, replacement)


# ---------------------------------------------------------------------------
# Homogeneous helpers on the interned form (cone scaling, supports)
# ---------------------------------------------------------------------------


def _require_homogeneous(system: InternedSystem) -> None:
    if not system.is_homogeneous():
        raise SolverError(
            "this routine requires a homogeneous system; some row has a "
            "non-zero constant term"
        )


def sharpened_rows(system: InternedSystem) -> list[SparseRow]:
    """Strict homogeneous rows rewritten as non-strict LP rows.

    ``e > 0`` becomes ``e ≥ 1`` and ``e < 0`` becomes ``e ≤ −1``;
    sound for homogeneous systems by cone scaling (see
    :mod:`repro.solver.homogeneous`).
    """
    result: list[SparseRow] = []
    for row in system.rows:
        if row.relation is Relation.GT:
            result.append(
                SparseRow(
                    row.cols, row.coeffs, Relation.GE, -1, row.label, row.origin
                )
            )
        elif row.relation is Relation.LT:
            result.append(
                SparseRow(
                    row.cols, row.coeffs, Relation.LE, 1, row.label, row.origin
                )
            )
        else:
            result.append(row)
    return result


def interned_positive_solution(
    system: InternedSystem,
) -> dict[str, Fraction] | None:
    """Decide a homogeneous interned system that may contain strict rows.

    Returns a string-keyed rational witness (the boundary form), or
    ``None`` when infeasible.
    """
    _require_homogeneous(system)
    sharpened = InternedSystem(system.table, sharpened_rows(system))
    result = solve_interned(sharpened)
    if not result.is_feasible:
        return None
    return result.named_values(system.table)


def interned_maximal_support(
    system: InternedSystem,
    candidates: Iterable[str],
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal-support computation on the interned form.

    Same one-LP shadow-variable construction (and the same definitive
    contract on the candidates) as
    :func:`repro.solver.homogeneous.maximal_support`, without ever
    materialising string-keyed dicts: shadows are fresh interned
    columns, the probe rows are sparse, and the witness is translated
    back to names only on return.
    """
    _require_homogeneous(system)
    if system.has_strict_rows():
        raise SolverError(
            "maximal support expects a non-strict system; express "
            "positivity requirements through the probe instead"
        )
    table = system.table.copy()
    probe_indices = [table.index(name) for name in candidates]
    capped = InternedSystem(table, list(system.rows))
    objective: dict[int, Coeff] = {}
    for index in probe_indices:
        shadow = table.intern(f"t#{table.name(index)}")
        capped.add({shadow: 1, index: -1}, Relation.LE)
        capped.add({shadow: 1}, Relation.LE, -1)
        objective[shadow] = 1
    result = solve_interned(
        capped, objective=objective, sense="max", known_bound=len(probe_indices)
    )
    if not result.is_feasible:  # pragma: no cover - x = 0 is always feasible
        raise SolverError(
            "internal error: homogeneous system reported infeasible"
        )
    assert result.values is not None
    num_original = system.num_variables
    solution = {
        system.table.name(index): Fraction(result.values[index])
        for index in range(num_original)
    }
    support = frozenset(
        name for name, value in solution.items() if value > 0
    )
    return support, solution


__all__ = [
    "Coeff",
    "InternedSystem",
    "SparseResult",
    "SparseRow",
    "SparseStatus",
    "VariableTable",
    "interned_maximal_support",
    "interned_positive_solution",
    "sharpened_rows",
    "solve_interned",
    "_SparseTableau",
]
