"""Exact two-phase simplex over the rationals.

This is the workhorse behind every satisfiability and implication check:
Theorem 3.4 reduces reasoning in CR to feasibility tests on linear
systems, and (as the paper notes in Section 3.3) each such test is a
linear-programming feasibility problem.  The implementation is a
textbook dense tableau simplex with **Bland's anti-cycling rule**,
running entirely on :class:`fractions.Fraction` so the decision
procedure never depends on floating-point tolerances.

Variables are non-negative by default (the paper's unknowns count
instances); free variables can be named explicitly and are split into
differences of two non-negative variables internally.

Strict inequalities are *rejected* here: they are not expressible in an
LP.  The homogeneous layer (:mod:`repro.solver.homogeneous`) removes
them soundly by cone scaling before calling into this module.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.runtime.budget import current_budget
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation

_ZERO = Fraction(0)
_ONE = Fraction(1)

_FAULT_HOOK = None
"""Test seam: when set (by :mod:`repro.runtime.faults`), called with no
arguments at the top of every :func:`solve_lp`; may raise to simulate a
backend fault."""


class SimplexStatus(enum.Enum):
    """Outcome of a simplex run."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class SimplexResult:
    """Solution report of :func:`solve_lp`.

    ``assignment`` maps every variable of the input system to its value
    in the found vertex (``None`` unless the status is ``OPTIMAL``).
    ``objective_value`` is the optimal value of the objective, or 0 for
    pure feasibility runs.
    """

    status: SimplexStatus
    objective_value: Fraction | None
    assignment: dict[str, Fraction] | None

    @property
    def is_feasible(self) -> bool:
        return self.status is SimplexStatus.OPTIMAL


_DEGENERATE_PIVOT_LIMIT = 40
"""Consecutive degenerate (zero-step) pivots tolerated under the Dantzig
rule before switching to Bland's rule, whose anti-cycling guarantee then
ensures termination."""


class _Tableau:
    """Dense simplex tableau, pivoting sparse-aware.

    ``rows[i]`` holds the coefficients of the i-th basic-feasible
    equality, with the right-hand side in the last position.  ``basis[i]``
    is the column currently basic in row i.

    Pivoting uses the Dantzig rule (most negative reduced cost) for
    speed, falling back to Bland's rule after a run of degenerate pivots
    to guarantee termination.  Row updates iterate only over the
    non-zero entries of the pivot row — the generated systems are
    sparse, and this is the difference between milliseconds and minutes
    on exact rational arithmetic.
    """

    def __init__(
        self, rows: list[list[Fraction]], basis: list[int], num_columns: int
    ) -> None:
        self.rows = rows
        self.basis = basis
        self.num_columns = num_columns
        self.blocked: set[int] = set()
        # The reduced-cost vector of the most recent minimize() call;
        # kept current by pivot() and read by the certificate extractor.
        self.last_reduced: list[Fraction] = []

    def pivot(
        self, row_index: int, col_index: int, reduced: list[Fraction]
    ) -> None:
        """Make ``col_index`` basic in ``row_index``; update reduced costs."""
        pivot_row = self.rows[row_index]
        pivot_value = pivot_row[col_index]
        if pivot_value == 0:
            raise SolverError("internal error: pivot on a zero entry")
        if pivot_value != 1:
            inverse = _ONE / pivot_value
            pivot_row = [entry * inverse for entry in pivot_row]
            self.rows[row_index] = pivot_row
        support = [j for j, entry in enumerate(pivot_row) if entry != 0]
        for i, row in enumerate(self.rows):
            if i == row_index:
                continue
            factor = row[col_index]
            if factor != 0:
                for j in support:
                    row[j] -= factor * pivot_row[j]
        factor = reduced[col_index]
        if factor != 0:
            for j in support:
                reduced[j] -= factor * pivot_row[j]
        self.basis[row_index] = col_index

    def reduced_costs(self, cost: list[Fraction]) -> tuple[list[Fraction], Fraction]:
        """Reduced cost vector and current objective for min ``cost . x``.

        The returned vector has ``num_columns + 1`` entries; the last one
        is the *negated* objective value and is kept up to date by
        :meth:`pivot`.
        """
        reduced = list(cost) + [_ZERO]
        for row, basic in zip(self.rows, self.basis):
            basic_cost = cost[basic]
            if basic_cost != 0:
                for j, entry in enumerate(row):
                    if entry != 0:
                        reduced[j] -= basic_cost * entry
        return reduced, -reduced[-1]

    def minimize(
        self, cost: list[Fraction], floor: Fraction | None = None
    ) -> tuple[SimplexStatus, Fraction]:
        """Run simplex iterations minimising ``cost . x``.

        ``floor`` is a value the caller *knows* the objective cannot go
        below; the iteration stops as optimal the moment it is reached.
        This matters enormously on degenerate problems: phase 1 of a
        homogeneous system starts at its optimum (all artificials zero)
        and would otherwise burn hundreds of zero-step pivots polishing
        reduced costs.
        """
        reduced, objective = self.reduced_costs(cost)
        self.last_reduced = reduced
        degenerate_run = 0
        use_bland = False
        budget = current_budget()
        while True:
            if budget is not None:
                budget.charge_pivots()
            if floor is not None and -reduced[-1] <= floor:
                return SimplexStatus.OPTIMAL, -reduced[-1]
            entering = self._entering_column(reduced, use_bland)
            if entering is None:
                return SimplexStatus.OPTIMAL, -reduced[-1]
            leaving: int | None = None
            best_ratio: Fraction | None = None
            for i, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff > 0:
                    ratio = row[-1] / coeff
                    better = best_ratio is None or ratio < best_ratio
                    tie = best_ratio is not None and ratio == best_ratio
                    if better or (
                        tie
                        and leaving is not None
                        and self.basis[i] < self.basis[leaving]
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                return SimplexStatus.UNBOUNDED, -reduced[-1]
            if best_ratio == 0:
                degenerate_run += 1
                if degenerate_run >= _DEGENERATE_PIVOT_LIMIT:
                    use_bland = True
            else:
                degenerate_run = 0
            self.pivot(leaving, entering, reduced)

    def _entering_column(
        self, reduced: list[Fraction], use_bland: bool
    ) -> int | None:
        if use_bland:
            for j in range(self.num_columns):
                if j not in self.blocked and reduced[j] < 0:
                    return j
            return None
        best: int | None = None
        best_value = _ZERO
        for j in range(self.num_columns):
            if j not in self.blocked and reduced[j] < best_value:
                best = j
                best_value = reduced[j]
        return best

    def basic_values(self) -> dict[int, Fraction]:
        """Current value of each basic column."""
        return {basic: row[-1] for basic, row in zip(self.basis, self.rows)}


def _presolve(
    system: LinearSystem, free_variables: frozenset[str]
) -> tuple[list[Constraint], set[str]]:
    """Cheap presolve exploiting the implicit non-negativity of variables.

    Two sound reductions, iterated to a fixpoint:

    * **pinning** — a constraint forcing a single non-negative variable
      to zero (``c·x = 0``, ``x ≤ 0``) removes the variable entirely;
    * **triviality** — a constraint that non-negativity alone already
      guarantees (``Σ aᵢxᵢ + b ≥ 0`` with ``aᵢ, b ≥ 0``, or the ``≤``
      mirror image) is dropped.

    The generated disequation systems are full of both patterns (the
    explicit non-negativity rows of group 3, the forced-zero rows of
    the acceptability fixpoint and of Theorem 3.4's ``Ψ_Z``), so this
    routinely shrinks the tableau by an order of magnitude.

    Returns the surviving constraints (with pinned variables already
    substituted away) and the set of pinned variable names.
    """
    constraints = list(system.constraints)
    pinned: set[str] = set()
    changed = True
    while changed:
        changed = False
        remaining: list[Constraint] = []
        for constraint in constraints:
            coeffs = {
                name: value
                for name, value in constraint.expr.coefficients.items()
                if name not in pinned
            }
            const = constraint.expr.constant_term
            relation = constraint.relation
            if len(coeffs) == 1 and const == 0:
                ((name, coeff),) = coeffs.items()
                if name not in free_variables and (
                    relation is Relation.EQ
                    or (relation is Relation.LE and coeff > 0)
                    or (relation is Relation.GE and coeff < 0)
                ):
                    pinned.add(name)
                    changed = True
                    continue
            if not any(name in free_variables for name in coeffs):
                if (
                    relation is Relation.GE
                    and const >= 0
                    and all(value >= 0 for value in coeffs.values())
                ):
                    continue
                if (
                    relation is Relation.LE
                    and const <= 0
                    and all(value <= 0 for value in coeffs.values())
                ):
                    continue
            if relation is Relation.EQ and not coeffs and const == 0:
                continue
            remaining.append(
                Constraint(LinExpr(coeffs, const), relation, constraint.label)
            )
        constraints = remaining
    return constraints, pinned


def _split_free_variables(
    system: LinearSystem, free_variables: frozenset[str]
) -> tuple[list[Constraint], list[str]]:
    """Rewrite free variables as differences of fresh non-negative pairs.

    Returns the rewritten constraints and the ordered list of internal
    (all non-negative) variable names.
    """
    internal_names: list[str] = []
    for name in system.variables:
        if name in free_variables:
            internal_names.append(f"{name}#pos")
            internal_names.append(f"{name}#neg")
        else:
            internal_names.append(name)

    rewritten: list[Constraint] = []
    for constraint in system.constraints:
        coeffs: dict[str, Fraction] = {}
        for name, coeff in constraint.expr.coefficients.items():
            if name in free_variables:
                coeffs[f"{name}#pos"] = coeffs.get(f"{name}#pos", _ZERO) + coeff
                coeffs[f"{name}#neg"] = coeffs.get(f"{name}#neg", _ZERO) - coeff
            else:
                coeffs[name] = coeffs.get(name, _ZERO) + coeff
        rewritten.append(
            Constraint(
                LinExpr(coeffs, constraint.expr.constant_term),
                constraint.relation,
                constraint.label,
            )
        )
    return rewritten, internal_names


def solve_lp(
    system: LinearSystem,
    objective: LinExpr | None = None,
    sense: str = "min",
    free_variables: Iterable[str] = (),
    known_bound: Fraction | int | None = None,
) -> SimplexResult:
    """Solve ``optimise objective subject to system`` exactly.

    Parameters
    ----------
    system:
        Constraints; strict relations are rejected (see module docs).
        Every variable not listed in ``free_variables`` is implicitly
        constrained to be ≥ 0.
    objective:
        Linear objective; ``None`` means a pure feasibility check.
    sense:
        ``"min"`` or ``"max"``.
    free_variables:
        Names allowed to take negative values.
    known_bound:
        A bound the caller can *prove* the objective never passes (a
        lower bound when minimising, an upper bound when maximising).
        Reaching it ends the iteration immediately — a large saving on
        degenerate problems.  Must be sound: a wrong bound yields a
        sub-optimal "optimum".

    Returns
    -------
    SimplexResult
        With status ``OPTIMAL`` (feasible, optimum attained),
        ``INFEASIBLE``, or ``UNBOUNDED``.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK()
    budget = current_budget()
    if budget is not None:
        budget.charge_solver_call()
    if sense not in ("min", "max"):
        raise SolverError(f"sense must be 'min' or 'max', not {sense!r}")
    for constraint in system.constraints:
        if constraint.relation.is_strict:
            raise SolverError(
                "strict inequalities are not LP constraints; use "
                "repro.solver.homogeneous for homogeneous systems with "
                "strict constraints"
            )

    free = frozenset(free_variables)
    if objective is not None:
        unknown = set(objective.variables()) - set(system.variables)
        if unknown:
            raise SolverError(
                f"objective uses undeclared variables: {sorted(unknown)}"
            )
    presolved, pinned = _presolve(system, free)
    active_names = [name for name in system.variables if name not in pinned]
    reduced_system = LinearSystem(presolved, active_names)
    constraints, internal_names = _split_free_variables(reduced_system, free)
    column_of = {name: j for j, name in enumerate(internal_names)}
    if objective is not None and pinned:
        # Pinned variables are zero in every feasible point; their
        # objective terms contribute nothing.
        objective = LinExpr(
            {
                name: coeff
                for name, coeff in objective.coefficients.items()
                if name not in pinned
            },
            objective.constant_term,
        )

    # Build rows in standard form: coeffs . x (REL) rhs with rhs >= 0.
    raw_rows: list[tuple[list[Fraction], Relation, Fraction]] = []
    for constraint in constraints:
        coeffs = [_ZERO] * len(internal_names)
        for name, coeff in constraint.expr.coefficients.items():
            coeffs[column_of[name]] += coeff
        rhs = -constraint.expr.constant_term
        relation = constraint.relation
        if rhs < 0:
            coeffs = [-c for c in coeffs]
            rhs = -rhs
            relation = relation.flipped()
        raw_rows.append((coeffs, relation, rhs))

    num_structural = len(internal_names)
    num_slacks = sum(
        1 for _, relation, _ in raw_rows if relation is not Relation.EQ
    )
    # Artificials are needed for EQ and GE rows; LE rows start with their
    # slack basic.
    num_artificials = sum(
        1 for _, relation, _ in raw_rows if relation is not Relation.LE
    )

    total_columns = num_structural + num_slacks + num_artificials
    rows: list[list[Fraction]] = []
    basis: list[int] = []
    artificial_columns: list[int] = []
    slack_cursor = num_structural
    artificial_cursor = num_structural + num_slacks

    for coeffs, relation, rhs in raw_rows:
        row = list(coeffs) + [_ZERO] * (total_columns - num_structural) + [rhs]
        if relation is Relation.LE:
            row[slack_cursor] = _ONE
            basis.append(slack_cursor)
            slack_cursor += 1
        elif relation is Relation.GE:
            row[slack_cursor] = -_ONE
            slack_cursor += 1
            row[artificial_cursor] = _ONE
            basis.append(artificial_cursor)
            artificial_columns.append(artificial_cursor)
            artificial_cursor += 1
        else:  # EQ
            row[artificial_cursor] = _ONE
            basis.append(artificial_cursor)
            artificial_columns.append(artificial_cursor)
            artificial_cursor += 1
        rows.append(row)

    tableau = _Tableau(rows, basis, total_columns)

    # ---- Phase 1: drive artificials to zero. -------------------------
    if artificial_columns:
        phase1_cost = [_ZERO] * total_columns
        for col in artificial_columns:
            phase1_cost[col] = _ONE
        # The phase-1 objective (a sum of non-negative artificials) can
        # never go below zero, so 0 is a valid floor.
        status, value = tableau.minimize(phase1_cost, floor=_ZERO)
        if status is not SimplexStatus.OPTIMAL or value > 0:
            return SimplexResult(SimplexStatus.INFEASIBLE, None, None)
        _evict_basic_artificials(tableau, set(artificial_columns), num_structural + num_slacks)
        tableau.blocked.update(artificial_columns)

    # ---- Phase 2: optimise the real objective. ------------------------
    if objective is None:
        cost = [_ZERO] * total_columns
        objective_constant = _ZERO
        flip = False
        floor: Fraction | None = _ZERO  # feasibility only: nothing to improve
    else:
        flip = sense == "max"
        cost = [_ZERO] * total_columns
        for name, coeff in objective.coefficients.items():
            signed = -coeff if flip else coeff
            if name in free:
                cost[column_of[f"{name}#pos"]] += signed
                cost[column_of[f"{name}#neg"]] -= signed
            else:
                cost[column_of[name]] += signed
        objective_constant = objective.constant_term
        if known_bound is None:
            floor = None
        else:
            # The floor applies to the *internal* minimised objective,
            # without the constant term and negated when maximising.
            floor = Fraction(known_bound) - objective_constant
            if flip:
                floor = -floor

    status, value = tableau.minimize(cost, floor=floor)
    if status is SimplexStatus.UNBOUNDED:
        return SimplexResult(SimplexStatus.UNBOUNDED, None, None)

    values = tableau.basic_values()
    assignment: dict[str, Fraction] = {}
    for name in system.variables:
        if name in pinned:
            assignment[name] = _ZERO
        elif name in free:
            positive = values.get(column_of[f"{name}#pos"], _ZERO)
            negative = values.get(column_of[f"{name}#neg"], _ZERO)
            assignment[name] = positive - negative
        else:
            assignment[name] = values.get(column_of[name], _ZERO)

    objective_value = (-value if flip else value) + objective_constant
    return SimplexResult(SimplexStatus.OPTIMAL, objective_value, assignment)


def _evict_basic_artificials(
    tableau: _Tableau, artificial_columns: set[int], num_real_columns: int
) -> None:
    """Pivot zero-valued artificial variables out of the basis.

    After a successful phase 1 every artificial is zero; any still basic
    sits in a degenerate row.  Pivot on any non-artificial column with a
    non-zero entry; if the whole row is zero outside the artificials the
    row is redundant and can be neutralised by leaving the artificial
    basic at value zero (it is then blocked from re-entering, which is
    enough for correctness).
    """
    for i in range(len(tableau.rows)):
        if tableau.basis[i] not in artificial_columns:
            continue
        replacement = next(
            (
                j
                for j in range(num_real_columns)
                if tableau.rows[i][j] != 0
            ),
            None,
        )
        if replacement is not None:
            dummy_reduced = [_ZERO] * (tableau.num_columns + 1)
            tableau.pivot(i, replacement, dummy_reduced)
