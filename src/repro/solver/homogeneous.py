"""Decision routines for homogeneous systems of linear disequations.

The systems `Ψ_S` generated from a CR-schema (Section 3.2 of the paper)
are homogeneous with integer coefficients over non-negative unknowns.
Two classical facts make them pleasant to decide exactly:

1. **Cone scaling** — the solution set is a convex cone: any positive
   multiple of a solution is a solution, and sums of solutions are
   solutions.  Hence a strict constraint ``e > 0`` is satisfiable
   together with the system iff the non-strict system plus ``e >= 1``
   is, which *is* an LP.

2. **Rational = integer feasibility** — scaling a rational solution by
   the least common multiple of its denominators yields an integer
   solution; the cardinality unknowns of the paper therefore never need
   integer programming.

This module packages both facts, plus the *maximal support* computation
that powers the fixpoint satisfiability engine: because supports of cone
points are closed under union (add the witnesses), there is a unique
largest set of unknowns that can be simultaneously positive, computable
with one LP per unknown.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SolverError
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation, term
from repro.solver.simplex import solve_lp
from repro.utils.rationals import common_denominator_scale

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class HomogeneousWitness:
    """Result of :func:`find_positive_solution`.

    When ``feasible``, ``rational`` is a solution of the original system
    (strict constraints satisfied strictly) and ``integral`` is the same
    solution scaled to non-negative integers.
    """

    feasible: bool
    rational: dict[str, Fraction] | None
    integral: dict[str, int] | None


def _require_homogeneous(system: LinearSystem) -> None:
    if not system.is_homogeneous():
        offending = next(
            c for c in system.constraints if not c.is_homogeneous()
        )
        raise SolverError(
            "this routine requires a homogeneous system; constraint "
            f"{offending.pretty()!r} has a non-zero constant term"
        )


def _sharpened(constraint: Constraint) -> Constraint:
    """Rewrite a strict homogeneous constraint as a non-strict LP one.

    ``e > 0`` becomes ``e >= 1`` and ``e < 0`` becomes ``e <= -1``;
    correct for homogeneous systems by cone scaling.
    """
    if constraint.relation is Relation.GT:
        return Constraint(
            constraint.expr - 1, Relation.GE, constraint.label, constraint.origin
        )
    if constraint.relation is Relation.LT:
        return Constraint(
            constraint.expr + 1, Relation.LE, constraint.label, constraint.origin
        )
    return constraint


def find_positive_solution(system: LinearSystem) -> HomogeneousWitness:
    """Decide a homogeneous system that may contain strict constraints.

    Returns a witness assignment over exactly the system's variables.
    All variables are taken non-negative (the unknowns of the paper
    count instances of compound classes and relationships).
    """
    _require_homogeneous(system)
    sharpened = LinearSystem(
        (_sharpened(c) for c in system.constraints), system.variables
    )
    result = solve_lp(sharpened)
    if not result.is_feasible:
        return HomogeneousWitness(False, None, None)
    assert result.assignment is not None
    rational = dict(result.assignment)
    return HomogeneousWitness(True, rational, integerize(rational))


def integerize(solution: Mapping[str, Fraction]) -> dict[str, int]:
    """Scale a rational cone point to the integers.

    Multiplies by the least common multiple of the denominators — the
    smallest uniform scaling that lands every coordinate on an integer.
    """
    scale = common_denominator_scale(solution.values())
    return {name: int(value * scale) for name, value in solution.items()}


def maximal_support(
    system: LinearSystem,
    candidates: Iterable[str] | None = None,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """The largest set of unknowns simultaneously positive in a solution.

    Parameters
    ----------
    system:
        Homogeneous, non-strict system; all variables non-negative.
    candidates:
        Restrict the unknowns whose positivity is probed (the returned
        solution may still make other unknowns positive; the returned
        support reflects the actual solution).  Defaults to all
        variables.

    Returns
    -------
    (support, solution)
        ``support`` is exactly the set of variables positive in
        ``solution``, and no solution of the system makes a variable
        outside ``support ∪ (variables \\ candidates)`` positive beyond
        what ``solution`` exhibits: for probed variables, membership is
        definitive.

    Notes
    -----
    Correctness rests on the cone structure: if ``x`` and ``y`` are
    solutions then so is ``x + y``, whose support is the union — so
    there is a unique maximal support ``S*``, and it can be read off a
    *single* LP.  Introduce a capped shadow ``t_v`` per probed unknown
    with ``0 ≤ t_v ≤ x_v`` and ``t_v ≤ 1``, and maximise ``Σ t_v``:
    scaling a full-support cone point up shows the optimum is
    ``|S* ∩ candidates|`` with ``t_v = 1`` exactly on ``S* ∩ candidates``,
    while any feasible ``t_v > 0`` forces ``x_v > 0``.  The ``x`` part
    of the optimal vertex is the witness.
    """
    _require_homogeneous(system)
    if system.has_strict_constraints():
        raise SolverError(
            "maximal_support expects a non-strict system; express "
            "positivity requirements through the probe instead"
        )
    probe_list = (
        list(candidates) if candidates is not None else list(system.variables)
    )
    shadow = {name: f"t#{name}" for name in probe_list}
    capped = system.copy()
    objective = LinExpr()
    for name, shadow_name in shadow.items():
        capped.add(Constraint(term(shadow_name) - term(name), Relation.LE))
        capped.add(Constraint(term(shadow_name) - 1, Relation.LE))
        objective = objective + term(shadow_name)
    # Each shadow is capped at 1, so the probe count bounds the
    # objective — a sound early-exit ceiling for the simplex.
    result = solve_lp(
        capped, objective=objective, sense="max", known_bound=len(shadow)
    )
    if not result.is_feasible:  # pragma: no cover - x = 0 is always feasible
        raise SolverError("internal error: homogeneous system reported infeasible")
    assert result.assignment is not None
    solution = {
        name: result.assignment[name] for name in system.variables
    }
    support = frozenset(name for name, value in solution.items() if value > 0)
    # The probe is definitive for the candidates; other unknowns may be
    # positive in the witness only as a side effect.
    missing = {
        name
        for name, shadow_name in shadow.items()
        if result.assignment[shadow_name] < 1 and name in support
    }
    assert not missing, f"support probe inconsistent for {sorted(missing)}"
    return support, solution


__all__ = [
    "HomogeneousWitness",
    "find_positive_solution",
    "integerize",
    "maximal_support",
]
