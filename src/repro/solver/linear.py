"""Linear expressions, constraints and systems over named unknowns.

This is the little language in which the paper's disequation systems
(Figure 5) are written down.  Unknowns are plain strings; coefficients
and constants are exact rationals.  Expressions support natural Python
arithmetic and comparisons::

    >>> x, y = term("x"), term("y")
    >>> c = 2 * x - y <= 4
    >>> c.pretty()
    '2*x - y <= 4'

Comparisons build :class:`Constraint` values; a :class:`LinearSystem`
is an ordered collection of constraints with provenance labels, which
the schema-debugging extension uses to map disequations back to the
schema constraints that produced them.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from fractions import Fraction
from typing import Any

from repro.errors import SolverError

Coefficient = Fraction | int
Assignment = Mapping[str, Fraction]


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Immutable.  Zero-coefficient terms are dropped eagerly so equality of
    expressions is equality of their canonical forms.
    """

    __slots__ = ("_coeffs", "_constant")

    def __init__(
        self,
        coeffs: Mapping[str, Coefficient] | None = None,
        constant: Coefficient = 0,
    ) -> None:
        cleaned: dict[str, Fraction] = {}
        for name, coeff in (coeffs or {}).items():
            value = Fraction(coeff)
            if value != 0:
                cleaned[name] = value
        self._coeffs = cleaned
        self._constant = Fraction(constant)

    @classmethod
    def constant(cls, value: Coefficient) -> LinExpr:
        """The constant expression ``value``."""
        return cls({}, value)

    @property
    def coefficients(self) -> dict[str, Fraction]:
        """A copy of the variable → coefficient mapping (no zeros)."""
        return dict(self._coeffs)

    @property
    def constant_term(self) -> Fraction:
        return self._constant

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of ``name`` (0 if absent)."""
        return self._coeffs.get(name, Fraction(0))

    def variables(self) -> tuple[str, ...]:
        """The variables with non-zero coefficient, sorted."""
        return tuple(sorted(self._coeffs))

    def is_constant(self) -> bool:
        return not self._coeffs

    def evaluate(self, assignment: Assignment) -> Fraction:
        """Value of the expression under a (total) variable assignment."""
        total = self._constant
        for name, coeff in self._coeffs.items():
            total += coeff * Fraction(assignment[name])
        return total

    # -- arithmetic ----------------------------------------------------

    @staticmethod
    def _coerce(other: LinExpr | Coefficient) -> LinExpr:
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, (int, Fraction)):
            return LinExpr.constant(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: LinExpr | Coefficient) -> LinExpr:
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        coeffs = dict(self._coeffs)
        for name, coeff in rhs._coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        return LinExpr(coeffs, self._constant + rhs._constant)

    __radd__ = __add__

    def __sub__(self, other: LinExpr | Coefficient) -> LinExpr:
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: Coefficient) -> LinExpr:
        return LinExpr.constant(other) - self

    def __neg__(self) -> LinExpr:
        return LinExpr(
            {name: -coeff for name, coeff in self._coeffs.items()},
            -self._constant,
        )

    def __mul__(self, scalar: Coefficient) -> LinExpr:
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        factor = Fraction(scalar)
        return LinExpr(
            {name: coeff * factor for name, coeff in self._coeffs.items()},
            self._constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Coefficient) -> LinExpr:
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        return self * (Fraction(1) / Fraction(scalar))

    # -- comparisons build constraints ---------------------------------

    def __le__(self, other: LinExpr | Coefficient) -> Constraint:
        return Constraint(self - self._coerce(other), Relation.LE)

    def __ge__(self, other: LinExpr | Coefficient) -> Constraint:
        return Constraint(self - self._coerce(other), Relation.GE)

    def __lt__(self, other: LinExpr | Coefficient) -> Constraint:
        return Constraint(self - self._coerce(other), Relation.LT)

    def __gt__(self, other: LinExpr | Coefficient) -> Constraint:
        return Constraint(self - self._coerce(other), Relation.GT)

    def equals(self, other: LinExpr | Coefficient) -> Constraint:
        """Build the equality constraint ``self == other``.

        Named method rather than ``__eq__`` so expressions keep normal
        Python equality semantics (and stay usable in sets and dicts).
        """
        return Constraint(self - self._coerce(other), Relation.EQ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return (
            self._coeffs == other._coeffs and self._constant == other._constant
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._coeffs.items()), self._constant))

    # -- rendering -----------------------------------------------------

    def pretty(self) -> str:
        """Human-readable form, e.g. ``2*x - y + 3``."""
        parts: list[str] = []
        for name in sorted(self._coeffs):
            coeff = self._coeffs[name]
            magnitude = abs(coeff)
            rendered = name if magnitude == 1 else f"{magnitude}*{name}"
            if not parts:
                parts.append(rendered if coeff > 0 else f"-{rendered}")
            else:
                parts.append(f"+ {rendered}" if coeff > 0 else f"- {rendered}")
        if self._constant != 0 or not parts:
            value = self._constant
            if not parts:
                parts.append(str(value))
            elif value > 0:
                parts.append(f"+ {value}")
            else:
                parts.append(f"- {-value}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"LinExpr({self.pretty()!r})"


def term(name: str, coefficient: Coefficient = 1) -> LinExpr:
    """The expression ``coefficient * name``."""
    return LinExpr({name: coefficient})


class Relation(enum.Enum):
    """Comparison sense of a constraint, relative to zero."""

    LE = "<="
    GE = ">="
    EQ = "=="
    LT = "<"
    GT = ">"

    @property
    def is_strict(self) -> bool:
        return self in (Relation.LT, Relation.GT)

    def flipped(self) -> Relation:
        """The relation obtained by negating both sides."""
        mapping = {
            Relation.LE: Relation.GE,
            Relation.GE: Relation.LE,
            Relation.LT: Relation.GT,
            Relation.GT: Relation.LT,
            Relation.EQ: Relation.EQ,
        }
        return mapping[self]


class Constraint:
    """A constraint ``expr REL 0`` with an optional provenance label.

    The normal form keeps everything on the left-hand side.  ``label``
    and ``origin`` carry provenance: the CR system generator labels each
    disequation with the schema constraint that produced it so that the
    debugging extension can report minimal unsatisfiable *schema*
    constraint sets rather than raw disequations.
    """

    __slots__ = ("expr", "relation", "label", "origin")

    def __init__(
        self,
        expr: LinExpr,
        relation: Relation,
        label: str | None = None,
        origin: Any = None,
    ) -> None:
        self.expr = expr
        self.relation = relation
        self.label = label
        self.origin = origin

    def labelled(self, label: str, origin: Any = None) -> Constraint:
        """A copy of this constraint carrying provenance."""
        return Constraint(self.expr, self.relation, label, origin)

    def variables(self) -> tuple[str, ...]:
        return self.expr.variables()

    def is_homogeneous(self) -> bool:
        """Whether the constant term is zero (Section 3.2 systems are)."""
        return self.expr.constant_term == 0

    def is_satisfied_by(self, assignment: Assignment) -> bool:
        value = self.expr.evaluate(assignment)
        if self.relation is Relation.LE:
            return value <= 0
        if self.relation is Relation.GE:
            return value >= 0
        if self.relation is Relation.EQ:
            return value == 0
        if self.relation is Relation.LT:
            return value < 0
        return value > 0

    def negated(self) -> Constraint:
        """The complement constraint (``<=`` becomes ``>`` and so on)."""
        mapping = {
            Relation.LE: Relation.GT,
            Relation.GE: Relation.LT,
            Relation.LT: Relation.GE,
            Relation.GT: Relation.LE,
        }
        if self.relation is Relation.EQ:
            raise SolverError("cannot negate an equality into one constraint")
        return Constraint(self.expr, mapping[self.relation], self.label)

    def non_strict_relaxation(self) -> Constraint:
        """``<`` becomes ``<=`` and ``>`` becomes ``>=``; others unchanged."""
        mapping = {Relation.LT: Relation.LE, Relation.GT: Relation.GE}
        relation = mapping.get(self.relation, self.relation)
        return Constraint(self.expr, relation, self.label, self.origin)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.expr == other.expr and self.relation is other.relation

    def __hash__(self) -> int:
        return hash((self.expr, self.relation))

    def pretty(self) -> str:
        """Render with negative terms moved right, like the paper's figures.

        ``Constraint(x - y, LE)`` renders as ``x <= y`` rather than
        ``x - y <= 0``.
        """
        positives: dict[str, Fraction] = {}
        negatives: dict[str, Fraction] = {}
        for name, coeff in self.expr.coefficients.items():
            if coeff > 0:
                positives[name] = coeff
            else:
                negatives[name] = -coeff
        lhs = LinExpr(positives)
        rhs = LinExpr(negatives, -self.expr.constant_term)
        return f"{lhs.pretty()} {self.relation.value} {rhs.pretty()}"

    def __repr__(self) -> str:
        suffix = f", label={self.label!r}" if self.label else ""
        return f"Constraint({self.pretty()!r}{suffix})"


class LinearSystem:
    """An ordered set of constraints over a declared variable universe.

    Variables may be declared explicitly (so a system can mention
    variables no constraint uses — e.g. unknowns of consistent compound
    classes that appear only in non-negativity constraints); any
    variable used by a constraint is declared implicitly.
    """

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
        variables: Iterable[str] = (),
    ) -> None:
        self._constraints: list[Constraint] = []
        self._variables: dict[str, None] = {}  # insertion-ordered set
        for name in variables:
            self._variables.setdefault(name)
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        """Append a constraint, declaring its variables."""
        self._constraints.append(constraint)
        for name in constraint.variables():
            self._variables.setdefault(name)

    def declare(self, name: str) -> None:
        """Declare a variable without constraining it."""
        self._variables.setdefault(name)

    def extend(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._variables)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def is_homogeneous(self) -> bool:
        """Whether every constraint has zero constant term."""
        return all(constraint.is_homogeneous() for constraint in self._constraints)

    def has_strict_constraints(self) -> bool:
        return any(c.relation.is_strict for c in self._constraints)

    def is_satisfied_by(self, assignment: Assignment) -> bool:
        """Whether ``assignment`` satisfies every constraint."""
        return all(c.is_satisfied_by(assignment) for c in self._constraints)

    def violated_constraints(self, assignment: Assignment) -> list[Constraint]:
        """The constraints ``assignment`` violates, in system order."""
        return [c for c in self._constraints if not c.is_satisfied_by(assignment)]

    def copy(self) -> LinearSystem:
        return LinearSystem(self._constraints, self._variables)

    def with_constraints(self, extra: Iterable[Constraint]) -> LinearSystem:
        """A copy of this system with ``extra`` appended."""
        result = self.copy()
        result.extend(extra)
        return result

    def restricted_to(self, labels: Sequence[str | None]) -> LinearSystem:
        """The sub-system whose constraint labels are in ``labels``.

        Used by the MUS extractor: label sets identify candidate subsets
        of schema constraints.
        """
        wanted = set(labels)
        kept = [c for c in self._constraints if c.label in wanted]
        return LinearSystem(kept, self._variables)

    def pretty(self) -> str:
        """All constraints, one per line, in Figure-5 style."""
        return "\n".join(constraint.pretty() for constraint in self._constraints)

    def __repr__(self) -> str:
        return (
            f"LinearSystem({len(self._constraints)} constraints, "
            f"{len(self._variables)} variables)"
        )
