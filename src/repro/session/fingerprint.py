"""Content-addressed fingerprints of CR-schemas.

A fingerprint is a SHA-256 digest of a canonical, order-normalised
encoding of everything *semantically relevant* in a schema: classes,
relationship signatures, ISA statements, cardinality declarations, and
the Section-5 extension statements.  The schema's display ``name`` is
deliberately excluded — relabelling a schema does not change any
verdict, so it must not invalidate cached reasoning state.

Collections that the data model treats as unordered (the cardinality
map, disjointness groups, covering statements, the set of ISA edges)
are sorted before hashing, so semantically identical declarations hash
identically regardless of declaration order.  Class and relationship
*declaration order* is kept: it pins the compound-class numbering used
by every cached artifact, which keeps a cache entry's expansion,
disequation system and witnesses directly reusable for any schema that
fingerprints equal.

Used by :class:`repro.session.ReasoningSession` to key its cache of
expansions, derived systems ``Ψ_S`` and satisfiability state; any edit
to a schema produces a new fingerprint and therefore a cold cache
entry (invalidation is free because schemas are immutable).
"""

from __future__ import annotations

import hashlib
import json

from repro.cr.schema import CRSchema


def canonical_form(schema: CRSchema) -> dict:
    """The fingerprinted content, as a JSON-serialisable dictionary."""
    return {
        "classes": list(schema.classes),
        "relationships": [
            [rel.name, [[role, cls] for role, cls in rel.signature]]
            for rel in schema.relationships
        ],
        "isa": sorted([sub, sup] for sub, sup in schema.isa_statements),
        "cards": sorted(
            [cls, rel, role, card.minc, card.maxc]
            for (cls, rel, role), card in schema.declared_cards.items()
        ),
        "disjointness": sorted(
            sorted(group) for group in set(schema.disjointness_groups)
        ),
        "coverings": sorted(
            [covered, sorted(coverers)]
            for covered, coverers in set(schema.coverings)
        ),
    }


def schema_fingerprint(schema: CRSchema) -> str:
    """Hex SHA-256 digest of the schema's canonical form."""
    encoded = json.dumps(
        canonical_form(schema), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


__all__ = ["canonical_form", "schema_fingerprint"]
