"""Cached reasoning sessions: amortise one expansion over many queries.

The Section-3.1 expansion is exponential in the class set, and the
stateless entry points (:func:`repro.cr.satisfiability.is_class_satisfiable`,
:func:`repro.cr.implication.implies`) rebuild it — and re-run the
acceptability fixpoint — on every call.  A :class:`ReasoningSession`
front-ends the same decision procedures with a content-addressed cache
(:mod:`repro.session.fingerprint`, :mod:`repro.session.cache`): the
first query against a schema builds the expansion, the pruned system
``Ψ_S``, and the maximal acceptable support once; every further
satisfiability or implication query against that schema — in any order,
batched or not — is answered from the cached support without touching
the solver.

Soundness of the warm path is the same mathematics the one-shot API
relies on: the maximal acceptable support is the union of the supports
of *all* acceptable solutions, so "some acceptable solution makes one
of these unknowns positive" (Theorem 3.3 for satisfiability, Section 4
for ISA and disjointness implication) is exactly "the target set meets
the support", and the cached full-support integer witness is itself an
acceptable solution positive on every support unknown — one witness
serves every satisfiable class and every counter-model at once.
Cardinality implications extend the schema with the Section-4
exceptional class; the extended schema is cached under its own
fingerprint, so repeated cardinality queries are warm as well.

Budgets (:mod:`repro.runtime.budget`) thread through unchanged: each
entry point takes ``budget=`` with the same degrade-to-UNKNOWN contract
as the stateless API, cache stages charge the ambient budget as they
build, and a budget that dies mid-build never publishes partial state —
the next query resumes from the last completed stage.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TypeVar

from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.construction import construct_model
from repro.cr.expansion import ExpansionLimits
from repro.cr.implication import (
    ImplicationQuery,
    ImplicationResult,
    _unknown_implication,
    exceptional_schema,
    strip_class,
)
from repro.cr.satisfiability import (
    SatisfiabilityResult,
    _unknown_result,
    acceptable_with_positive,
    class_targets,
    diagnostic_result,
)
from repro.cr.schema import Card, CRSchema, UNBOUNDED
from repro.errors import BudgetExceededError, ReproError, SchemaError
from repro.pipeline import STAGE_SOLVE, STAGE_VERDICT, stage
from repro.runtime.budget import Budget, run_governed
from repro.runtime.fallback import DEFAULT_FALLBACK, FallbackPolicy
from repro.runtime.outcome import Verdict
from repro.session.cache import SchemaArtifacts, SessionCache
from repro.session.fingerprint import schema_fingerprint
from repro.solver.stats import search_stats_sink

_R = TypeVar("_R")

ENGINE = "session"
"""Engine tag carried by results answered from cached session state."""


def _pinned_exponential_engine() -> str | None:
    """The active backend's name when it is a Theorem-3.4 decision
    engine (``pruned``/``naive``), else ``None``.

    Pinning such a backend means "decide through the zero-set walk",
    not "solve individual LPs with it" — mirroring
    ``repro.cr.satisfiability._resolve_engine`` for the stateless API.
    """
    from repro.solver.registry import active_backend_name, get_backend

    name = active_backend_name()
    if get_backend(name).capabilities.exponential:
        return name
    return None

SESSION_STATS_KEYS: tuple[str, ...] = (
    "queries",
    "hits",
    "misses",
    "evictions",
    "analysis_runs",
    "analysis_short_circuits",
    "expansion_builds",
    "system_builds",
    "fixpoint_runs",
    "store_hits",
    "store_misses",
    "store_writes",
    "store_write_failures",
    "components_total",
    "components_reused",
    "components_rebuilt",
    "zero_sets_enumerated",
    "pruned_by_orbit",
    "pruned_by_nogood",
    "orbits_found",
)
"""The :class:`SessionStats` field names, in ``as_dict`` order.  The
parallel fan-out and the serve daemon sum per-worker / per-request stats
dicts over exactly these keys."""


@dataclass(frozen=True)
class SessionStats:
    """A point-in-time view of a session's cache economics."""

    queries: int
    hits: int
    misses: int
    evictions: int
    analysis_runs: int
    analysis_short_circuits: int
    expansion_builds: int
    system_builds: int
    fixpoint_runs: int
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_write_failures: int = 0
    components_total: int = 0
    components_reused: int = 0
    components_rebuilt: int = 0
    zero_sets_enumerated: int = 0
    pruned_by_orbit: int = 0
    pruned_by_nogood: int = 0
    orbits_found: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "analysis_runs": self.analysis_runs,
            "analysis_short_circuits": self.analysis_short_circuits,
            "expansion_builds": self.expansion_builds,
            "system_builds": self.system_builds,
            "fixpoint_runs": self.fixpoint_runs,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_writes": self.store_writes,
            "store_write_failures": self.store_write_failures,
            "components_total": self.components_total,
            "components_reused": self.components_reused,
            "components_rebuilt": self.components_rebuilt,
            "zero_sets_enumerated": self.zero_sets_enumerated,
            "pruned_by_orbit": self.pruned_by_orbit,
            "pruned_by_nogood": self.pruned_by_nogood,
            "orbits_found": self.orbits_found,
        }


class ReasoningSession:
    """Answer many queries against one (or a few) schemas from shared
    cached state.

    Parameters
    ----------
    schema:
        The CR-schema this session fronts.  Schemas are immutable;
        "editing" one means building a new schema, whose different
        fingerprint naturally misses the cache — create a sibling
        session with :meth:`for_schema` to keep sharing the cache.
    cache:
        A :class:`~repro.session.cache.SessionCache` to draw artifacts
        from.  Pass one cache to many sessions to amortise across
        schemas and requests; by default each session gets its own.
    budget:
        Default :class:`~repro.runtime.Budget` governing every query
        that does not pass its own.  As with the stateless API, a
        session-or-call budget degrades answers to UNKNOWN verdicts on
        exhaustion; with no budget, an *ambient* budget still applies
        and exhaustion raises.
    limits / fallback:
        Forwarded to the expansion build and the fixpoint (see
        :class:`repro.cr.expansion.ExpansionLimits` and
        :mod:`repro.runtime.fallback`).
    """

    def __init__(
        self,
        schema: CRSchema,
        cache: SessionCache | None = None,
        budget: Budget | None = None,
        limits: ExpansionLimits | None = None,
        fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    ) -> None:
        self.schema = schema
        self.cache = cache if cache is not None else SessionCache()
        self.budget = budget
        self.limits = limits
        self.fallback = fallback
        self.fingerprint = schema_fingerprint(schema)
        self.queries = 0

    # -- cache plumbing ----------------------------------------------------

    def _artifacts(self) -> SchemaArtifacts:
        return self.cache.artifacts(
            self.schema, self.fingerprint, self.limits, self.fallback
        )

    def _artifacts_for(self, schema: CRSchema) -> SchemaArtifacts:
        """Artifacts for a derived (Section-4 extended) schema."""
        return self.cache.artifacts(
            schema, limits=self.limits, fallback=self.fallback
        )

    @property
    def warm(self) -> bool:
        """Whether this schema's artifacts are fully built."""
        entry = self._peek()
        return entry is not None and entry.warm

    def _peek(self) -> SchemaArtifacts | None:
        if self.fingerprint not in self.cache:
            return None
        # artifacts() would count a hit; peek through the private map to
        # keep `warm` observation-free.
        return self.cache._entries.get(self.fingerprint)

    @property
    def stats(self) -> SessionStats:
        cache_stats = self.cache.stats
        return SessionStats(queries=self.queries, **cache_stats.as_dict())

    def _governed(
        self,
        budget: Budget | None,
        compute: Callable[[], _R],
        on_exhaustion: Callable[[BudgetExceededError], _R],
    ) -> _R:
        """:func:`run_governed` with this session's cache stats installed
        as the ambient search-counter sink, so any Theorem-3.4 decision
        procedure reached under a query (a pinned ``pruned``/``naive``
        backend, a future fallback) lands its pruning counters in the
        same :class:`~repro.session.cache.CacheStats` funnel as the
        cache counters."""

        def governed_compute() -> _R:
            with search_stats_sink(self.cache.stats):
                return compute()

        return run_governed(budget, governed_compute, on_exhaustion)

    def for_schema(self, schema: CRSchema) -> ReasoningSession:
        """A sibling session for an edited schema, sharing this cache.

        The new schema's fingerprint keys its own cache entry, so the
        sibling is cold exactly when the edit changed something
        semantically relevant — renaming the schema label, reordering
        unordered statements, or re-adding duplicates keeps the entry
        warm.
        """
        return ReasoningSession(
            schema,
            cache=self.cache,
            budget=self.budget,
            limits=self.limits,
            fallback=self.fallback,
        )

    # -- satisfiability ----------------------------------------------------

    def is_class_satisfiable(
        self, cls: str, budget: Budget | None = None
    ) -> SatisfiabilityResult:
        """Theorem-3.3 satisfiability of ``cls``, from cached state.

        Cold cost is one expansion + system build + fixpoint; warm cost
        is a support lookup.  The result's witness is the cached
        full-support solution (positive on every satisfiable class at
        once), so :func:`repro.cr.construction.construct_model_for_result`
        works on it unchanged.
        """
        self.schema.require_class(cls)
        self.queries += 1
        effective = budget if budget is not None else self.budget

        def compute() -> SatisfiabilityResult:
            artifacts = self._artifacts()
            diagnostic = artifacts.ensure_analysis().unsat_witness(cls)
            if diagnostic is not None:
                # The witness proves `cls` empty in every model, so the
                # Theorem-3.3 verdict is settled without the expansion.
                self.cache.stats.bump("analysis_short_circuits")
                with stage(STAGE_VERDICT, phase="session:lookup"):
                    return diagnostic_result(cls, diagnostic)
            engine = _pinned_exponential_engine()
            if engine is not None:
                # The user pinned a Theorem-3.4 decision engine
                # (``--backend pruned``/``naive``): decide this class
                # through it — reusing the cached expansion/system —
                # so pruning counters land in the session funnel.
                cr_system = artifacts.ensure_system()
                with stage(STAGE_SOLVE, phase=f"decide:{engine}"):
                    targets = class_targets(cr_system, cls)
                    satisfiable, solution, support = (
                        acceptable_with_positive(
                            cr_system,
                            targets,
                            engine,
                            fallback=self.fallback,
                        )
                    )
                return SatisfiabilityResult(
                    cls=cls,
                    satisfiable=satisfiable,
                    engine=engine,
                    cr_system=cr_system,
                    solution=solution,
                    support=support if satisfiable else frozenset(),
                )
            support = artifacts.ensure_support()
            cr_system = artifacts.ensure_system()
            witness = artifacts.witness
            assert witness is not None  # set alongside the support
            with stage(STAGE_VERDICT, phase="session:lookup"):
                targets = class_targets(cr_system, cls)
                satisfiable = bool(targets & support)
            return SatisfiabilityResult(
                cls=cls,
                satisfiable=satisfiable,
                engine=ENGINE,
                cr_system=cr_system,
                solution=dict(witness) if satisfiable else None,
                support=support if satisfiable else frozenset(),
            )

        return self._governed(
            effective, compute, lambda error: _unknown_result(cls, ENGINE, error)
        )

    def satisfiable_classes(
        self, budget: Budget | None = None
    ) -> dict[str, bool | Verdict]:
        """Satisfiability of every class; one fixpoint cold, lookups warm."""
        self.queries += 1
        effective = budget if budget is not None else self.budget

        def compute() -> dict[str, bool | Verdict]:
            artifacts = self._artifacts()
            report = artifacts.ensure_analysis()
            if set(self.schema.classes) <= report.unsat_classes:
                # Every class is statically settled; skip the expansion.
                self.cache.stats.bump("analysis_short_circuits")
                with stage(STAGE_VERDICT, phase="session:lookup"):
                    return {cls: False for cls in self.schema.classes}
            artifacts.ensure_support()
            assert artifacts.class_verdicts is not None
            return dict(artifacts.class_verdicts)

        return self._governed(
            effective,
            compute,
            lambda error: {cls: Verdict.UNKNOWN for cls in self.schema.classes},
        )

    def is_schema_fully_satisfiable(self, budget: Budget | None = None) -> bool:
        """Whether no class is forced empty (UNKNOWN reads ``False``)."""
        return all(self.satisfiable_classes(budget).values())

    # -- implication -------------------------------------------------------

    def implies(
        self, query: ImplicationQuery, budget: Budget | None = None
    ) -> ImplicationResult:
        """Decide ``S ⊨ K`` from cached state (Section 4).

        ISA and disjointness statements are support lookups against
        this schema's entry; cardinality statements reason over the
        Section-4 extended schema, cached under its own fingerprint.
        """
        if isinstance(query, IsaStatement):
            return self._implies_isa(query, budget)
        if isinstance(query, DisjointnessStatement):
            return self._implies_disjointness(query, budget)
        if isinstance(query, MinCardinalityStatement):
            return self._implies_min(query, budget)
        if isinstance(query, MaxCardinalityStatement):
            return self._implies_max(query, budget)
        raise ReproError(f"unsupported implication query {query!r}")

    def implies_all(
        self,
        queries: Iterable[ImplicationQuery],
        budget: Budget | None = None,
    ) -> list[ImplicationResult]:
        """Batch form of :meth:`implies` over one warm cache entry.

        All queries share the session's artifacts (and ``budget``, when
        given: the counters accumulate across the batch, so exhaustion
        degrades the remaining answers to UNKNOWN rather than raising
        mid-batch).
        """
        effective = budget if budget is not None else self.budget
        return [self.implies(query, budget=effective) for query in queries]

    # -- implication internals --------------------------------------------

    def _countermodel_result(
        self,
        query: ImplicationQuery,
        artifacts: SchemaArtifacts,
        strip: str | None = None,
    ) -> ImplicationResult:
        witness = artifacts.witness
        assert witness is not None  # callers run ensure_support() first
        with stage(STAGE_VERDICT, phase="session:countermodel"):
            model = construct_model(artifacts.ensure_system(), witness)
            if strip is not None:
                model = strip_class(model, strip)
        return ImplicationResult(query, False, ENGINE, model)

    def _implies_isa(
        self, query: IsaStatement, budget: Budget | None
    ) -> ImplicationResult:
        self.schema.require_class(query.sub)
        self.schema.require_class(query.sup)
        self.queries += 1
        effective = budget if budget is not None else self.budget

        def compute() -> ImplicationResult:
            artifacts = self._artifacts()
            support = artifacts.ensure_support()
            cr_system = artifacts.ensure_system()
            expansion = artifacts.expansion
            assert expansion is not None  # built by ensure_system()
            with stage(STAGE_VERDICT, phase="session:lookup"):
                counterexamples = frozenset(
                    cr_system.class_var[compound]
                    for compound in expansion.consistent_classes_containing(
                        query.sub
                    )
                    if query.sup not in compound.members
                )
                implied = not (counterexamples & support)
            if implied:
                return ImplicationResult(query, True, ENGINE, None)
            return self._countermodel_result(query, artifacts)

        return self._governed(
            effective,
            compute,
            lambda error: _unknown_implication(query, ENGINE, error),
        )

    def _implies_disjointness(
        self, query: DisjointnessStatement, budget: Budget | None
    ) -> ImplicationResult:
        class_list = sorted(query.classes)
        if len(class_list) < 2:
            raise SchemaError("disjointness query needs at least two classes")
        for cls in class_list:
            self.schema.require_class(cls)
        self.queries += 1
        effective = budget if budget is not None else self.budget

        def compute() -> ImplicationResult:
            artifacts = self._artifacts()
            support = artifacts.ensure_support()
            cr_system = artifacts.ensure_system()
            expansion = artifacts.expansion
            assert expansion is not None  # built by ensure_system()
            with stage(STAGE_VERDICT, phase="session:lookup"):
                shared = frozenset(
                    cr_system.class_var[compound]
                    for compound in expansion.consistent_compound_classes()
                    if sum(cls in compound.members for cls in class_list) >= 2
                )
                implied = not (shared & support)
            if implied:
                return ImplicationResult(query, True, ENGINE, None)
            return self._countermodel_result(query, artifacts)

        return self._governed(
            effective,
            compute,
            lambda error: _unknown_implication(query, ENGINE, error),
        )

    def _implies_cardinality(
        self,
        query: MinCardinalityStatement | MaxCardinalityStatement,
        exceptional_card: Card,
        budget: Budget | None,
    ) -> ImplicationResult:
        extended, exc = exceptional_schema(
            self.schema, query.cls, query.rel, query.role, exceptional_card
        )
        self.queries += 1
        effective = budget if budget is not None else self.budget

        def compute() -> ImplicationResult:
            artifacts = self._artifacts_for(extended)
            support = artifacts.ensure_support()
            with stage(STAGE_VERDICT, phase="session:lookup"):
                targets = class_targets(artifacts.cr_system, exc)
                implied = not (targets & support)
            if implied:
                return ImplicationResult(query, True, ENGINE, None)
            return self._countermodel_result(query, artifacts, strip=exc)

        return self._governed(
            effective,
            compute,
            lambda error: _unknown_implication(query, ENGINE, error),
        )

    def _implies_min(
        self, query: MinCardinalityStatement, budget: Budget | None
    ) -> ImplicationResult:
        if query.value == 0:
            self.queries += 1
            return ImplicationResult(query, True, ENGINE, None)
        return self._implies_cardinality(
            query, Card(0, query.value - 1), budget
        )

    def _implies_max(
        self, query: MaxCardinalityStatement, budget: Budget | None
    ) -> ImplicationResult:
        return self._implies_cardinality(
            query, Card(query.value + 1, UNBOUNDED), budget
        )

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        state = "warm" if self.warm else "cold"
        return (
            f"ReasoningSession({self.schema.name!r}, {state}, "
            f"fingerprint={self.fingerprint[:12]}…, "
            f"{self.queries} queries, {self.cache!r})"
        )


__all__ = [
    "ENGINE",
    "SESSION_STATS_KEYS",
    "ReasoningSession",
    "SessionStats",
]
