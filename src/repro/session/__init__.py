"""Cached reasoning sessions with content-addressed schema fingerprints.

=====================================  ==================================
:mod:`repro.session.fingerprint`       canonical SHA-256 schema identity
:mod:`repro.session.cache`             LRU store of expansions, ``Ψ_S``
                                       systems and acceptable supports
:mod:`repro.session.session`           :class:`ReasoningSession` — batch
                                       and repeated queries from one
                                       expansion build
=====================================  ==================================

Quickstart::

    from repro.session import ReasoningSession

    session = ReasoningSession(schema)
    session.satisfiable_classes()          # cold: builds once
    session.is_class_satisfiable("A")      # warm: support lookup
    session.implies_all(queries)           # warm: batch of lookups
    session.stats.expansion_builds         # -> 1
"""

from repro.session.cache import CacheStats, SchemaArtifacts, SessionCache
from repro.session.fingerprint import canonical_form, schema_fingerprint
from repro.session.session import (
    ENGINE,
    SESSION_STATS_KEYS,
    ReasoningSession,
    SessionStats,
)

__all__ = [
    "CacheStats",
    "ENGINE",
    "SESSION_STATS_KEYS",
    "ReasoningSession",
    "SchemaArtifacts",
    "SessionCache",
    "SessionStats",
    "canonical_form",
    "schema_fingerprint",
]
