"""The fingerprint-keyed store behind :class:`ReasoningSession`.

One :class:`SchemaArtifacts` entry per schema fingerprint holds the
reasoning state that is expensive to build and endlessly reusable:

* the static **analysis** report (polynomial — built eagerly; its
  ``error`` diagnostics let queries skip every stage below),
* the consistent **expansion** ``S̄`` (the exponential step),
* the derived disequation system **Ψ_S** in pruned mode,
* the maximal acceptable **support** of ``Ψ_S`` with an integer
  full-support **witness** (one fixpoint run, polynomially many LPs).

The support settles *every* satisfiability question about the schema
(Theorem 3.3: a class is satisfiable iff its target unknowns meet the
support) and every ISA / disjointness implication (Section 4: implied
iff the counterexample targets miss the support), so once an entry is
warm those queries are dictionary lookups.  Cardinality implications
reason over a Section-4 extended schema ``S' = S + C_exc``; those are
cached as ordinary entries under *their own* fingerprint, so repeated
cardinality queries warm up too.

Entries build **staged**: the expansion/system stage and the fixpoint
stage each complete atomically or leave the entry unchanged, so a
budget that runs out mid-build never publishes half-built state — the
next query (under a fresh budget) resumes from the last completed
stage.  Eviction is LRU with a configurable entry cap, sized for a
service juggling many schemas.

The cache optionally fronts a **persistent second tier** — a
:class:`~repro.store.ArtifactStore` shared across processes and
``--jobs`` pool workers.  A memory miss consults the store before
building: a valid persisted bundle restores the entry fully warm
(``store_hits``), and an entry that completes its fixpoint stage
writes through (``store_writes``) so the *next* process starts warm.
The store's absent-or-valid contract means this tier can only ever
return artifacts byte-equivalent to a fresh build or nothing at all;
persistence failures (contention, full disk, corruption) degrade to
counted no-ops and the reasoning path proceeds from source.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.analyzer import analyze
from repro.analysis.diagnostics import AnalysisReport
from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.satisfiability import acceptable_support, support_verdicts
from repro.cr.schema import CRSchema
from repro.cr.system import CRSystem, build_system
from repro.errors import ReproError
from repro.pipeline import (
    STAGE_BUILD_SYSTEM,
    STAGE_EXPAND,
    STAGE_SOLVE,
    stage,
)
from repro.runtime.fallback import DEFAULT_FALLBACK, FallbackPolicy
from repro.session.fingerprint import schema_fingerprint
from repro.solver.homogeneous import integerize
from repro.store.store import ArtifactStore

_BUNDLE_FIELDS = (
    "analysis",
    "expansion",
    "cr_system",
    "support",
    "witness",
    "class_verdicts",
)
"""The persisted slice of :class:`SchemaArtifacts` — exactly the fields
needed to answer every warm query.  Changing this tuple (or the shape
of any field) is an artifact-codec change: bump
:data:`repro.store.ARTIFACT_VERSION` alongside."""


@dataclass
class CacheStats:
    """Observable counters for tests, benchmarks, and ops dashboards."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    analysis_runs: int = 0
    analysis_short_circuits: int = 0
    expansion_builds: int = 0
    system_builds: int = 0
    fixpoint_runs: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    store_write_failures: int = 0
    components_total: int = 0
    components_reused: int = 0
    components_rebuilt: int = 0
    zero_sets_enumerated: int = 0
    pruned_by_orbit: int = 0
    pruned_by_nogood: int = 0
    orbits_found: int = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment one counter by name.

        Every increment in the cache funnels through here so a subclass
        can make the read-modify-write atomic — the serve daemon installs
        a lock-guarded subclass to keep its ``/metrics`` counters
        monotone under concurrent requests.
        """
        setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "analysis_runs": self.analysis_runs,
            "analysis_short_circuits": self.analysis_short_circuits,
            "expansion_builds": self.expansion_builds,
            "system_builds": self.system_builds,
            "fixpoint_runs": self.fixpoint_runs,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_writes": self.store_writes,
            "store_write_failures": self.store_write_failures,
            "components_total": self.components_total,
            "components_reused": self.components_reused,
            "components_rebuilt": self.components_rebuilt,
            "zero_sets_enumerated": self.zero_sets_enumerated,
            "pruned_by_orbit": self.pruned_by_orbit,
            "pruned_by_nogood": self.pruned_by_nogood,
            "orbits_found": self.orbits_found,
        }


@dataclass
class SchemaArtifacts:
    """Cached reasoning state for one schema fingerprint.

    ``support`` is the maximal acceptable support of ``Ψ_S`` and
    ``witness`` an integer acceptable solution positive on exactly that
    support; both are ``None`` until the fixpoint stage has run.
    """

    fingerprint: str
    schema: CRSchema
    stats: CacheStats
    limits: ExpansionLimits | None = None
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK
    store: ArtifactStore | None = field(default=None, repr=False)
    analysis: AnalysisReport | None = None
    expansion: Expansion | None = None
    cr_system: CRSystem | None = None
    support: frozenset[str] | None = None
    witness: dict[str, int] | None = None
    class_verdicts: dict[str, bool] | None = field(default=None, repr=False)

    # -- staged construction ------------------------------------------------

    def ensure_analysis(self) -> AnalysisReport:
        """Run (once) the polynomial static battery over the schema.

        Orders of magnitude cheaper than :meth:`ensure_system`, so it
        runs eagerly on the cold path: when one of its ``error``
        diagnostics settles a query, the expensive stages never build.
        """
        if self.analysis is None:
            self.analysis = analyze(self.schema)
            self.stats.bump("analysis_runs")
        return self.analysis

    def ensure_system(self) -> CRSystem:
        """Build (once) the expansion and pruned system ``Ψ_S``."""
        if self.cr_system is None:
            if self.expansion is None:
                with stage(STAGE_EXPAND, phase="session:expansion"):
                    self.expansion = Expansion(self.schema, self.limits)
                self.stats.bump("expansion_builds")
            with stage(STAGE_BUILD_SYSTEM, phase="session:system"):
                self.cr_system = build_system(self.expansion, mode="pruned")
            self.stats.bump("system_builds")
        return self.cr_system

    def ensure_support(self) -> frozenset[str]:
        """Run (once) the acceptability fixpoint; derive the witness and
        the per-class verdict table."""
        if self.support is None:
            cr_system = self.ensure_system()
            with stage(STAGE_SOLVE, phase="session:fixpoint"):
                support, solution = acceptable_support(
                    cr_system, self.fallback
                )
            self.stats.bump("fixpoint_runs")
            self.witness = integerize(solution)
            self.class_verdicts = support_verdicts(cr_system, support)
            self.support = support
            self._persist()
        return self.support

    @property
    def warm(self) -> bool:
        """Whether every stage has been built."""
        return self.support is not None

    # -- the persistent tier -------------------------------------------------

    def _persist(self) -> None:
        """Write the now-warm entry through to the store (best-effort:
        a skipped write is counted, never surfaced to the query)."""
        if self.store is None:
            return
        bundle = {name: getattr(self, name) for name in _BUNDLE_FIELDS}
        if self.store.put(self.fingerprint, bundle):
            self.stats.bump("store_writes")
        else:
            self.stats.bump("store_write_failures")

    def adopt_bundle(self, bundle: Any) -> bool:
        """Restore a persisted bundle into this (cold) entry; ``False``
        leaves the entry untouched for a normal cold build.

        The store already verified the envelope checksum and artifact
        version; this is the last line of shape validation before the
        fields go live.  Only fully-warm bundles are adopted — partial
        state would reintroduce exactly the half-built hazards the
        staged build exists to prevent.
        """
        if not isinstance(bundle, dict):
            return False
        if any(name not in bundle for name in _BUNDLE_FIELDS):
            return False
        if bundle["support"] is None or bundle["witness"] is None:
            return False
        for name in _BUNDLE_FIELDS:
            setattr(self, name, bundle[name])
        return True


class SessionCache:
    """LRU cache of :class:`SchemaArtifacts`, shareable across sessions.

    Thread-compatible rather than thread-safe: like the rest of the
    library, concurrent use requires one cache per worker or external
    locking.  A single cache passed to many
    :class:`~repro.session.ReasoningSession` instances lets a service
    amortise expansions across requests that mention the same schema.

    With a ``store``, the cache gains a persistent second tier: memory
    misses consult the store (restoring fully-warm entries), and entries
    that finish their fixpoint stage write through.  The store object is
    per-process; the *directory* is what processes share.
    """

    def __init__(
        self,
        max_entries: int = 64,
        store: ArtifactStore | None = None,
        stats: CacheStats | None = None,
    ) -> None:
        if max_entries < 1:
            raise ReproError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.max_entries = max_entries
        self.store = store
        self.stats = stats if stats is not None else CacheStats()
        self._entries: OrderedDict[str, SchemaArtifacts] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def artifacts(
        self,
        schema: CRSchema,
        fingerprint: str | None = None,
        limits: ExpansionLimits | None = None,
        fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    ) -> SchemaArtifacts:
        """The (possibly still cold) entry for ``schema``, creating and
        LRU-promoting as needed.  Nothing expensive happens here; the
        entry's ``ensure_*`` stages build on demand."""
        key = fingerprint or schema_fingerprint(schema)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.bump("hits")
            self._entries.move_to_end(key)
            return entry
        self.stats.bump("misses")
        entry = SchemaArtifacts(
            fingerprint=key,
            schema=schema,
            stats=self.stats,
            limits=limits,
            fallback=fallback,
            store=self.store,
        )
        if self.store is not None:
            bundle = self.store.get(key)
            if bundle is not None and entry.adopt_bundle(bundle):
                self.stats.bump("store_hits")
            else:
                self.stats.bump("store_misses")
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.bump("evictions")
        return entry

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry (e.g. after an external edit of a stored
        schema file); returns whether it was present."""
        return self._entries.pop(fingerprint, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"SessionCache({len(self._entries)}/{self.max_entries} entries, "
            f"{self.stats.hits} hits, {self.stats.misses} misses)"
        )


__all__ = ["CacheStats", "SchemaArtifacts", "SessionCache"]
