"""Worker-process side of the parallel decision fabric.

Everything here must be importable at module top level: the pool uses
the ``spawn`` start method, so workers pickle task functions by
qualified name and re-import this module from scratch.  The shared
inputs arrive exactly once per worker through :func:`bootstrap` (the
pool initializer) as a compact pickled payload — an interned system
plus a backend-chain spec for the probe tasks, a schema for the batch
task — and each dispatched chunk then carries only its private
arguments.

Every task runs under its own :class:`~repro.runtime.budget.Budget`
(built from the caps the parent had left at dispatch time) and its own
:class:`~repro.pipeline.PipelineRun`, and returns an *envelope*::

    {"result": ..., "charges": {...}, "stages": {...}}     # success
    {"budget": {"message", "snapshot"}, "charges", "stages"}  # exhausted

The budget-marker form exists because exception pickling only preserves
``args`` — a :class:`~repro.errors.BudgetExceededError` raised across
the process boundary would lose its structured snapshot — and because
the parent wants the partial charges and stage timings of a failed
chunk too.
"""

from __future__ import annotations

import pickle
from contextlib import ExitStack
from fractions import Fraction
from typing import Any, Callable, Sequence

from repro.errors import BudgetExceededError
from repro.pipeline import PipelineRun, activate_run
from repro.runtime.budget import Budget, ProgressSnapshot, activate
from repro.runtime.outcome import ImplicationVerdict, Verdict
from repro.solver.core import SparseRow
from repro.solver.linear import Relation
from repro.solver.pruned import Nogood, candidate_system, learn_nogood
from repro.solver.registry import (
    AcceptabilityProblem,
    FourierMotzkinBackend,
    SolverBackend,
    chain_positive_solution,
    get_backend,
    pin_backend,
    zero_set_rows,
)
from repro.solver.stats import SearchCounters

_PAYLOAD: dict[str, Any] | None = None
"""The shared inputs, reconstructed once per worker by :func:`bootstrap`."""

_STATE: dict[str, Any] = {}
"""Warm per-worker derivatives of the payload (session, problem, chain)."""


def bootstrap(blob: bytes) -> None:
    """Pool initializer: unpickle the shared payload, once per worker."""
    global _PAYLOAD
    _PAYLOAD = pickle.loads(blob)
    _STATE.clear()


def _payload() -> dict[str, Any]:
    assert _PAYLOAD is not None, "worker used before bootstrap ran"
    return _PAYLOAD


# ---------------------------------------------------------------------------
# Backend chains across the process boundary
# ---------------------------------------------------------------------------


def chain_spec(
    chain: Sequence[SolverBackend],
) -> tuple[tuple[str, int | None], ...]:
    """A picklable description of a backend chain.

    Backends are registry singletons identified by name; the one
    configurable backend (Fourier–Motzkin's ``max_constraints``) ships
    its setting alongside so a tightened fallback policy survives the
    crossing.
    """
    return tuple(
        (backend.name, backend.max_constraints)
        if isinstance(backend, FourierMotzkinBackend)
        else (backend.name, None)
        for backend in chain
    )


def resolve_chain(
    spec: Sequence[tuple[str, int | None]],
) -> tuple[SolverBackend, ...]:
    """Rebuild a backend chain from :func:`chain_spec` output."""
    chain: list[SolverBackend] = []
    for name, fm_max in spec:
        if name == "fourier-motzkin" and fm_max is not None:
            chain.append(FourierMotzkinBackend(fm_max))
        else:
            chain.append(get_backend(name))
    return tuple(chain)


def _cached_chain() -> tuple[SolverBackend, ...]:
    chain = _STATE.get("chain")
    if chain is None:
        chain = _STATE["chain"] = resolve_chain(_payload()["chain"])
    return chain


# ---------------------------------------------------------------------------
# The envelope harness
# ---------------------------------------------------------------------------


def _charges(budget: Budget) -> dict[str, int]:
    return {
        "expansion_nodes": budget.expansion_nodes,
        "solver_calls": budget.solver_calls,
        "pivots": budget.pivots,
    }


def _run_task(
    caps: dict[str, float | int] | None,
    body: Callable[[Budget], Any],
) -> dict[str, Any]:
    """Run ``body`` under a fresh budget and pipeline run; envelope it.

    With no caps the budget is unlimited — it still exists so the
    counters (and hence the parent's aggregate account) stay honest.
    """
    budget = Budget(**caps) if caps else Budget()
    run = PipelineRun()
    try:
        with activate(budget), activate_run(run):
            result = body(budget)
        return {
            "result": result,
            "charges": _charges(budget),
            "stages": run.as_dict(),
        }
    except BudgetExceededError as error:
        snapshot = error.snapshot
        if not isinstance(snapshot, ProgressSnapshot):
            snapshot = budget.snapshot("exhausted")
        return {
            "budget": {"message": str(error), "snapshot": snapshot},
            "charges": _charges(budget),
            "stages": run.as_dict(),
        }


# ---------------------------------------------------------------------------
# Fan-out site 2: per-class strict probes of the maximal-support LP
# ---------------------------------------------------------------------------


def run_probe_chunk(args: tuple[Any, ...]) -> dict[str, Any]:
    """One fixpoint iteration's probes for a chunk of candidates.

    Payload: ``{"system": InternedSystem, "chain": chain_spec}``.
    Args: ``(caps, forced_zero_names, candidate_names)``.  Returns the
    names (class *and* relationship unknowns) positive in the summed
    probe witnesses — a cone member, so the union over chunks is again
    the support of a single acceptable-at-convergence solution.
    """
    caps, forced_zero, candidates = args

    def body(budget: Budget) -> tuple[str, ...]:
        del budget  # charged ambiently by the solver hot loops
        system = _payload()["system"]
        chain = _cached_chain()
        table = system.table
        constrained = system.with_rows(
            SparseRow.make(
                {table.index(name): 1},
                Relation.EQ,
                label=f"forced-zero:{name}",
            )
            for name in forced_zero
        )
        totals: dict[str, Fraction] = {}
        zero = Fraction(0)
        for name in candidates:
            if totals.get(name, zero) > 0:
                continue  # already positive via an earlier probe's witness
            probe = constrained.with_rows(
                [
                    SparseRow.make(
                        {table.index(name): 1},
                        Relation.GT,
                        label=f"probe:{name}",
                    )
                ]
            )
            witness = chain_positive_solution(probe, chain)
            if witness.feasible:
                assert witness.rational is not None
                for var, value in witness.rational.items():
                    totals[var] = totals.get(var, zero) + value
        return tuple(
            sorted(var for var, value in totals.items() if value > 0)
        )

    return _run_task(caps, body)


# ---------------------------------------------------------------------------
# Fan-out site 3: the naive backend's zero-set enumeration
# ---------------------------------------------------------------------------


def _zero_search_problem() -> AcceptabilityProblem:
    """The (worker-cached) acceptability problem of a zero-set payload."""
    problem = _STATE.get("problem")
    if problem is None:
        payload = _payload()
        problem = _STATE["problem"] = AcceptabilityProblem(
            system=payload["system"],
            class_unknowns=payload["class_unknowns"],
            dependencies=payload["dependencies"],
            targets=payload["targets"],
        )
    return problem


def _hit_record(
    universe: set[str], zero_set: frozenset[str], witness: Any
) -> dict[str, Any]:
    assert witness.integral is not None
    support = frozenset(
        name for name, value in witness.integral.items() if value > 0
    )
    assert universe - zero_set <= support
    return {
        "witness": witness.integral,
        "support": tuple(sorted(support)),
    }


def run_zero_chunk(args: tuple[Any, ...]) -> dict[str, Any]:
    """Test a contiguous chunk of zero-sets; first feasible one wins.

    Payload: ``{"system", "class_unknowns", "dependencies", "targets",
    "chain"}``.  Args: ``(caps, zero_sets)`` where ``zero_sets`` is a
    tuple of tuples in the *serial* enumeration order.  Returns
    ``{"hit": None | {"witness", "support"}, "stats": {...}}`` — the
    earliest feasible zero-set in the chunk, if any, plus the search
    counters the chunk accumulated (folded into the parent's ambient
    sink on merge).
    """
    caps, zero_sets = args

    def body(budget: Budget) -> dict[str, Any]:
        problem = _zero_search_problem()
        chain = _cached_chain()
        universe = set(problem.class_unknowns)
        counters = SearchCounters()
        hit: dict[str, Any] | None = None
        for zero_tuple in zero_sets:
            budget.check()
            zero_set = frozenset(zero_tuple)
            counters.bump("zero_sets_enumerated")
            candidate = problem.system.with_rows(
                zero_set_rows(problem, zero_set)
            )
            witness = chain_positive_solution(candidate, chain)
            if witness.feasible:
                hit = _hit_record(universe, zero_set, witness)
                break
        return {"hit": hit, "stats": counters.as_dict()}

    return _run_task(caps, body)


def run_pruned_chunk(args: tuple[Any, ...]) -> dict[str, Any]:
    """Test a chunk of *canonical* zero-sets with nogood pruning.

    Payload: as :func:`run_zero_chunk`.  Args:
    ``(caps, zero_sets, nogoods)`` — the candidates are the orbit
    representatives the parent's canonicity filter let through (still in
    serial order), and ``nogoods`` is the parent's
    :class:`~repro.solver.pruned.Nogood` list as known *at dispatch
    time*.  The chunk matches candidates against those plus whatever it
    learns locally, and returns
    ``{"hit": ..., "nogoods": new ones, "stats": {...}}`` so the parent
    can saturate its store for later dispatches.  Nogoods only ever
    match infeasible candidates, so the first-hit merge is unaffected
    by which nogoods happened to reach which chunk.
    """
    caps, zero_sets, nogoods = args

    def body(budget: Budget) -> dict[str, Any]:
        problem = _zero_search_problem()
        chain = _cached_chain()
        universe = set(problem.class_unknowns)
        counters = SearchCounters()
        learned: list[Nogood] = []
        hit: dict[str, Any] | None = None
        for zero_tuple in zero_sets:
            budget.check()
            zero_set = frozenset(zero_tuple)
            if any(ng.matches(zero_set) for ng in nogoods) or any(
                ng.matches(zero_set) for ng in learned
            ):
                counters.bump("pruned_by_nogood")
                continue
            counters.bump("zero_sets_enumerated")
            candidate = candidate_system(problem, zero_set)
            witness = chain_positive_solution(candidate, chain)
            if witness.feasible:
                hit = _hit_record(universe, zero_set, witness)
                break
            nogood = learn_nogood(problem, zero_set, candidate)
            if nogood is not None:
                learned.append(nogood)
        return {
            "hit": hit,
            "nogoods": tuple(learned),
            "stats": counters.as_dict(),
        }

    return _run_task(caps, body)


# ---------------------------------------------------------------------------
# Fan-out site 1: batch queries over warm per-worker sessions
# ---------------------------------------------------------------------------


def answer_query(
    session: Any, kind: str, query: Any
) -> tuple[dict[str, Any], str, bool, bool]:
    """Answer one batch query: ``(record, text, positive, unknown)``.

    This is the *single* formatting path for batch output — the CLI's
    serial loop and the workers both call it, which is what makes
    ``--jobs N`` output byte-identical to serial by construction.
    """
    if kind == "sat":
        result = session.is_class_satisfiable(query)
        verdict = result.verdict
        positive = bool(result.satisfiable)
        unknown = verdict is Verdict.UNKNOWN
        word = (
            "UNKNOWN"
            if unknown
            else ("satisfiable" if positive else "UNSATISFIABLE")
        )
        record = {
            "query": f"sat {query}",
            "verdict": verdict.value,
            "unknown_reason": result.unknown_reason,
        }
        return record, f"sat {query}: {word}", positive, unknown
    result = session.implies(query)
    positive = bool(result.implied)
    unknown = result.verdict is ImplicationVerdict.UNKNOWN
    record = {
        "query": query.pretty(),
        "verdict": result.verdict.value,
        "unknown_reason": result.unknown_reason,
    }
    return record, result.pretty(), positive, unknown


def unknown_record(
    kind: str, query: Any, reason: str
) -> tuple[dict[str, Any], str]:
    """The degraded ``(record, text)`` for a query no worker answered
    (its worker exhausted the budget, or a sibling's exhaustion
    cancelled it) — same shape :func:`answer_query` gives a query that
    degrades locally."""
    if kind == "sat":
        record = {
            "query": f"sat {query}",
            "verdict": Verdict.UNKNOWN.value,
            "unknown_reason": reason,
        }
        return record, f"sat {query}: UNKNOWN"
    record = {
        "query": query.pretty(),
        "verdict": ImplicationVerdict.UNKNOWN.value,
        "unknown_reason": reason,
    }
    return record, f"S |? {query.pretty()}  (unknown: {reason})"


def run_batch_chunk(args: tuple[Any, ...]) -> dict[str, Any]:
    """Answer a chunk of batch queries on this worker's warm session.

    Payload: ``{"schema": CRSchema, "backend": str | None, "cache_dir":
    str | None}``.  Args: ``(caps, items)`` with ``items`` a tuple of
    ``(index, kind, query)``.  The chunk shares one
    :class:`~repro.components.DecomposedSession` — the parent partitions
    queries by the fingerprint of the component (or merged / extended
    sub-schema) that answers them, so queries sharing artifacts land on
    the same worker and hit them warm, and each component is classified
    (reused/rebuilt) by exactly one worker.  A ``cache_dir`` adds the
    cross-process persistent tier: every worker opens its own
    :class:`~repro.store.ArtifactStore` on the shared directory.
    """
    caps, items = args

    def body(budget: Budget) -> dict[str, Any]:
        del budget  # the ambient budget governs the session's queries
        from repro.components import DecomposedSession
        from repro.session import SessionCache

        payload = _payload()
        session = _STATE.get("session")
        if session is None:
            cache = None
            if payload.get("cache_dir"):
                from repro.store import ArtifactStore

                cache = SessionCache(
                    store=ArtifactStore(payload["cache_dir"])
                )
            session = _STATE["session"] = DecomposedSession(
                payload["schema"], cache=cache
            )
        answers = []
        with ExitStack() as stack:
            if payload.get("backend"):
                stack.enter_context(pin_backend(payload["backend"]))
            for index, kind, query in items:
                record, text, positive, unknown = answer_query(
                    session, kind, query
                )
                answers.append((index, record, text, positive, unknown))
        return {
            "answers": answers,
            "session_stats": session.stats.as_dict(),
        }

    return _run_task(caps, body)


__all__ = [
    "answer_query",
    "bootstrap",
    "chain_spec",
    "resolve_chain",
    "run_batch_chunk",
    "run_probe_chunk",
    "run_pruned_chunk",
    "run_zero_chunk",
    "unknown_record",
]
