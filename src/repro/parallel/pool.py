"""Deterministic process-pool plumbing for the parallel decision fabric.

The decision problems this repo answers are exponential twice over (the
expansion ranges over subsets of the class set, and Theorem 3.4
enumerates zero-sets Z ⊆ V_C), yet the probes they decompose into are
independent LPs over one shared immutable interned system —
embarrassingly parallel.  This module provides the process-pool layer
the fan-out sites (:mod:`repro.parallel.fanout`) are built on:

:func:`resolve_jobs`
    The worker-count policy: explicit ``--jobs`` flag, then the
    ``REPRO_JOBS`` environment variable, then 1 (serial).

:func:`chunk_evenly`
    Deterministic contiguous chunking.  Contiguity is what preserves
    the serial enumeration order across chunk boundaries, which the
    zero-set search needs for bit-identical first-hit witnesses.

:class:`WorkerPool`
    A ``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`
    whose initializer rebuilds the shared inputs from one compact
    pickled payload, once per worker (``fork`` is banned — it copies
    ambient budgets, context variables, and lock state into children).
    :meth:`WorkerPool.map_ordered` is the only wait primitive: results
    merge in submission-index order regardless of completion order, the
    parent's ambient budget is checked on every poll tick (the parent
    owns the wall-clock deadline), worker charges fold into the ambient
    budget as each chunk lands, and a budget marker or cap overdraft
    cancels every sibling.

:func:`parallel_map`
    One-shot convenience over :class:`WorkerPool` for call sites (the
    pipeline's Solve stage) that do not need to keep a warm pool.

Determinism contract: nothing observable depends on wall-clock
completion order.  Results are merged by input index; a short-circuit
hit only cancels chunks *after* the lowest hitting index, so earlier
chunks always get to overrule it.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

from repro.errors import BudgetExceededError, ReproError
from repro.parallel import worker as _worker
from repro.pipeline import current_run
from repro.runtime.budget import Budget, current_budget

_T = TypeVar("_T")

ENV_JOBS = "REPRO_JOBS"
"""Environment variable consulted when no explicit job count is given."""

POLL_SECONDS = 0.05
"""How often the parent wakes to check its own budget while waiting."""


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: ``jobs`` flag > ``REPRO_JOBS`` > 1.

    ``jobs=1`` (the default everywhere) means *serial*: callers bypass
    the pool entirely, so the serial path remains the oracle the
    parallel path is tested against.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ReproError(
                f"{ENV_JOBS} must be a positive integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs!r}")
    return jobs


def chunk_evenly(items: Iterable[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-even runs.

    Deterministic in the input order; earlier chunks get the extra
    element when the split is uneven.  Contiguity matters: the zero-set
    search relies on chunk k holding strictly earlier enumeration
    positions than chunk k+1.
    """
    pool = list(items)
    if not pool:
        return []
    count = max(1, min(chunks, len(pool)))
    base, extra = divmod(len(pool), count)
    out: list[list[_T]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        out.append(pool[start : start + size])
        start += size
    return out


def worker_caps(budget: Budget | None) -> dict[str, float | int] | None:
    """The budget caps to hand a dispatched chunk, or ``None``.

    Workers get whatever the parent has *left* at dispatch time (see
    :meth:`~repro.runtime.budget.Budget.remaining_caps`); the parent's
    poll-loop checks plus :meth:`~repro.runtime.budget.Budget.merge_charges`
    enforce the aggregate account.
    """
    if budget is None:
        return None
    return budget.remaining_caps()


class WorkerPool:
    """A spawn-context process pool over one shared pickled payload.

    ``payload`` is pickled once here and shipped to each worker's
    initializer, which reconstructs the shared inputs (interned system,
    schema, backend chain spec) exactly once per worker process —
    dispatched chunks then carry only their private arguments.
    """

    def __init__(self, payload: dict[str, Any], jobs: int) -> None:
        if jobs < 2:
            raise ReproError(
                "WorkerPool needs jobs >= 2; jobs=1 must bypass the pool"
            )
        self.jobs = jobs
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context("spawn")
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_worker.bootstrap,
            initargs=(blob,),
        )

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)

    def map_ordered(
        self,
        task: Callable[[Any], dict[str, Any]],
        calls: Sequence[Any],
        short_circuit: Callable[[Any], bool] | None = None,
    ) -> list[Any]:
        """Run ``task`` over ``calls``; results in submission order.

        ``task`` must be a top-level function in
        :mod:`repro.parallel.worker` returning an *envelope*
        (``{"result": ..., "charges": ..., "stages": ...}`` or the
        budget-marker form).  As each envelope lands, its stage timings
        merge into the ambient :class:`~repro.pipeline.PipelineRun` and
        its charges into the ambient budget — a cap crossed by the
        merge, a budget marker from a worker, or the parent's own
        deadline cancels all outstanding siblings and raises.

        ``short_circuit`` (given a chunk's result, "is this a hit?")
        cancels only chunks *after* the lowest hitting index; earlier
        chunks still run to completion so they can overrule the hit.
        Results of cancelled chunks are ``None``.
        """
        budget = current_budget()
        futures: dict[concurrent.futures.Future[dict[str, Any]], int] = {
            self._executor.submit(task, call): index
            for index, call in enumerate(calls)
        }
        results: list[Any] = [None] * len(calls)
        stop_index: int | None = None
        pending = set(futures)
        try:
            while pending:
                if budget is not None:
                    budget.check()
                done, pending = concurrent.futures.wait(
                    pending,
                    timeout=POLL_SECONDS,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in sorted(done, key=futures.__getitem__):
                    if future.cancelled():
                        continue
                    index = futures[future]
                    envelope = future.result(timeout=POLL_SECONDS)
                    self._absorb(envelope, budget)
                    results[index] = envelope.get("result")
                    if (
                        short_circuit is not None
                        and results[index] is not None
                        and short_circuit(results[index])
                        and (stop_index is None or index < stop_index)
                    ):
                        stop_index = index
                if stop_index is not None:
                    for future, index in futures.items():
                        if index > stop_index:
                            future.cancel()
                    pending = {
                        future
                        for future in pending
                        if not future.cancelled()
                        and futures[future] < stop_index
                    }
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def map_ordered_streaming(
        self,
        task: Callable[[Any], dict[str, Any]],
        calls: Iterable[Any],
        window: int | None = None,
        short_circuit: Callable[[Any], bool] | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """:meth:`map_ordered` over a *lazy* call stream.

        At most ``window`` (default ``2 * jobs``) submissions are
        outstanding at once and ``calls`` is only advanced as slots
        free up, so the parent never materialises the whole work list —
        the fix for the zero-set fan-out's parent-side memory.  Pulling
        a call at submission time also lets the stream observe state
        accumulated from earlier results (the pruned search attaches
        the nogoods known *at dispatch*).

        ``on_result`` fires as each non-``None`` result lands (in
        completion order — merge logic must not depend on it).  The
        short-circuit contract matches :meth:`map_ordered`: a hit stops
        the stream and cancels only later indexes, and results are
        returned in submission order for every call actually submitted.
        """
        budget = current_budget()
        limit = max(1, window if window is not None else 2 * self.jobs)
        iterator = iter(calls)
        futures: dict[concurrent.futures.Future[dict[str, Any]], int] = {}
        results: dict[int, Any] = {}
        pending: set[concurrent.futures.Future[dict[str, Any]]] = set()
        stop_index: int | None = None
        exhausted = False
        submitted = 0

        def refill() -> None:
            nonlocal exhausted, submitted
            while (
                not exhausted and stop_index is None and len(pending) < limit
            ):
                try:
                    call = next(iterator)
                except StopIteration:
                    exhausted = True
                    return
                future = self._executor.submit(task, call)
                futures[future] = submitted
                pending.add(future)
                submitted += 1

        try:
            refill()
            while pending:
                if budget is not None:
                    budget.check()
                done, pending = concurrent.futures.wait(
                    pending,
                    timeout=POLL_SECONDS,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in sorted(done, key=futures.__getitem__):
                    if future.cancelled():
                        continue
                    index = futures[future]
                    envelope = future.result(timeout=POLL_SECONDS)
                    self._absorb(envelope, budget)
                    result = envelope.get("result")
                    results[index] = result
                    if on_result is not None and result is not None:
                        on_result(index, result)
                    if (
                        short_circuit is not None
                        and result is not None
                        and short_circuit(result)
                        and (stop_index is None or index < stop_index)
                    ):
                        stop_index = index
                if stop_index is not None:
                    for future, index in futures.items():
                        if index > stop_index:
                            future.cancel()
                    pending = {
                        future
                        for future in pending
                        if not future.cancelled()
                        and futures[future] < stop_index
                    }
                else:
                    refill()
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return [results.get(index) for index in range(submitted)]

    @staticmethod
    def _absorb(
        envelope: dict[str, Any], budget: Budget | None
    ) -> None:
        """Fold one worker envelope's accounting into the parent, then
        re-raise a worker-side budget exhaustion as the real exception.

        Exceptions do not round-trip their :class:`ProgressSnapshot`
        through pickle (only ``args`` survive), so workers report
        exhaustion as a structured marker and the parent re-raises here
        — after merging charges, so the aggregate account stays honest
        even on the failure path.
        """
        run = current_run()
        stages = envelope.get("stages")
        if run is not None and stages:
            run.merge(stages)
        charges = envelope.get("charges")
        if budget is not None and charges:
            budget.merge_charges(**charges)
        marker = envelope.get("budget")
        if marker is not None:
            raise BudgetExceededError(marker["message"], marker["snapshot"])


def parallel_map(
    task: Callable[[Any], dict[str, Any]],
    calls: Sequence[Any],
    payload: dict[str, Any],
    jobs: int,
    short_circuit: Callable[[Any], bool] | None = None,
) -> list[Any]:
    """One-shot fan-out: pool up, :meth:`~WorkerPool.map_ordered`, tear
    down.  The utility the pipeline's Solve stage calls when it has a
    single batch of independent probes and no reason to keep the pool
    warm across iterations."""
    with WorkerPool(payload, jobs) as pool:
        return pool.map_ordered(task, calls, short_circuit=short_circuit)


__all__ = [
    "ENV_JOBS",
    "POLL_SECONDS",
    "WorkerPool",
    "chunk_evenly",
    "parallel_map",
    "resolve_jobs",
    "worker_caps",
]
