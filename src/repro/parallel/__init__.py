"""Deterministic process-pool fan-out for the decision pipeline.

Layering: :mod:`repro.parallel.pool` is the generic spawn-pool plumbing
(job resolution, chunking, ordered merge, budget aggregation);
:mod:`repro.parallel.worker` holds the spawn-picklable task functions
that run inside workers; :mod:`repro.parallel.fanout` are the three
parent-side fan-out sites (batch queries, fixpoint probe sweeps, the
naive zero-set lattice).  ``jobs=1`` always bypasses this package —
the serial code paths remain the oracle.

The fan-out sites are imported lazily by their callers (the CLI, the
satisfiability layer, the naive backend), so importing
:mod:`repro.parallel` itself stays cheap.
"""

from repro.parallel.pool import (
    ENV_JOBS,
    WorkerPool,
    chunk_evenly,
    parallel_map,
    resolve_jobs,
    worker_caps,
)

__all__ = [
    "ENV_JOBS",
    "WorkerPool",
    "chunk_evenly",
    "parallel_map",
    "resolve_jobs",
    "worker_caps",
]
