"""The three fan-out sites of the parallel decision fabric.

Each site decomposes a serial computation into independent chunks over
one shared immutable input, dispatches them through
:class:`~repro.parallel.pool.WorkerPool`, and merges deterministically:

:func:`run_parallel_batch`
    ``repro batch --jobs N``.  Queries are partitioned by the
    fingerprint their answer is cached under — the owning
    constraint-graph component for satisfiability and same-island
    implications, the merged sub-schema for cross-island ones, the
    Section-4 extended schema for cardinality implications (see
    :func:`repro.components.query_partition_key`) — so two queries
    sharing artifacts land on the same worker and hit them warm, and
    component fan-out composes with query fan-out for free.  Then
    fingerprint groups are packed onto the least-loaded worker.
    Answers merge by input index; a budget exhaustion anywhere degrades
    every unanswered query to UNKNOWN.

:func:`parallel_fixpoint_support`
    ``satisfiable_classes``.  Each acceptability-fixpoint iteration
    fans the per-class strict probes of the maximal-support LP across
    workers (the forced-zero set is broadcast; candidates are chunked).
    The union of probe supports equals the serial shadow-LP support on
    every class unknown — candidate ``c`` is in either exactly when
    ``Ψ_S`` plus the forced zeros admits a solution positive on ``c``
    — so the forced-zero iteration, and hence the verdict map, is
    identical to serial.  Only the *witness solution* would differ,
    which is why this site serves the verdict-only sweep and the
    witness-returning entry points stay serial.

:func:`parallel_zero_set_search`
    The naive backend.  The parent *streams* the zero-sets in the
    serial enumeration order (size-ascending ``itertools.combinations``)
    into contiguous chunks — chunk boundaries are computed from the
    closed-form candidate count, so nothing is materialised up front —
    and chunk *k* holds strictly earlier candidates than chunk *k+1*;
    the first-hit short-circuit keeps every chunk *before* the lowest
    hit alive, guaranteeing the reported witness is the serial one
    regardless of completion order.

:func:`parallel_pruned_zero_set_search`
    The pruned backend (:mod:`repro.solver.pruned`).  The parent runs
    automorphism discovery and the canonicity filter (deterministic, so
    every run dispatches the same representative stream), chunks the
    surviving candidates, and attaches the nogoods known at dispatch
    time to each chunk; chunks return newly-learned nogoods, which the
    parent folds into its store for later dispatches.  Nogoods only
    match infeasible candidates, so verdicts and witnesses stay
    byte-identical to the serial pruned (and naive) walk even though
    *which* candidates get skipped depends on completion timing — the
    pruning counters under ``jobs > 1`` are therefore best-effort, the
    answers are not.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from itertools import combinations, islice
from typing import Any, Sequence

from repro.components.decompose import decompose_schema, query_partition_key
from repro.cr.schema import CRSchema
from repro.errors import BudgetExceededError
from repro.parallel.pool import WorkerPool, chunk_evenly, worker_caps
from repro.parallel.worker import (
    chain_spec,
    run_batch_chunk,
    run_probe_chunk,
    run_pruned_chunk,
    run_zero_chunk,
    unknown_record,
)
from repro.runtime.budget import Budget, activate, current_budget
from repro.session.session import SESSION_STATS_KEYS
from repro.solver.pruned import NogoodStore, is_canonical, orbit_permutations
from repro.solver.registry import AcceptabilityProblem, SolverBackend
from repro.solver.stats import bump_search_stat, fold_search_stats

ZERO_CHUNK_FACTOR = 4
"""Zero-set chunks per worker: small enough that a first hit cancels
most of the remaining lattice, large enough to amortise dispatch."""

PRUNED_CHUNK_SIZE = 32
"""Canonical representatives per pruned-search chunk.  Fixed-size (not
an even split) because the representative stream is lazy and nogoods
learned early should reach later dispatches — smaller chunks mean a
fresher store at each dispatch."""

_STATS_KEYS = SESSION_STATS_KEYS
"""The :class:`~repro.session.SessionStats` fields, summed per worker
so the parallel batch report keeps the serial report's shape.  The
canonical key list lives beside :class:`SessionStats` itself and is
shared with the serve daemon's per-request stats aggregation."""


# ---------------------------------------------------------------------------
# Site 1: batch queries
# ---------------------------------------------------------------------------


@dataclass
class BatchOutcome:
    """What ``repro batch`` needs back from a parallel run, in input
    order — the same observables the serial loop accumulates."""

    records: list[dict[str, Any]] = field(default_factory=list)
    texts: list[str] = field(default_factory=list)
    any_unknown: bool = False
    all_positive: bool = True
    session_stats: dict[str, int] = field(default_factory=dict)


def partition_queries(
    schema: CRSchema, queries: Sequence[tuple[str, Any]], jobs: int
) -> list[list[tuple[int, str, Any]]]:
    """Group queries by the fingerprint their artifacts live under,
    then pack groups onto the least-loaded of ``jobs`` bins.

    The key comes from :func:`repro.components.query_partition_key`:
    queries route to the constraint-graph component (or merged /
    Section-4 extended sub-schema) whose artifacts answer them
    (mirroring :class:`~repro.components.DecomposedSession`), so a
    component's base artifacts are acquired — and classified as
    reused/rebuilt — by exactly one worker, keeping the aggregated
    stats equal to a serial run's.  A query that cannot be routed
    (unknown names, illegal triple) keeps the whole-schema key — the
    worker will surface the real error at answer time.  Packing is
    deterministic (groups in first-occurrence order, ties to the lowest
    bin) and each query keeps its input index for the ordered merge.
    """
    decomposition = decompose_schema(schema)
    groups: dict[str, list[tuple[int, str, Any]]] = {}
    for index, (kind, query) in enumerate(queries):
        key = query_partition_key(decomposition, kind, query)
        groups.setdefault(key, []).append((index, kind, query))
    bins: list[list[tuple[int, str, Any]]] = [[] for _ in range(jobs)]
    for group in groups.values():
        target = min(range(jobs), key=lambda i: (len(bins[i]), i))
        bins[target].extend(group)
    return [partition for partition in bins if partition]


def run_parallel_batch(
    schema: CRSchema,
    queries: Sequence[tuple[str, Any]],
    jobs: int,
    backend: str | None = None,
    budget: Budget | None = None,
    cache_dir: str | None = None,
) -> BatchOutcome:
    """Answer a batch across ``jobs`` workers; observables match serial.

    With an explicit ``budget``, exhaustion anywhere (a worker's own
    caps, the aggregate account crossing a cap as charges merge, or the
    parent's wall-clock deadline) cancels the outstanding workers and
    degrades every still-unanswered query to UNKNOWN — the batch
    completes with exit-code-3 semantics instead of raising, exactly
    like the serial session loop.

    With a ``cache_dir``, each worker fronts its session cache with a
    persistent :class:`~repro.store.ArtifactStore` on that directory.
    Because queries are partitioned by fingerprint, a fingerprint's
    artifacts are built (and persisted) by exactly one worker per cold
    run, and the aggregated ``store_*`` counters equal the serial run's.
    """
    partitions = partition_queries(schema, queries, jobs)
    payload = {"schema": schema, "backend": backend, "cache_dir": cache_dir}
    answered: dict[int, tuple[dict[str, Any], str, bool, bool]] = {}
    stats: dict[str, int] = {key: 0 for key in _STATS_KEYS}
    failure: str | None = None
    with activate(budget):
        try:
            with WorkerPool(payload, jobs) as pool:
                calls = [
                    (worker_caps(budget), tuple(partition))
                    for partition in partitions
                ]
                results = pool.map_ordered(run_batch_chunk, calls)
        except BudgetExceededError as error:
            if budget is None:
                raise
            failure = str(error)
            results = []
    for chunk in results:
        if chunk is None:
            continue
        for index, record, text, positive, unknown in chunk["answers"]:
            answered[index] = (record, text, positive, unknown)
        for key, value in chunk["session_stats"].items():
            stats[key] = stats.get(key, 0) + value
    outcome = BatchOutcome(session_stats=stats)
    for index, (kind, query) in enumerate(queries):
        entry = answered.get(index)
        if entry is None:
            assert failure is not None, "a completed pool lost a query"
            record, text = unknown_record(kind, query, failure)
            entry = (record, text, False, True)
        record, text, positive, unknown = entry
        outcome.records.append(record)
        outcome.texts.append(text)
        outcome.any_unknown = outcome.any_unknown or unknown
        outcome.all_positive = outcome.all_positive and positive
    return outcome


# ---------------------------------------------------------------------------
# Site 2: per-class probes of the acceptability fixpoint
# ---------------------------------------------------------------------------


def parallel_fixpoint_support(
    problem: AcceptabilityProblem,
    chain: Sequence[SolverBackend],
    jobs: int,
) -> frozenset[str]:
    """The acceptability fixpoint with its probe loop fanned out.

    Verdict-identical to :func:`repro.solver.registry.fixpoint_support`:
    each iteration's support, restricted to class unknowns, is the same
    set (probe feasibility does not depend on which worker asks), so
    the forced-zero sets agree iteration by iteration.  Returns the
    converged support only — no witness solution, see module docstring.
    """
    payload = {"system": problem.system, "chain": chain_spec(chain)}
    budget = current_budget()
    forced_zero: set[str] = set()
    with WorkerPool(payload, jobs) as pool:
        while True:
            if budget is not None:
                budget.check()
            chunks = chunk_evenly(problem.class_unknowns, jobs)
            frozen = tuple(sorted(forced_zero))
            calls = [
                (worker_caps(budget), frozen, tuple(chunk))
                for chunk in chunks
            ]
            supports = pool.map_ordered(run_probe_chunk, calls)
            support: set[str] = set()
            for chunk_support in supports:
                support.update(chunk_support or ())
            newly_forced = {
                rel_unknown
                for rel_unknown, class_unknowns in problem.dependencies.items()
                if rel_unknown not in forced_zero
                and any(c not in support for c in class_unknowns)
            }
            if not newly_forced:
                return frozenset(support)
            forced_zero |= newly_forced


# ---------------------------------------------------------------------------
# Site 3: the naive backend's zero-set lattice
# ---------------------------------------------------------------------------


def _zero_set_count(problem: AcceptabilityProblem) -> int:
    """How many zero-sets the serial walk tests, in closed form.

    The walk skips exactly the subsets containing all of ``targets``:
    ``2^(n-t)`` of them when the targets all live in the universe, none
    when some target is not a class unknown (no subset can cover it),
    and *all* ``2^n`` when ``targets`` is empty (the empty set is a
    subset of every candidate).  Knowing the total up front is what lets
    the parent stream chunks without materialising the lattice.
    """
    universe = set(problem.class_unknowns)
    total = 2 ** len(universe)
    if not problem.targets:
        return 0
    if problem.targets <= universe:
        return total - 2 ** (len(universe) - len(problem.targets))
    return total


def _serial_zero_sets(
    problem: AcceptabilityProblem,
) -> Iterator[tuple[str, ...]]:
    """The zero-sets the serial walk tests, lazily, in serial order."""
    class_unknowns = list(problem.class_unknowns)
    for size in range(len(class_unknowns) + 1):
        for zero_tuple in combinations(class_unknowns, size):
            if not problem.targets <= frozenset(zero_tuple):
                yield zero_tuple


def _zero_search_payload(
    problem: AcceptabilityProblem, chain: Sequence[SolverBackend]
) -> dict[str, Any]:
    return {
        "system": problem.system,
        "class_unknowns": tuple(problem.class_unknowns),
        "dependencies": dict(problem.dependencies),
        "targets": problem.targets,
        "chain": chain_spec(chain),
    }


def _first_hit(
    results: Sequence[dict[str, Any] | None],
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """Fold chunk results (submission order) into the search triple."""
    for result in results:
        if result is not None and result.get("hit") is not None:
            hit = result["hit"]
            return True, hit["witness"], frozenset(hit["support"])
    return False, None, frozenset()


def parallel_zero_set_search(
    problem: AcceptabilityProblem,
    chain: Sequence[SolverBackend],
    jobs: int,
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """Theorem 3.4's enumeration, chunked in serial order with a
    first-hit short-circuit; bit-identical to the serial naive engine
    including the witness (see module docstring).

    The chunk boundaries reproduce ``chunk_evenly`` arithmetic over the
    closed-form candidate count, but the candidates themselves stream
    out of the enumeration only as chunks are dispatched — the parent
    holds at most the pool's submission window, not ``2^n`` tuples.
    """
    total = _zero_set_count(problem)
    if total == 0:
        return False, None, frozenset()
    budget = current_budget()
    caps = worker_caps(budget)
    count = max(1, min(jobs * ZERO_CHUNK_FACTOR, total))
    base, extra = divmod(total, count)
    stream = _serial_zero_sets(problem)

    def calls() -> Iterator[tuple[Any, ...]]:
        for index in range(count):
            size = base + (1 if index < extra else 0)
            chunk = tuple(islice(stream, size))
            if chunk:
                yield (caps, chunk)

    def fold(index: int, result: dict[str, Any]) -> None:
        del index
        fold_search_stats(result.get("stats"))

    with WorkerPool(_zero_search_payload(problem, chain), jobs) as pool:
        results = pool.map_ordered_streaming(
            run_zero_chunk,
            calls(),
            short_circuit=lambda result: result.get("hit") is not None,
            on_result=fold,
        )
    return _first_hit(results)


def parallel_pruned_zero_set_search(
    problem: AcceptabilityProblem,
    chain: Sequence[SolverBackend],
    jobs: int,
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """The pruned walk fanned out over orbit representatives.

    The parent owns the deterministic parts — automorphism discovery,
    canonicity filtering (``pruned_by_orbit`` is bumped parent-side, so
    it matches the serial count exactly) — and streams fixed-size
    chunks of representatives, each carrying the nogood store as of its
    dispatch.  Workers return what they learned; the store saturates
    between dispatches.  Verdict and witness are byte-identical to the
    serial walk (nogoods only match infeasible candidates; the
    short-circuit keeps earlier chunks alive), while
    ``pruned_by_nogood`` / ``zero_sets_enumerated`` depend on dispatch
    timing under ``jobs > 1``.
    """
    names = list(problem.class_unknowns)
    perms, orbits_found = orbit_permutations(problem)
    bump_search_stat("orbits_found", orbits_found)
    store = NogoodStore()
    budget = current_budget()
    caps = worker_caps(budget)

    def representatives() -> Iterator[tuple[str, ...]]:
        for size in range(len(names) + 1):
            for combo in combinations(range(len(names)), size):
                zero_tuple = tuple(names[index] for index in combo)
                if problem.targets <= frozenset(zero_tuple):
                    continue
                if perms and not is_canonical(combo, perms):
                    bump_search_stat("pruned_by_orbit")
                    continue
                yield zero_tuple

    def calls() -> Iterator[tuple[Any, ...]]:
        stream = representatives()
        while True:
            chunk = tuple(islice(stream, PRUNED_CHUNK_SIZE))
            if not chunk:
                return
            yield (caps, chunk, tuple(store.nogoods))

    def merge(index: int, result: dict[str, Any]) -> None:
        del index
        store.install_all(result.get("nogoods") or ())
        fold_search_stats(result.get("stats"))

    with WorkerPool(_zero_search_payload(problem, chain), jobs) as pool:
        results = pool.map_ordered_streaming(
            run_pruned_chunk,
            calls(),
            short_circuit=lambda result: result.get("hit") is not None,
            on_result=merge,
        )
    return _first_hit(results)


__all__ = [
    "BatchOutcome",
    "PRUNED_CHUNK_SIZE",
    "ZERO_CHUNK_FACTOR",
    "parallel_fixpoint_support",
    "parallel_pruned_zero_set_search",
    "parallel_zero_set_search",
    "partition_queries",
    "run_parallel_batch",
]
