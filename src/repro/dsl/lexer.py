"""Tokenizer for the CR schema DSL."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    ["schema", "class", "isa", "relationship", "cardinality", "in",
     "disjoint", "cover", "by"]
)

PUNCTUATION = frozenset("{}(),:;.*")


@dataclass(frozen=True)
class Token:
    """One lexical unit with its 1-based source position.

    ``kind`` is ``"ident"``, ``"int"``, ``"keyword"``, a punctuation
    character, or ``"eof"``.
    """

    kind: str
    value: str
    line: int
    column: int

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return repr(self.value)


def tokenize(text: str) -> list[Token]:
    """Tokenize DSL text; raises :class:`ParseError` on bad characters.

    ``//`` starts a comment running to end of line.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "/" and text[index : index + 2] == "//":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char in PUNCTUATION:
            tokens.append(Token(char, char, line, column))
            index += 1
            column += 1
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            value = text[start:index]
            tokens.append(Token("int", value, line, column))
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            value = text[start:index]
            kind = "keyword" if value in KEYWORDS else "ident"
            tokens.append(Token(kind, value, line, column))
            column += index - start
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
