"""Serialize a CR-schema back to DSL text (round-trips with the parser)."""

from __future__ import annotations

from repro.cr.schema import CRSchema


def serialize_schema(schema: CRSchema) -> str:
    """Render a schema in the DSL syntax.

    The output parses back to an equal schema (same classes in the same
    order, same relationships, ISA statements, cardinality declarations
    and extensions) — the property-based round-trip tests rely on this.
    """
    lines: list[str] = [f"schema {schema.name} {{"]

    isa_of: dict[str, list[str]] = {}
    for sub, sup in schema.isa_statements:
        isa_of.setdefault(sub, []).append(sup)
    for cls in schema.classes:
        parents = isa_of.get(cls)
        if parents:
            lines.append(f"  class {cls} isa {', '.join(parents)};")
        else:
            lines.append(f"  class {cls};")

    for rel in schema.relationships:
        inner = ", ".join(f"{role}: {cls}" for role, cls in rel.signature)
        lines.append(f"  relationship {rel.name}({inner});")

    for (cls, rel_name, role), card in sorted(schema.declared_cards.items()):
        upper = "*" if card.maxc is None else str(card.maxc)
        lines.append(
            f"  cardinality {cls} in {rel_name}.{role}: ({card.minc}, {upper});"
        )

    for group in schema.disjointness_groups:
        lines.append(f"  disjoint {', '.join(sorted(group))};")
    for covered, coverers in schema.coverings:
        lines.append(f"  cover {covered} by {', '.join(sorted(coverers))};")

    lines.append("}")
    return "\n".join(lines) + "\n"
