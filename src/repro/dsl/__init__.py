"""A textual schema language for the CR model.

The DSL mirrors the paper's Figure-3 notation::

    schema Meeting {
      class Speaker;
      class Discussant isa Speaker;
      class Talk;
      relationship Holds(U1: Speaker, U2: Talk);
      relationship Participates(U3: Discussant, U4: Talk);
      cardinality Speaker in Holds.U1: (1, *);
      cardinality Discussant in Holds.U1: (0, 2);
      cardinality Talk in Holds.U2: (1, 1);
      cardinality Discussant in Participates.U3: (1, 1);
      cardinality Talk in Participates.U4: (1, *);
    }

plus the Section-5 extensions ``disjoint A, B;`` and
``cover A by B, C;``.  ``//`` starts a line comment.

:func:`parse_schema` and :func:`serialize_schema` round-trip.
"""

from repro.dsl.lexer import Token, tokenize
from repro.dsl.parser import parse_schema
from repro.dsl.serializer import serialize_schema

__all__ = ["Token", "tokenize", "parse_schema", "serialize_schema"]
