"""Recursive-descent parser for the CR schema DSL.

Grammar (see the package docstring for an example)::

    schema      := "schema" IDENT "{" statement* "}"
    statement   := class | relationship | cardinality | disjoint | cover
    class       := "class" IDENT ("isa" IDENT ("," IDENT)*)? ";"
    relationship:= "relationship" IDENT
                   "(" IDENT ":" IDENT ("," IDENT ":" IDENT)* ")" ";"
    cardinality := "cardinality" IDENT "in" IDENT "." IDENT ":"
                   "(" INT "," (INT | "*") ")" ";"
    disjoint    := "disjoint" IDENT ("," IDENT)+ ";"
    cover       := "cover" IDENT "by" IDENT ("," IDENT)* ";"

Semantic validation (unknown symbols, refinement legality, role
uniqueness) is delegated to :class:`repro.cr.schema.CRSchema`; parse
errors carry source positions.
"""

from __future__ import annotations

from repro.cr.builder import SchemaBuilder
from repro.cr.schema import CRSchema, UNBOUNDED
from repro.dsl.lexer import Token, tokenize
from repro.errors import ParseError


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise self._error(
                f"expected {expected!r}, found {token.describe()}", token
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect("keyword", word)

    def _expect_ident(self) -> str:
        return self._expect("ident").value

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value == word

    # -- grammar -----------------------------------------------------------

    def parse(self) -> CRSchema:
        self._expect_keyword("schema")
        builder = SchemaBuilder(self._expect_ident())
        self._expect("{")
        pending_isa: list[tuple[str, str]] = []
        while not self._peek().kind == "}":
            if self._at_keyword("class"):
                self._parse_class(builder, pending_isa)
            elif self._at_keyword("relationship"):
                self._parse_relationship(builder)
            elif self._at_keyword("cardinality"):
                self._parse_cardinality(builder)
            elif self._at_keyword("disjoint"):
                self._parse_disjoint(builder)
            elif self._at_keyword("cover"):
                self._parse_cover(builder)
            else:
                raise self._error(
                    "expected a statement (class / relationship / "
                    f"cardinality / disjoint / cover), found "
                    f"{self._peek().describe()}"
                )
        self._expect("}")
        self._expect("eof")
        for sub, sup in pending_isa:
            builder.isa(sub, sup)
        return builder.build()

    def _parse_class(
        self, builder: SchemaBuilder, pending_isa: list[tuple[str, str]]
    ) -> None:
        self._expect_keyword("class")
        name = self._expect_ident()
        builder.cls(name)
        if self._at_keyword("isa"):
            self._advance()
            pending_isa.append((name, self._expect_ident()))
            while self._peek().kind == ",":
                self._advance()
                pending_isa.append((name, self._expect_ident()))
        self._expect(";")

    def _parse_relationship(self, builder: SchemaBuilder) -> None:
        self._expect_keyword("relationship")
        name = self._expect_ident()
        self._expect("(")
        roles: dict[str, str] = {}
        while True:
            role = self._expect_ident()
            self._expect(":")
            cls = self._expect_ident()
            if role in roles:
                raise self._error(f"role {role!r} declared twice")
            roles[role] = cls
            if self._peek().kind == ",":
                self._advance()
                continue
            break
        self._expect(")")
        self._expect(";")
        builder.relationship(name, **roles)

    def _parse_cardinality(self, builder: SchemaBuilder) -> None:
        self._expect_keyword("cardinality")
        cls = self._expect_ident()
        self._expect_keyword("in")
        rel = self._expect_ident()
        self._expect(".")
        role = self._expect_ident()
        self._expect(":")
        self._expect("(")
        minimum = int(self._expect("int").value)
        self._expect(",")
        token = self._peek()
        if token.kind == "*":
            self._advance()
            maximum: int | None = UNBOUNDED
        elif token.kind == "int":
            maximum = int(self._advance().value)
        else:
            raise self._error(
                f"expected an integer or '*', found {token.describe()}", token
            )
        self._expect(")")
        self._expect(";")
        builder.card(cls, rel, role, minimum, maximum)

    def _parse_disjoint(self, builder: SchemaBuilder) -> None:
        self._expect_keyword("disjoint")
        classes = [self._expect_ident()]
        while self._peek().kind == ",":
            self._advance()
            classes.append(self._expect_ident())
        if len(classes) < 2:
            raise self._error("disjoint needs at least two classes")
        self._expect(";")
        builder.disjoint(*classes)

    def _parse_cover(self, builder: SchemaBuilder) -> None:
        self._expect_keyword("cover")
        covered = self._expect_ident()
        self._expect_keyword("by")
        coverers = [self._expect_ident()]
        while self._peek().kind == ",":
            self._advance()
            coverers.append(self._expect_ident())
        self._expect(";")
        builder.cover(covered, *coverers)


def parse_schema(text: str) -> CRSchema:
    """Parse DSL text into a validated :class:`CRSchema`."""
    return _Parser(tokenize(text)).parse()
