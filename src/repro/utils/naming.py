"""Name management: identifier validation and fresh-name generation.

The implication engine of Section 4 of the paper introduces an auxiliary
class ``C_exc`` into a copy of the schema; :class:`FreshNames` guarantees
the auxiliary name cannot collide with a user symbol.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def is_identifier(name: str) -> bool:
    """Return whether ``name`` is a valid schema symbol.

    Schema symbols follow Python-identifier syntax (letters, digits and
    underscores, not starting with a digit).  The DSL and the renderers
    rely on this so that symbols never need quoting.
    """
    return bool(_IDENTIFIER_RE.match(name))


class FreshNames:
    """Generate names guaranteed not to clash with a set of taken names.

    >>> fresh = FreshNames(["C", "C_exc"])
    >>> fresh.fresh("C_exc")
    'C_exc_1'
    >>> fresh.fresh("C_exc")
    'C_exc_2'
    >>> fresh.fresh("D")
    'D'
    """

    def __init__(self, taken: Iterable[str] = ()) -> None:
        self._taken = set(taken)

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken without generating anything."""
        self._taken.add(name)

    def fresh(self, stem: str) -> str:
        """Return ``stem`` itself if free, else ``stem_1``, ``stem_2``, ..."""
        if stem not in self._taken:
            self._taken.add(stem)
            return stem
        counter = 1
        while f"{stem}_{counter}" in self._taken:
            counter += 1
        name = f"{stem}_{counter}"
        self._taken.add(name)
        return name
