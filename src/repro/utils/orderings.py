"""Deterministic ordering helpers.

The decision procedure enumerates exponentially many compound classes;
to make every run (and every rendered figure) reproducible, all
collections exposed by the library iterate in a deterministic order.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import TypeVar

from repro.errors import ReproError

T = TypeVar("T", bound=Hashable)


def stable_sorted_set(items: Iterable[T]) -> tuple[T, ...]:
    """Deduplicate ``items`` and return them sorted, as a tuple.

    The items must be mutually comparable (the library only uses this on
    strings and on tuples of strings).
    """
    return tuple(sorted(set(items)))


def topological_levels(edges: Mapping[T, Iterable[T]]) -> list[list[T]]:
    """Layer a DAG into levels: a node appears after all its predecessors.

    ``edges`` maps each node to the nodes it points to ("is-a parents" in
    the library's use).  Nodes that only appear as targets are included.
    Within a level, nodes are sorted for determinism.

    Raises :class:`ReproError` if the graph has a cycle that is not a
    self-loop.  (ISA cycles are legal in the CR model — they just force
    extensional equality — so callers collapse strongly connected
    components before asking for levels.)
    """
    successors: dict[T, set[T]] = {}
    indegree: dict[T, int] = {}
    for node, targets in edges.items():
        indegree.setdefault(node, 0)
        for target in targets:
            if target == node:
                continue
            indegree.setdefault(target, 0)
            if target not in successors.setdefault(node, set()):
                successors[node].add(target)
                indegree[target] += 1

    current = sorted(node for node, degree in indegree.items() if degree == 0)
    levels: list[list[T]] = []
    seen = 0
    while current:
        levels.append(current)
        seen += len(current)
        next_nodes: set[T] = set()
        for node in current:
            for target in successors.get(node, ()):
                indegree[target] -= 1
                if indegree[target] == 0:
                    next_nodes.add(target)
        current = sorted(next_nodes)
    if seen != len(indegree):
        raise ReproError("topological_levels: the graph contains a cycle")
    return levels
