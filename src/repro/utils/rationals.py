"""Exact rational helpers used by the solver substrate.

The paper's systems are homogeneous with integer coefficients, so a
rational solution can always be scaled to an integer one; these helpers
implement that scaling exactly.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from fractions import Fraction


def integer_lcm(values: Iterable[int]) -> int:
    """Least common multiple of positive integers (1 for an empty input)."""
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"integer_lcm requires positive integers, got {value}")
        result = result * value // math.gcd(result, value)
    return result


def fraction_lcm(values: Iterable[Fraction]) -> Fraction:
    """LCM of positive rationals: lcm(numerators) / gcd(denominators).

    This is the smallest positive rational that is an integer multiple of
    every input.  Returns ``Fraction(1)`` for an empty input.
    """
    numerator_lcm = 1
    denominator_gcd = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"fraction_lcm requires positive rationals, got {value}")
        numerator_lcm = numerator_lcm * value.numerator // math.gcd(
            numerator_lcm, value.numerator
        )
        denominator_gcd = math.gcd(denominator_gcd, value.denominator)
    if denominator_gcd == 0:
        return Fraction(1)
    return Fraction(numerator_lcm, denominator_gcd)


def common_denominator_scale(values: Iterable[Fraction]) -> int:
    """Smallest positive integer ``q`` such that ``q * v`` is integral for all ``v``."""
    scale = 1
    for value in values:
        scale = scale * value.denominator // math.gcd(scale, value.denominator)
    return scale


def parse_fraction(text: str) -> Fraction:
    """Parse ``"3"``, ``"3/4"`` or ``"inf"``-free decimal text into a Fraction.

    Used by the DSL for cardinality bounds; raises ``ValueError`` on
    malformed input (the DSL wraps it into a :class:`repro.errors.ParseError`).
    """
    return Fraction(text.strip())
