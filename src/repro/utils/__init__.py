"""Small, dependency-free helpers shared across the library."""

from repro.utils.naming import FreshNames, is_identifier
from repro.utils.orderings import stable_sorted_set, topological_levels
from repro.utils.rationals import (
    common_denominator_scale,
    fraction_lcm,
    integer_lcm,
    parse_fraction,
)

__all__ = [
    "FreshNames",
    "is_identifier",
    "stable_sorted_set",
    "topological_levels",
    "common_denominator_scale",
    "fraction_lcm",
    "integer_lcm",
    "parse_fraction",
]
