"""Schema deltas at component granularity.

:func:`compute_delta` compares two decompositions by component
fingerprint: a new-side component whose fingerprint also appears on the
old side is *unchanged* (its artifacts — memory or store — are reusable
as-is), otherwise it is *changed* (must be rebuilt); old-side components
with no new-side counterpart are *removed*.  Matching is by multiset
(`collections.Counter`), so two identical islands on one side pair with
two on the other rather than collapsing into one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.components.decompose import ComponentDecomposition, SchemaComponent


@dataclass(frozen=True)
class SchemaDelta:
    """The component-level difference between two schemas.

    ``unchanged`` and ``changed`` are new-side components; ``removed``
    are old-side components.  Orders follow each side's component order.
    """

    old: ComponentDecomposition
    new: ComponentDecomposition
    unchanged: tuple[SchemaComponent, ...]
    changed: tuple[SchemaComponent, ...]
    removed: tuple[SchemaComponent, ...]

    def as_dict(self) -> dict[str, object]:
        def rows(
            components: tuple[SchemaComponent, ...],
        ) -> list[dict[str, object]]:
            return [
                {
                    "fingerprint": component.fingerprint,
                    "classes": sorted(component.classes),
                }
                for component in components
            ]

        return {
            "old_total": len(self.old.components),
            "new_total": len(self.new.components),
            "unchanged": rows(self.unchanged),
            "changed": rows(self.changed),
            "removed": rows(self.removed),
        }


def compute_delta(
    old: ComponentDecomposition, new: ComponentDecomposition
) -> SchemaDelta:
    """Pair up components of ``old`` and ``new`` by fingerprint multiset."""
    available = Counter(component.fingerprint for component in old.components)
    unchanged: list[SchemaComponent] = []
    changed: list[SchemaComponent] = []
    for component in new.components:
        if available[component.fingerprint] > 0:
            available[component.fingerprint] -= 1
            unchanged.append(component)
        else:
            changed.append(component)
    remaining = Counter(component.fingerprint for component in new.components)
    removed: list[SchemaComponent] = []
    for component in old.components:
        if remaining[component.fingerprint] > 0:
            remaining[component.fingerprint] -= 1
        else:
            removed.append(component)
    return SchemaDelta(
        old, new, tuple(unchanged), tuple(changed), tuple(removed)
    )


__all__ = ["SchemaDelta", "compute_delta"]
