"""Component-decomposed reasoning sessions.

:class:`DecomposedSession` is a drop-in front-end with the
:class:`~repro.session.session.ReasoningSession` surface that reasons
per constraint-graph component instead of over the whole schema:

* the ``decompose`` pipeline stage splits the schema into islands, each
  cached (memory LRU *and* persistent store) under its own fingerprint,
  so a one-island edit invalidates one entry, not the bundle;
* satisfiability routes to the owning component — the Theorem-3.4
  zero-set search pays ``2^|island|``, never ``2^|schema|`` — and
  ``satisfiable_classes`` folds the per-component verdict maps under
  the ``combine`` stage;
* ISA/disjointness questions whose classes span islands are decided on
  the merged sub-schema of just the touched components (equivalent to
  the whole schema; DESIGN §13), and Section-4 cardinality questions on
  the owning component's extended schema;
* every first touch of a component's base artifacts *classifies* it —
  warm entries count as ``components_reused``, cold ones as
  ``components_rebuilt`` — through the shared
  :meth:`~repro.session.cache.CacheStats.bump` funnel, which is what
  ``repro diff``, ``batch --stats`` and ``/metrics`` report.

For a single-component schema the component *is* the original schema
object, so cache keys, artifacts, answers, and error messages are
bit-identical to ``ReasoningSession``.  Query counting and validation
ordering deliberately replicate ``ReasoningSession`` line for line —
the session-level ``queries`` counter is owned here (inner per-component
sessions keep their own counts, which are ignored).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.components.decompose import (
    ComponentDecomposition,
    SchemaComponent,
    decompose_schema,
)
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.expansion import ExpansionLimits
from repro.cr.implication import (
    ImplicationQuery,
    ImplicationResult,
    exceptional_schema,
)
from repro.cr.satisfiability import SatisfiabilityResult
from repro.cr.schema import Card, CRSchema, UNBOUNDED
from repro.errors import ReproError, SchemaError
from repro.pipeline import STAGE_COMBINE, STAGE_DECOMPOSE, stage
from repro.runtime.budget import Budget
from repro.runtime.fallback import DEFAULT_FALLBACK, FallbackPolicy
from repro.runtime.outcome import Verdict
from repro.session.cache import SessionCache
from repro.session.session import ENGINE, ReasoningSession, SessionStats


class DecomposedSession:
    """Answer queries against one schema, one component at a time.

    Same constructor and query surface as
    :class:`~repro.session.session.ReasoningSession`; ``cache``,
    ``budget``, ``limits`` and ``fallback`` are shared by every inner
    per-component session.
    """

    def __init__(
        self,
        schema: CRSchema,
        cache: SessionCache | None = None,
        budget: Budget | None = None,
        limits: ExpansionLimits | None = None,
        fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    ) -> None:
        self.schema = schema
        self.cache = cache if cache is not None else SessionCache()
        self.budget = budget
        self.limits = limits
        self.fallback = fallback
        # Timing-only stage: no budget phase, so construction stays
        # check-free exactly like ReasoningSession.__init__.
        with stage(STAGE_DECOMPOSE):
            self.decomposition = decompose_schema(schema)
        self.fingerprint = self.decomposition.whole_fingerprint
        self.queries = 0
        self.components_total = 0
        self.components_reused = 0
        self.components_rebuilt = 0
        self._sessions: dict[int, ReasoningSession] = {}
        self._merged_sessions: dict[frozenset[int], ReasoningSession] = {}
        self._classified: set[str] = set()

    # -- component plumbing ------------------------------------------------

    @property
    def components(self) -> tuple[SchemaComponent, ...]:
        return self.decomposition.components

    def _session_for(self, component: SchemaComponent) -> ReasoningSession:
        session = self._sessions.get(component.index)
        if session is None:
            session = self._sessions[component.index] = ReasoningSession(
                component.schema,
                cache=self.cache,
                budget=self.budget,
                limits=self.limits,
                fallback=self.fallback,
            )
        return session

    def _classify(self, component: SchemaComponent) -> None:
        """First touch of a component's base artifacts: acquire the cache
        entry and record whether it arrived warm (``components_reused``)
        or must be built (``components_rebuilt``)."""
        if component.fingerprint in self._classified:
            return
        self._classified.add(component.fingerprint)
        entry = self.cache.artifacts(
            component.schema, component.fingerprint, self.limits, self.fallback
        )
        stats = self.cache.stats
        stats.bump("components_total")
        self.components_total += 1
        if entry.warm:
            stats.bump("components_reused")
            self.components_reused += 1
        else:
            stats.bump("components_rebuilt")
            self.components_rebuilt += 1

    def classify_all(self) -> None:
        """Classify every component eagerly (the ``repro diff`` path)."""
        for component in self.decomposition.components:
            self._classify(component)

    def _merged_session(self, indices: frozenset[int]) -> ReasoningSession:
        session = self._merged_sessions.get(indices)
        if session is None:
            with stage(STAGE_COMBINE):
                merged = self.decomposition.merged_schema(indices)
            session = self._merged_sessions[indices] = ReasoningSession(
                merged,
                cache=self.cache,
                budget=self.budget,
                limits=self.limits,
                fallback=self.fallback,
            )
        return session

    def _routed_session(self, classes: Iterable[str]) -> ReasoningSession:
        """The session deciding a query over ``classes``: the owning
        component when they share one, else the merged sub-schema."""
        components = self.decomposition.components_of(classes)
        if len(components) == 1:
            self._classify(components[0])
            return self._session_for(components[0])
        return self._merged_session(
            frozenset(component.index for component in components)
        )

    @property
    def warm(self) -> bool:
        """Whether every component's artifacts are fully built."""
        # Peek through the private map (as ReasoningSession.warm does)
        # to keep the observation hit-free.
        entries = self.cache._entries
        for component in self.decomposition.components:
            entry = entries.get(component.fingerprint)
            if entry is None or not entry.warm:
                return False
        return True

    @property
    def stats(self) -> SessionStats:
        cache_stats = self.cache.stats
        return SessionStats(queries=self.queries, **cache_stats.as_dict())

    def for_schema(self, schema: CRSchema) -> DecomposedSession:
        """A sibling session for an edited schema, sharing this cache.

        Components untouched by the edit keep their fingerprints, so the
        sibling re-acquires their artifacts warm and only the edited
        island goes cold — the incremental contract ``repro diff``
        reports on.
        """
        return DecomposedSession(
            schema,
            cache=self.cache,
            budget=self.budget,
            limits=self.limits,
            fallback=self.fallback,
        )

    # -- satisfiability ----------------------------------------------------

    def is_class_satisfiable(
        self, cls: str, budget: Budget | None = None
    ) -> SatisfiabilityResult:
        """Theorem-3.3 satisfiability of ``cls``, decided on its island."""
        self.schema.require_class(cls)
        self.queries += 1
        component = self.decomposition.component_of(cls)
        self._classify(component)
        return self._session_for(component).is_class_satisfiable(
            cls, budget=budget
        )

    def satisfiable_classes(
        self, budget: Budget | None = None
    ) -> dict[str, bool | Verdict]:
        """Satisfiability of every class: one fixpoint per island,
        verdict maps folded in declaration order under ``combine``."""
        self.queries += 1
        components = self.decomposition.components
        if len(components) == 1:
            self._classify(components[0])
            return self._session_for(components[0]).satisfiable_classes(
                budget=budget
            )
        verdicts: dict[str, bool | Verdict] = {}
        for component in components:
            self._classify(component)
            verdicts.update(
                self._session_for(component).satisfiable_classes(budget=budget)
            )
        with stage(STAGE_COMBINE):
            return {cls: verdicts[cls] for cls in self.schema.classes}

    def is_schema_fully_satisfiable(self, budget: Budget | None = None) -> bool:
        """Whether no class is forced empty (UNKNOWN reads ``False``)."""
        return all(self.satisfiable_classes(budget).values())

    # -- implication -------------------------------------------------------

    def implies(
        self, query: ImplicationQuery, budget: Budget | None = None
    ) -> ImplicationResult:
        """Decide ``S ⊨ K`` on the touched component(s) (Section 4)."""
        if isinstance(query, IsaStatement):
            return self._implies_isa(query, budget)
        if isinstance(query, DisjointnessStatement):
            return self._implies_disjointness(query, budget)
        if isinstance(query, MinCardinalityStatement):
            return self._implies_min(query, budget)
        if isinstance(query, MaxCardinalityStatement):
            return self._implies_max(query, budget)
        raise ReproError(f"unsupported implication query {query!r}")

    def implies_all(
        self,
        queries: Iterable[ImplicationQuery],
        budget: Budget | None = None,
    ) -> list[ImplicationResult]:
        """Batch form of :meth:`implies`; one shared ``budget`` degrades
        the remaining answers to UNKNOWN on exhaustion."""
        effective = budget if budget is not None else self.budget
        return [self.implies(query, budget=effective) for query in queries]

    # -- implication internals --------------------------------------------

    def _implies_isa(
        self, query: IsaStatement, budget: Budget | None
    ) -> ImplicationResult:
        self.schema.require_class(query.sub)
        self.schema.require_class(query.sup)
        self.queries += 1
        session = self._routed_session((query.sub, query.sup))
        return session.implies(query, budget=budget)

    def _implies_disjointness(
        self, query: DisjointnessStatement, budget: Budget | None
    ) -> ImplicationResult:
        class_list = sorted(query.classes)
        if len(class_list) < 2:
            raise SchemaError("disjointness query needs at least two classes")
        for cls in class_list:
            self.schema.require_class(cls)
        self.queries += 1
        session = self._routed_session(class_list)
        return session.implies(query, budget=budget)

    def _implies_cardinality(
        self,
        query: MinCardinalityStatement | MaxCardinalityStatement,
        exceptional_card: Card,
        budget: Budget | None,
    ) -> ImplicationResult:
        # Validate (and fail) against the whole schema before counting,
        # exactly as the monolithic session does; a *legal* query's
        # class, relationship and primary class all share one island,
        # so routing to the owner afterwards cannot fail.
        exceptional_schema(
            self.schema, query.cls, query.rel, query.role, exceptional_card
        )
        self.queries += 1
        component = self.decomposition.component_of(query.cls)
        session = self._session_for(component)
        return session.implies(query, budget=budget)

    def _implies_min(
        self, query: MinCardinalityStatement, budget: Budget | None
    ) -> ImplicationResult:
        if query.value == 0:
            self.queries += 1
            return ImplicationResult(query, True, ENGINE, None)
        return self._implies_cardinality(
            query, Card(0, query.value - 1), budget
        )

    def _implies_max(
        self, query: MaxCardinalityStatement, budget: Budget | None
    ) -> ImplicationResult:
        return self._implies_cardinality(
            query, Card(query.value + 1, UNBOUNDED), budget
        )

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        state = "warm" if self.warm else "cold"
        return (
            f"DecomposedSession({self.schema.name!r}, "
            f"{len(self.decomposition.components)} component(s), {state}, "
            f"fingerprint={self.fingerprint[:12]}…, "
            f"{self.queries} queries, {self.cache!r})"
        )


__all__ = ["DecomposedSession"]
