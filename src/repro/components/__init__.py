"""Component-decomposed reasoning: islands, routing, sessions, deltas.

=====================================  ==================================
:mod:`repro.components.graph`          constraint graph over classes and
                                       its union-find components
:mod:`repro.components.decompose`      canonical per-component
                                       sub-schemas, fingerprints, merged
                                       sub-schemas, query routing keys
:mod:`repro.components.session`        :class:`DecomposedSession` — the
                                       ``ReasoningSession`` surface,
                                       reasoning one island at a time
:mod:`repro.components.diff`           component-level schema deltas
                                       (the engine behind ``repro diff``)
=====================================  ==================================

Quickstart::

    from repro.components import DecomposedSession, decompose_schema

    session = DecomposedSession(schema)      # `decompose` pipeline stage
    session.satisfiable_classes()            # one fixpoint per island
    session.stats.components_rebuilt         # -> number of islands built

The invariant this package exists to protect: nothing in here expands
the whole schema.  Expansion and system builds happen inside the inner
per-component ``ReasoningSession``s only (rule R7 in
``tools/check_invariants.py``).
"""

from repro.components.decompose import (
    ComponentDecomposition,
    SchemaComponent,
    decompose_schema,
    query_partition_key,
    sub_schema,
)
from repro.components.diff import SchemaDelta, compute_delta
from repro.components.graph import connected_class_sets, constraint_edges
from repro.components.session import DecomposedSession

__all__ = [
    "ComponentDecomposition",
    "DecomposedSession",
    "SchemaComponent",
    "SchemaDelta",
    "compute_delta",
    "connected_class_sets",
    "constraint_edges",
    "decompose_schema",
    "query_partition_key",
    "sub_schema",
]
