"""Canonical per-component sub-schemas and query routing.

:func:`decompose_schema` splits a schema along the constraint-graph
islands of :mod:`repro.components.graph`.  Each island becomes a
:class:`SchemaComponent`: a canonical sub-schema (statements filtered in
declaration order, so a component is itself a well-formed ``CRSchema``)
plus its content-addressed fingerprint.  A single-island schema keeps
the *original* schema object as its component schema, so fingerprints,
cache keys, and artifacts are bit-identical to the monolithic path.

:class:`ComponentDecomposition` also owns the *merged* sub-schemas used
for cross-component queries (an ISA or disjointness question whose
classes span islands is decided on the union of just those islands —
equivalent to the whole schema by the model-composition argument of
DESIGN §13), and :func:`query_partition_key` gives the deterministic
routing key the parallel fan-out groups queries by.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.components.graph import connected_class_sets
from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.implication import ImplicationQuery, exceptional_schema
from repro.cr.schema import Card, CRSchema, UNBOUNDED
from repro.errors import ReproError
from repro.session.fingerprint import schema_fingerprint


@dataclass(frozen=True)
class SchemaComponent:
    """One constraint-graph island of a schema.

    ``schema`` is the canonical sub-schema induced by ``classes``; for a
    single-component decomposition it is the original schema object
    itself.  ``fingerprint`` is its content-addressed identity — the
    cache/store key at component granularity.
    """

    index: int
    classes: frozenset[str]
    schema: CRSchema
    fingerprint: str


def sub_schema(schema: CRSchema, members: frozenset[str], name: str) -> CRSchema:
    """The sub-schema induced by ``members``, in declaration order.

    Statements are kept exactly when all their classes lie in
    ``members``; when ``members`` is a union of constraint-graph islands
    every declared statement is either kept whole or dropped whole, so
    the result is a well-formed schema whose models are the restrictions
    of the whole schema's models.
    """
    return CRSchema(
        classes=tuple(cls for cls in schema.classes if cls in members),
        relationships=tuple(
            rel
            for rel in schema.relationships
            if all(cls in members for _role, cls in rel.signature)
        ),
        isa=tuple(
            (sub, sup)
            for sub, sup in schema.isa_statements
            if sub in members and sup in members
        ),
        cards={
            key: card
            for key, card in schema.declared_cards.items()
            if key[0] in members
        },
        disjointness=tuple(
            group for group in schema.disjointness_groups if group <= members
        ),
        coverings=tuple(
            (covered, coverers)
            for covered, coverers in schema.coverings
            if covered in members
        ),
        name=name,
    )


class ComponentDecomposition:
    """A schema split into constraint-graph components.

    Construct via :func:`decompose_schema`.  Owns the class → component
    map, the lazily computed whole-schema fingerprint, and a cache of
    merged sub-schemas (keyed by the frozen set of component indices)
    for cross-component queries.
    """

    def __init__(
        self, schema: CRSchema, components: tuple[SchemaComponent, ...]
    ) -> None:
        self.schema = schema
        self.components = components
        self._owner: dict[str, SchemaComponent] = {}
        for component in components:
            for cls in component.classes:
                self._owner[cls] = component
        self._whole_fingerprint: str | None = (
            components[0].fingerprint if len(components) == 1 else None
        )
        self._all_indices = frozenset(range(len(components)))
        self._merged: dict[frozenset[int], CRSchema] = {}
        self._merged_fingerprints: dict[frozenset[int], str] = {}

    @property
    def whole_fingerprint(self) -> str:
        """The undecomposed schema's fingerprint (computed at most once)."""
        if self._whole_fingerprint is None:
            self._whole_fingerprint = schema_fingerprint(self.schema)
        return self._whole_fingerprint

    def component_of(self, cls: str) -> SchemaComponent:
        """The unique component owning ``cls`` (validates the name)."""
        self.schema.require_class(cls)
        return self._owner[cls]

    def components_of(
        self, classes: Iterable[str]
    ) -> tuple[SchemaComponent, ...]:
        """The distinct components owning ``classes``, in index order."""
        indices = sorted({self.component_of(cls).index for cls in classes})
        return tuple(self.components[index] for index in indices)

    def merged_schema(self, indices: frozenset[int]) -> CRSchema:
        """The sub-schema induced by a union of components.

        A single index returns that component's schema; the full index
        set returns the original schema object — both without building
        anything.
        """
        if len(indices) == 1:
            (index,) = indices
            return self.components[index].schema
        if indices == self._all_indices:
            return self.schema
        merged = self._merged.get(indices)
        if merged is None:
            members = frozenset().union(
                *(self.components[index].classes for index in indices)
            )
            name = f"{self.schema.name}.m" + "-".join(
                str(index) for index in sorted(indices)
            )
            merged = self._merged[indices] = sub_schema(
                self.schema, members, name
            )
        return merged

    def merged_fingerprint(self, indices: frozenset[int]) -> str:
        if len(indices) == 1:
            (index,) = indices
            return self.components[index].fingerprint
        if indices == self._all_indices:
            return self.whole_fingerprint
        fingerprint = self._merged_fingerprints.get(indices)
        if fingerprint is None:
            fingerprint = self._merged_fingerprints[indices] = (
                schema_fingerprint(self.merged_schema(indices))
            )
        return fingerprint

    def __repr__(self) -> str:
        return (
            f"ComponentDecomposition({self.schema.name!r}, "
            f"{len(self.components)} component(s))"
        )


def decompose_schema(schema: CRSchema) -> ComponentDecomposition:
    """Split ``schema`` into its constraint-graph components.

    The single-island case (including the empty schema) keeps the
    original schema object, so downstream fingerprints and cache keys
    match the monolithic path exactly.
    """
    groups = connected_class_sets(schema)
    if len(groups) <= 1:
        component = SchemaComponent(
            0, frozenset(schema.classes), schema, schema_fingerprint(schema)
        )
        return ComponentDecomposition(schema, (component,))
    components = []
    for index, members in enumerate(groups):
        island = frozenset(members)
        sub = sub_schema(schema, island, f"{schema.name}.c{index}")
        components.append(
            SchemaComponent(index, island, sub, schema_fingerprint(sub))
        )
    return ComponentDecomposition(schema, tuple(components))


def query_partition_key(
    decomposition: ComponentDecomposition,
    kind: str,
    query: str | ImplicationQuery,
) -> str:
    """The fingerprint a batch query's answer is keyed by.

    Queries sharing a key share the cache entries they touch, so the
    parallel fan-out groups by this key: satisfiability and same-island
    implication route to the owning component, cross-island ISA and
    disjointness to the merged sub-schema, and cardinality queries to
    the Section-4 extended schema of the owning component.  Ill-formed
    queries fall back to the whole-schema key — they fail identically
    on whichever worker answers them.
    """
    try:
        if kind == "sat":
            return decomposition.component_of(query).fingerprint
        if isinstance(query, IsaStatement):
            components = decomposition.components_of((query.sub, query.sup))
            return decomposition.merged_fingerprint(
                frozenset(component.index for component in components)
            )
        if isinstance(query, DisjointnessStatement):
            class_list = sorted(query.classes)
            if len(class_list) < 2:
                return decomposition.whole_fingerprint
            components = decomposition.components_of(class_list)
            return decomposition.merged_fingerprint(
                frozenset(component.index for component in components)
            )
        if isinstance(query, MinCardinalityStatement) and query.value == 0:
            return decomposition.whole_fingerprint
        if isinstance(
            query, (MinCardinalityStatement, MaxCardinalityStatement)
        ):
            if isinstance(query, MinCardinalityStatement):
                card = Card(0, query.value - 1)
            else:
                card = Card(query.value + 1, UNBOUNDED)
            if len(decomposition.components) > 1:
                # Validate against the whole schema first so an illegal
                # triple keys (and fails) the same way it would have
                # monolithically.
                exceptional_schema(
                    decomposition.schema, query.cls, query.rel, query.role, card
                )
            component = decomposition.component_of(query.cls)
            extended, _exc = exceptional_schema(
                component.schema, query.cls, query.rel, query.role, card
            )
            return schema_fingerprint(extended)
        return decomposition.whole_fingerprint
    except ReproError:
        return decomposition.whole_fingerprint


__all__ = [
    "ComponentDecomposition",
    "SchemaComponent",
    "decompose_schema",
    "query_partition_key",
    "sub_schema",
]
