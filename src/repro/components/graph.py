"""The constraint graph over classes and its connected components.

Two classes are *constraint-connected* when some declared statement ties
them together: an ISA edge, co-occurrence in a relationship signature, a
declared cardinality on a relationship role, membership in the same
disjointness group, or a covering.  The reflexive-transitive closure of
that relation partitions the class set into islands; every declared
constraint lives wholly inside one island by construction, which is what
makes per-island reasoning sound (models of disjoint islands compose —
see DESIGN §13).

:func:`connected_class_sets` computes the partition with a union-find
(path compression + union by size).  Component order is the first-seen
root order over ``schema.classes``; member order within a component is
declaration order — both deterministic, so the decomposition (and the
per-component fingerprints derived from it) is reproducible.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cr.schema import CRSchema


def constraint_edges(schema: CRSchema) -> Iterator[tuple[str, str]]:
    """Yield the undirected edges of the constraint graph.

    Every edge endpoint is a declared class of ``schema``.  Edge
    multiplicity and orientation are irrelevant — the consumer is a
    union-find.
    """
    for sub, sup in schema.isa_statements:
        yield sub, sup
    for rel in schema.relationships:
        first = rel.signature[0][1]
        for _role, cls in rel.signature[1:]:
            yield first, cls
    for (cls, rel_name, _role) in schema.declared_cards:
        # The constrained class is already tied to the relationship's
        # signature classes; this edge is defensive — it keeps the
        # invariant "a declared card never crosses islands" local to
        # this module instead of depending on schema validation.
        relationship = schema.relationship(rel_name)
        yield cls, relationship.signature[0][1]
    for group in schema.disjointness_groups:
        members = sorted(group)
        for other in members[1:]:
            yield members[0], other
    for covered, coverers in schema.coverings:
        for coverer in sorted(coverers):
            yield covered, coverer


class _UnionFind:
    """Classic disjoint-set forest over class names."""

    def __init__(self, items: tuple[str, ...]) -> None:
        self._parent = {item: item for item in items}
        self._size = {item: 1 for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: str, second: str) -> None:
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]


def connected_class_sets(schema: CRSchema) -> tuple[tuple[str, ...], ...]:
    """The constraint-graph components, as tuples of class names.

    Components appear in first-seen order over ``schema.classes`` and
    each component lists its members in declaration order.
    """
    finder = _UnionFind(schema.classes)
    for first, second in constraint_edges(schema):
        finder.union(first, second)
    groups: dict[str, list[str]] = {}
    for cls in schema.classes:
        groups.setdefault(finder.find(cls), []).append(cls)
    return tuple(tuple(members) for members in groups.values())


__all__ = ["connected_class_sets", "constraint_edges"]
