"""The paper's running examples, as ready-made objects.

Used throughout the tests, benchmarks and examples:

* :func:`figure1_er` / :func:`figure1_schema` — the finitely
  unsatisfiable diagram of Figure 1 (class ``D`` ISA ``C`` while the
  cardinalities force ``|R| >= 2·|C|`` and ``|R| <= |D|``);
* :func:`meeting_er` / :func:`meeting_schema` — the meeting example of
  Figures 2 and 3 (speakers, discussants, talks);
* :func:`refined_meeting_schema` — the Section-3.3 variant with the
  additional refinement ``minc(Discussant, Holds, U1) = 2`` that makes
  every class unsatisfiable;
* :func:`figure7_queries` — the three implied statements of Figure 7.
"""

from __future__ import annotations

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    IsaStatement,
    MaxCardinalityStatement,
)
from repro.cr.schema import CRSchema, UNBOUNDED
from repro.er.model import ERSchema
from repro.er.to_cr import er_to_cr


def figure1_er(ratio: int = 2) -> ERSchema:
    """The ER diagram of Figure 1, generalised to an arbitrary ratio.

    ``C`` participates at least ``ratio`` times in ``R`` while ``D``
    participates at most once, and ``D ≼ C``; any finite model then
    needs ``ratio·|C| ≤ |R| ≤ |D| ≤ |C|``, so all classes are empty.
    The paper's figure is ``ratio = 2``; ``ratio = 1`` is the edge case
    where the schema becomes satisfiable.
    """
    er = ERSchema("Figure1")
    er.entity("C")
    er.entity("D", isa=["C"])
    er.relationship(
        "R",
        ("V1", "C", ratio, UNBOUNDED),
        ("V2", "D", 0, 1),
    )
    return er


def figure1_schema(ratio: int = 2) -> CRSchema:
    """The CR translation of Figure 1 (see :func:`figure1_er`)."""
    return er_to_cr(figure1_er(ratio))


def meeting_er() -> ERSchema:
    """The CR-diagram of Figure 2 in ER form, refinement included."""
    er = ERSchema("Meeting")
    er.entity("Speaker")
    er.entity("Discussant", isa=["Speaker"])
    er.entity("Talk")
    er.relationship(
        "Holds",
        ("U1", "Speaker", 1, UNBOUNDED),
        ("U2", "Talk", 1, 1),
    )
    er.relationship(
        "Participates",
        ("U3", "Discussant", 1, 1),
        ("U4", "Talk", 1, UNBOUNDED),
    )
    er.refine("Discussant", "Holds", "U1", 0, 2)
    return er


def meeting_schema() -> CRSchema:
    """The CR-schema of Figure 3 (built directly, not via ER)."""
    return (
        SchemaBuilder("Meeting")
        .classes("Speaker", "Discussant", "Talk")
        .isa("Discussant", "Speaker")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .relationship("Participates", U3="Discussant", U4="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Discussant", "Holds", "U1", maxc=2)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .card("Discussant", "Participates", "U3", minc=1, maxc=1)
        .card("Talk", "Participates", "U4", minc=1)
        .build()
    )


def refined_meeting_schema() -> CRSchema:
    """Section 3.3's unsatisfiable variant.

    Adds ``minc(Discussant, Holds, U1) = 2`` ("each speaker that is
    allowed to participate in a discussion must hold at least two
    talks").  The paper shows the resulting system is unsolvable: the
    original constraints force ``|Talk| = |Speaker| = |Discussant|``
    with every speaker holding exactly one talk, contradicting the new
    minimum of two.
    """
    return (
        SchemaBuilder("MeetingRefined")
        .classes("Speaker", "Discussant", "Talk")
        .isa("Discussant", "Speaker")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .relationship("Participates", U3="Discussant", U4="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Discussant", "Holds", "U1", minc=2, maxc=2)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .card("Discussant", "Participates", "U3", minc=1, maxc=1)
        .card("Talk", "Participates", "U4", minc=1)
        .build()
    )


def figure7_queries() -> list:
    """The three statements Figure 7 reports as implied by the schema."""
    return [
        IsaStatement("Speaker", "Discussant"),
        MaxCardinalityStatement("Talk", "Participates", "U4", 1),
        MaxCardinalityStatement("Speaker", "Holds", "U1", 1),
    ]
