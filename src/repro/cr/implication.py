"""Implication of ISA and cardinality constraints (Section 4 of the paper).

``S ⊨ K`` — every finite model of schema ``S`` satisfies statement
``K`` — is decided by reduction to (un)satisfiability:

* **ISA** ``C ≼ D``: not implied iff ``Ψ_S`` admits an acceptable
  solution making positive some consistent compound class containing
  ``C`` but not ``D`` — from such a solution a model with a ``C``
  instance outside ``D`` is constructed.
* **minc** ``minc(C, R, U) = m`` (``m > 0``): the paper's auxiliary
  class ``C_exc`` is added with ``C_exc ≼ C`` and
  ``maxc(C_exc, R, U) = m − 1``; the statement is implied iff ``C_exc``
  is unsatisfiable in the extended schema.
* **maxc** ``maxc(C, R, U) = n``: dually, ``C_exc ≼ C`` with
  ``minc(C_exc, R, U) = n + 1``.
* **disjointness** (Section-5 extension): ``C`` and ``D`` disjoint is
  implied iff no consistent compound class containing both can be
  populated.

Whenever a statement is *not* implied, the engine returns an explicit
finite counter-model (a model of ``S`` violating ``K``), which the
test-suite re-validates with the Definition-2.2 checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.constraints import (
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.construction import construct_model
from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.interpretation import Interpretation
from repro.cr.satisfiability import DEFAULT_NAIVE_LIMIT, acceptable_with_positive
from repro.cr.schema import Card, CRSchema, Relationship, UNBOUNDED
from repro.cr.system import build_system
from repro.errors import BudgetExceededError, ReproError, SchemaError
from repro.pipeline import (
    STAGE_BUILD_SYSTEM,
    STAGE_EXPAND,
    STAGE_SOLVE,
    STAGE_VERDICT,
    stage,
)
from repro.runtime.budget import Budget, ProgressSnapshot, run_governed
from repro.runtime.fallback import DEFAULT_FALLBACK, FallbackPolicy
from repro.runtime.outcome import ImplicationVerdict
from repro.utils.naming import FreshNames

ImplicationQuery = (
    IsaStatement
    | MinCardinalityStatement
    | MaxCardinalityStatement
    | DisjointnessStatement
)


@dataclass(frozen=True)
class ImplicationResult:
    """Outcome of an implication check ``S ⊨ K``.

    When not implied, ``countermodel`` is a finite model of ``S`` in
    which ``K`` fails.  ``verdict`` is the three-valued answer:
    ``IMPLIED``, ``NOT_IMPLIED``, or — only when a caller-supplied
    budget ran out — ``UNKNOWN``, in which case ``unknown_reason``
    explains why and ``implied`` conservatively reads ``False``.
    """

    query: ImplicationQuery
    implied: bool
    engine: str
    countermodel: Interpretation | None
    verdict: ImplicationVerdict | None = None
    unknown_reason: str | None = None
    snapshot: ProgressSnapshot | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            object.__setattr__(
                self, "verdict", ImplicationVerdict.from_bool(self.implied)
            )

    def pretty(self) -> str:
        if self.verdict is ImplicationVerdict.UNKNOWN:
            return f"S |? {self.query.pretty()}  (unknown: {self.unknown_reason})"
        verdict = "S |= " if self.implied else "S |/= "
        return verdict + self.query.pretty()


def _unknown_implication(
    query: ImplicationQuery, engine: str, error: BudgetExceededError
) -> ImplicationResult:
    snapshot = error.snapshot
    return ImplicationResult(
        query=query,
        implied=False,
        engine=engine,
        countermodel=None,
        verdict=ImplicationVerdict.UNKNOWN,
        unknown_reason=str(error),
        snapshot=snapshot if isinstance(snapshot, ProgressSnapshot) else None,
    )


def implies(
    schema: CRSchema,
    query: ImplicationQuery,
    engine: str = "fixpoint",
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    """Dispatch an implication query to the matching decision routine.

    ``budget`` governs the whole check and degrades it to an UNKNOWN
    verdict on exhaustion; ``naive_limit`` and ``fallback`` configure
    the solver degradation chain (see
    :func:`repro.cr.satisfiability.acceptable_with_positive`), and
    ``jobs`` its parallelism (only the naive engine fans out — the
    fixpoint path stays serial so countermodels remain bit-identical).
    """
    if isinstance(query, IsaStatement):
        return implies_isa(
            schema, query.sub, query.sup, engine, limits, budget,
            naive_limit, fallback, jobs,
        )
    if isinstance(query, MinCardinalityStatement):
        return implies_min_cardinality(
            schema, query.cls, query.rel, query.role, query.value, engine,
            limits, budget, naive_limit, fallback, jobs,
        )
    if isinstance(query, MaxCardinalityStatement):
        return implies_max_cardinality(
            schema, query.cls, query.rel, query.role, query.value, engine,
            limits, budget, naive_limit, fallback, jobs,
        )
    if isinstance(query, DisjointnessStatement):
        classes = sorted(query.classes)
        return implies_disjointness(
            schema, classes, engine, limits, budget, naive_limit, fallback,
            jobs,
        )
    raise ReproError(f"unsupported implication query {query!r}")


def implies_isa(
    schema: CRSchema,
    sub: str,
    sup: str,
    engine: str = "fixpoint",
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    """Decide ``S ⊨ sub ≼ sup``."""
    schema.require_class(sub)
    schema.require_class(sup)
    query = IsaStatement(sub, sup)

    def compute() -> ImplicationResult:
        with stage(STAGE_EXPAND, phase="expansion"):
            expansion = Expansion(schema, limits)
        with stage(STAGE_BUILD_SYSTEM, phase="system"):
            cr_system = build_system(expansion, mode="pruned")
            targets = frozenset(
                cr_system.class_var[compound]
                for compound in expansion.consistent_classes_containing(sub)
                if sup not in compound.members
            )
        with stage(STAGE_SOLVE, phase=f"decide:{engine}"):
            found, solution, _support = acceptable_with_positive(
                cr_system, targets, engine, naive_limit, fallback, jobs
            )
        with stage(STAGE_VERDICT):
            if not found:
                return ImplicationResult(query, True, engine, None)
            assert solution is not None
            countermodel = construct_model(cr_system, solution)
            return ImplicationResult(query, False, engine, countermodel)

    return run_governed(
        budget, compute, lambda error: _unknown_implication(query, engine, error)
    )


def exceptional_schema(
    schema: CRSchema,
    cls: str,
    rel: str,
    role: str,
    exceptional_card: Card,
) -> tuple[CRSchema, str]:
    """The schema ``S'`` of Section 4: ``S`` plus ``C_exc ≼ cls`` with the
    given cardinality on ``(rel, role)``.  Returns ``(S', C_exc name)``.

    The fresh-name choice is deterministic, so the same query against
    the same schema always yields the same extended schema — which is
    what lets :class:`repro.session.ReasoningSession` cache cardinality
    implications content-addressed by the extended schema's
    fingerprint."""
    relationship: Relationship = schema.relationship(rel)
    primary = relationship.primary_class(role)
    if not schema.is_subclass(cls, primary):
        raise SchemaError(
            f"cardinality query on ({cls!r}, {rel!r}, {role!r}) is illegal: "
            f"{cls!r} is not a subclass of the primary class {primary!r}"
        )
    fresh = FreshNames(schema.classes)
    fresh.reserve(rel)
    exc = fresh.fresh("C_exc")
    cards = schema.declared_cards
    cards[(exc, rel, role)] = exceptional_card
    extended = CRSchema(
        classes=tuple(schema.classes) + (exc,),
        relationships=schema.relationships,
        isa=tuple(schema.isa_statements) + ((exc, cls),),
        cards=cards,
        disjointness=schema.disjointness_groups,
        coverings=schema.coverings,
        name=f"{schema.name}+{exc}",
    )
    return extended, exc


def strip_class(interpretation: Interpretation, cls: str) -> Interpretation:
    """Drop one class's extension (the reduct from ``S'`` back to ``S``)."""
    return Interpretation(
        domain=interpretation.domain,
        class_extensions={
            name: extension
            for name, extension in interpretation.class_extensions.items()
            if name != cls
        },
        relationship_extensions=interpretation.relationship_extensions,
    )


def _cardinality_implication(
    schema: CRSchema,
    query: MinCardinalityStatement | MaxCardinalityStatement,
    exceptional_card: Card,
    engine: str,
    limits: ExpansionLimits | None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    extended, exc = exceptional_schema(
        schema, query.cls, query.rel, query.role, exceptional_card
    )

    def compute() -> ImplicationResult:
        with stage(STAGE_EXPAND, phase="expansion"):
            expansion = Expansion(extended, limits)
        with stage(STAGE_BUILD_SYSTEM, phase="system"):
            cr_system = build_system(expansion, mode="pruned")
            targets = frozenset(
                cr_system.class_var[compound]
                for compound in expansion.consistent_classes_containing(exc)
            )
        with stage(STAGE_SOLVE, phase=f"decide:{engine}"):
            found, solution, _support = acceptable_with_positive(
                cr_system, targets, engine, naive_limit, fallback, jobs
            )
        with stage(STAGE_VERDICT):
            if not found:
                return ImplicationResult(query, True, engine, None)
            assert solution is not None
            countermodel = strip_class(
                construct_model(cr_system, solution), exc
            )
            return ImplicationResult(query, False, engine, countermodel)

    return run_governed(
        budget, compute, lambda error: _unknown_implication(query, engine, error)
    )


def implies_min_cardinality(
    schema: CRSchema,
    cls: str,
    rel: str,
    role: str,
    value: int,
    engine: str = "fixpoint",
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    """Decide ``S ⊨ minc(cls, rel, role) = value``.

    ``value = 0`` is vacuously implied.  Otherwise ``C_exc`` with
    ``maxc = value − 1`` is satisfiable exactly when some model has a
    ``cls`` instance participating fewer than ``value`` times.
    """
    query = MinCardinalityStatement(cls, rel, role, value)
    if value == 0:
        return ImplicationResult(query, True, engine, None)
    return _cardinality_implication(
        schema, query, Card(0, value - 1), engine, limits, budget,
        naive_limit, fallback, jobs,
    )


def implies_max_cardinality(
    schema: CRSchema,
    cls: str,
    rel: str,
    role: str,
    value: int,
    engine: str = "fixpoint",
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    """Decide ``S ⊨ maxc(cls, rel, role) = value``.

    ``C_exc`` is required to participate at least ``value + 1`` times;
    it is satisfiable exactly when some model breaks the bound.
    """
    query = MaxCardinalityStatement(cls, rel, role, value)
    return _cardinality_implication(
        schema, query, Card(value + 1, UNBOUNDED), engine, limits, budget,
        naive_limit, fallback, jobs,
    )


def implies_disjointness(
    schema: CRSchema,
    classes,
    engine: str = "fixpoint",
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> ImplicationResult:
    """Decide whether the given classes are pairwise disjoint in all models.

    Not implied iff some *pair* can share an instance, i.e. some
    consistent compound class containing both can be populated.
    """
    class_list = sorted(set(classes))
    if len(class_list) < 2:
        raise SchemaError("disjointness query needs at least two classes")
    for cls in class_list:
        schema.require_class(cls)
    query = DisjointnessStatement(frozenset(class_list))

    def compute() -> ImplicationResult:
        with stage(STAGE_EXPAND, phase="expansion"):
            expansion = Expansion(schema, limits)
        with stage(STAGE_BUILD_SYSTEM, phase="system"):
            cr_system = build_system(expansion, mode="pruned")
            targets = set()
            for i, first in enumerate(class_list):
                for second in class_list[i + 1 :]:
                    for compound in expansion.consistent_compound_classes():
                        if (
                            first in compound.members
                            and second in compound.members
                        ):
                            targets.add(cr_system.class_var[compound])
        with stage(STAGE_SOLVE, phase=f"decide:{engine}"):
            found, solution, _support = acceptable_with_positive(
                cr_system, frozenset(targets), engine, naive_limit, fallback,
                jobs,
            )
        with stage(STAGE_VERDICT):
            if not found:
                return ImplicationResult(query, True, engine, None)
            assert solution is not None
            countermodel = construct_model(cr_system, solution)
            return ImplicationResult(query, False, engine, countermodel)

    return run_governed(
        budget, compute, lambda error: _unknown_implication(query, engine, error)
    )


# ---------------------------------------------------------------------------
# statement evaluation over a concrete interpretation (used by tests
# and by callers that want to inspect counter-models)
# ---------------------------------------------------------------------------


def statement_holds(
    interpretation: Interpretation, statement: ImplicationQuery
) -> bool:
    """Whether an interpretation satisfies a constraint statement."""
    if isinstance(statement, IsaStatement):
        return interpretation.instances_of(
            statement.sub
        ) <= interpretation.instances_of(statement.sup)
    if isinstance(statement, MinCardinalityStatement):
        return all(
            interpretation.participation_count(
                statement.rel, statement.role, individual
            )
            >= statement.value
            for individual in interpretation.instances_of(statement.cls)
        )
    if isinstance(statement, MaxCardinalityStatement):
        return all(
            interpretation.participation_count(
                statement.rel, statement.role, individual
            )
            <= statement.value
            for individual in interpretation.instances_of(statement.cls)
        )
    if isinstance(statement, DisjointnessStatement):
        members = sorted(statement.classes)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                if interpretation.instances_of(
                    first
                ) & interpretation.instances_of(second):
                    return False
        return True
    raise ReproError(f"unsupported statement {statement!r}")
