"""Machine-checkable explanations of class unsatisfiability.

The paper's conclusion asks for tooling that "assists the designer when
a schema is found unsatisfiable".  :mod:`repro.ext.debugging` answers
*which constraints* conflict; this module answers *why*, with proofs:

* **direct** — when already the linear relaxation
  ``Ψ_S ∪ {Σ_{C̄ ∋ C} Var(C̄) ≥ 1}`` is infeasible, a single Farkas
  certificate over the labelled disequations is the whole story (the
  paper's Figure 1 and Section-3.3 examples are of this kind: the
  counting argument *is* the certificate);
* **layered** — when the relaxation is feasible but no *acceptable*
  solution exists, the explanation mirrors the fixpoint: layer by
  layer, class unknowns are proved zero by Farkas certificates, the
  relationship unknowns depending on them are forced to zero by the
  acceptability rule, and the strengthened system propagates further —
  until every compound class containing the queried class is dead.

Every certificate in an explanation re-verifies independently
(:meth:`UnsatisfiabilityExplanation.verify`), so the reasoner's verdict
can be audited without trusting the simplex.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.schema import CRSchema
from repro.cr.system import CRSystem, build_system
from repro.errors import ReproError
from repro.solver.certificates import FarkasCertificate, farkas_certificate
from repro.solver.homogeneous import maximal_support
from repro.solver.linear import Constraint, LinearSystem, Relation, term


@dataclass(frozen=True)
class ZeroUnknownProof:
    """A Farkas proof that one class unknown is zero in every solution.

    ``system`` is the probed system (current stage plus ``unknown >= 1``)
    the certificate refutes.
    """

    unknown: str
    certificate: FarkasCertificate
    system: LinearSystem

    def verify(self) -> bool:
        return self.certificate.verify(self.system)


@dataclass(frozen=True)
class ForcedRelationship:
    """A relationship unknown zeroed by the acceptability rule."""

    unknown: str
    zero_dependency: str


@dataclass(frozen=True)
class ExplanationLayer:
    """One round of the fixpoint: proofs, then acceptability forcing."""

    zero_proofs: tuple[ZeroUnknownProof, ...]
    forced_relationships: tuple[ForcedRelationship, ...]


@dataclass(frozen=True)
class UnsatisfiabilityExplanation:
    """Why a class admits no finite population.

    Exactly one of ``direct_certificate`` (with ``direct_system``) or
    ``layers`` is populated, per the module docstring.
    """

    cls: str
    kind: str  # "direct" | "layered"
    direct_certificate: FarkasCertificate | None = None
    direct_system: LinearSystem | None = None
    layers: tuple[ExplanationLayer, ...] = ()
    target_unknowns: tuple[str, ...] = ()

    def verify(self) -> bool:
        """Re-check every certificate in the explanation."""
        if self.kind == "direct":
            assert self.direct_certificate and self.direct_system
            return self.direct_certificate.verify(self.direct_system)
        proven_zero = set()
        for layer in self.layers:
            if not all(proof.verify() for proof in layer.zero_proofs):
                return False
            proven_zero.update(proof.unknown for proof in layer.zero_proofs)
            proven_zero.update(
                forced.unknown for forced in layer.forced_relationships
            )
        return set(self.target_unknowns) <= proven_zero

    def pretty(self) -> str:
        lines = [f"class {self.cls!r} admits no finite population."]
        if self.kind == "direct":
            assert self.direct_certificate and self.direct_system
            lines.append(
                "Already the linear relaxation of Psi_S plus the "
                "positivity of the class is infeasible:"
            )
            lines.append(self.direct_certificate.pretty(self.direct_system))
            return "\n".join(lines)
        lines.append(
            "The relaxation is feasible, but no acceptable solution exists:"
        )
        for depth, layer in enumerate(self.layers, start=1):
            lines.append(f"-- layer {depth}")
            for proof in layer.zero_proofs:
                lines.append(
                    f"  {proof.unknown} = 0 in every solution "
                    f"(Farkas proof over {len(proof.certificate.weights)} "
                    "disequations)"
                )
            for forced in layer.forced_relationships:
                lines.append(
                    f"  {forced.unknown} = 0 by acceptability: it depends "
                    f"on {forced.zero_dependency} = 0"
                )
        lines.append(
            "hence every compound class containing the queried class is "
            f"empty: {', '.join(self.target_unknowns)} = 0"
        )
        return "\n".join(lines)


def _sharpened_positivity(cr_system: CRSystem, cls: str) -> Constraint:
    """``Σ Var(C̄) ≥ 1`` — the cone-scaled Theorem-3.3 side condition."""
    return Constraint(
        cr_system.class_population_expr(cls) - 1,
        Relation.GE,
        label=f"positivity:{cls}",
    )


def explain_unsatisfiability(
    schema: CRSchema,
    cls: str,
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
) -> UnsatisfiabilityExplanation:
    """Build a verified explanation for an unsatisfiable class.

    Raises :class:`ReproError` if the class is in fact satisfiable.
    """
    schema.require_class(cls)
    if expansion is None:
        expansion = Expansion(schema, limits)
    cr_system = build_system(expansion, mode="pruned")
    targets = tuple(
        cr_system.class_var[compound]
        for compound in expansion.consistent_classes_containing(cls)
    )

    # Direct case: the relaxation itself is infeasible.
    relaxation = cr_system.system.with_constraints(
        [_sharpened_positivity(cr_system, cls)]
    )
    certificate = farkas_certificate(relaxation)
    if certificate is not None:
        return UnsatisfiabilityExplanation(
            cls=cls,
            kind="direct",
            direct_certificate=certificate,
            direct_system=relaxation,
            target_unknowns=targets,
        )

    # Layered case: replay the acceptability fixpoint, proving each
    # newly-dead class unknown with its own certificate.
    layers: list[ExplanationLayer] = []
    forced_zero: set[str] = set()
    proven_zero: set[str] = set()
    class_unknowns = list(cr_system.class_var.values())
    while True:
        constrained = cr_system.system.with_constraints(
            Constraint(term(name), Relation.EQ, label=f"forced-zero:{name}")
            for name in sorted(forced_zero)
        )
        support, _solution = maximal_support(
            constrained, candidates=class_unknowns
        )
        zero_proofs = []
        for name in class_unknowns:
            if name in support or name in proven_zero:
                continue
            probe = constrained.with_constraints(
                [Constraint(term(name) - 1, Relation.GE, label=f"probe:{name}")]
            )
            proof_certificate = farkas_certificate(probe)
            assert proof_certificate is not None, (
                f"{name} is outside the maximal support, so the probe "
                "must be infeasible"
            )
            zero_proofs.append(
                ZeroUnknownProof(name, proof_certificate, probe)
            )
            proven_zero.add(name)
        newly_forced = []
        for rel_unknown, deps in cr_system.dependencies.items():
            if rel_unknown in forced_zero:
                continue
            dead = next((c for c in deps if c not in support), None)
            if dead is not None:
                newly_forced.append(ForcedRelationship(rel_unknown, dead))
        if zero_proofs or newly_forced:
            layers.append(
                ExplanationLayer(tuple(zero_proofs), tuple(newly_forced))
            )
        if set(targets) <= proven_zero:
            return UnsatisfiabilityExplanation(
                cls=cls,
                kind="layered",
                layers=tuple(layers),
                target_unknowns=targets,
            )
        if not newly_forced:
            raise ReproError(
                f"class {cls!r} is satisfiable; there is nothing to explain"
            )
        forced_zero.update(forced.unknown for forced in newly_forced)


__all__ = [
    "ZeroUnknownProof",
    "ForcedRelationship",
    "ExplanationLayer",
    "UnsatisfiabilityExplanation",
    "explain_unsatisfiability",
]
