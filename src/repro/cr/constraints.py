"""Constraint statements of the CR model (and its extensions).

These are the *sentences* one states about a schema: the ISA and
cardinality constraints of the paper's Section 2, the disjointness and
covering constraints its Section 5 proposes as extensions, and the
min/max statements used as implication queries in Section 4.

Statement objects serve three roles in the library:

1. as input — :class:`repro.cr.builder.SchemaBuilder` records them;
2. as implication queries — :mod:`repro.cr.implication` decides
   ``S ⊨ K`` for every statement kind defined here;
3. as the unit of blame — the schema debugger
   (:mod:`repro.ext.debugging`) reports minimal unsatisfiable sets of
   these statements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.schema import Card


@dataclass(frozen=True)
class IsaStatement:
    """``sub ≼ sup``: every instance of ``sub`` is an instance of ``sup``."""

    sub: str
    sup: str

    def pretty(self) -> str:
        return f"{self.sub} isa {self.sup}"


@dataclass(frozen=True)
class CardinalityDeclaration:
    """A ``(minc, maxc)`` pair declared for a class on a relationship role.

    This is the *schema-side* artifact (one dashed or solid cardinality
    edge of a CR-diagram); the query-side statements are
    :class:`MinCardinalityStatement` and :class:`MaxCardinalityStatement`.
    """

    cls: str
    rel: str
    role: str
    card: Card

    def pretty(self) -> str:
        return f"card({self.cls}, {self.rel}, {self.role}) = {self.card.pretty()}"


@dataclass(frozen=True)
class MinCardinalityStatement:
    """``minc(cls, rel, role) = value`` as an implication query.

    Satisfied by an interpretation when every instance of ``cls`` is the
    ``role``-component of at least ``value`` tuples of ``rel``.
    """

    cls: str
    rel: str
    role: str
    value: int

    def pretty(self) -> str:
        return f"minc({self.cls}, {self.rel}, {self.role}) = {self.value}"


@dataclass(frozen=True)
class MaxCardinalityStatement:
    """``maxc(cls, rel, role) = value`` as an implication query.

    Satisfied by an interpretation when every instance of ``cls`` is the
    ``role``-component of at most ``value`` tuples of ``rel``.
    """

    cls: str
    rel: str
    role: str
    value: int

    def pretty(self) -> str:
        return f"maxc({self.cls}, {self.rel}, {self.role}) = {self.value}"


@dataclass(frozen=True)
class DisjointnessStatement:
    """The classes in ``classes`` are pairwise disjoint (Section 5 extension)."""

    classes: frozenset[str]

    def __init__(self, classes) -> None:  # accept any iterable
        object.__setattr__(self, "classes", frozenset(classes))
        if len(self.classes) < 2:
            raise ValueError("a disjointness statement needs at least two classes")

    def pretty(self) -> str:
        return f"disjoint({', '.join(sorted(self.classes))})"


@dataclass(frozen=True)
class CoveringStatement:
    """``covered`` is covered by ``coverers`` (Section 5 extension).

    Every instance of ``covered`` must be an instance of at least one of
    the ``coverers``.  Together with the implicit ISA statements from
    each coverer to ``covered`` this is the classical *generalization
    hierarchy with covering* of [Lenzerini 1987]; here only the covering
    condition itself is expressed — ISA edges are stated separately.
    """

    covered: str
    coverers: frozenset[str]

    def __init__(self, covered: str, coverers) -> None:
        object.__setattr__(self, "covered", covered)
        object.__setattr__(self, "coverers", frozenset(coverers))
        if not self.coverers:
            raise ValueError("a covering statement needs at least one coverer")

    def pretty(self) -> str:
        return f"cover({self.covered} by {', '.join(sorted(self.coverers))})"


SchemaConstraint = (
    IsaStatement
    | CardinalityDeclaration
    | DisjointnessStatement
    | CoveringStatement
)
"""Union of the statement kinds a schema is assembled from (and the
granularity at which the debugger assigns blame)."""

ImplicationQuery = (
    IsaStatement
    | MinCardinalityStatement
    | MaxCardinalityStatement
    | DisjointnessStatement
)
"""Union of the statement kinds :func:`repro.cr.implication.implies` decides."""
