"""From an acceptable solution to an explicit finite model (Theorem 3.3).

The paper proves that an acceptable solution of ``Ψ'_S`` can be turned
into a model whose compound-class and compound-relationship cardinalities
are exactly the solution values (its Figure 6 shows one such model).
This module makes that step executable.  Two obstacles have to be
handled concretely:

**Per-instance balance.**  A solution only fixes *totals*; condition (C')
bounds the participation of every single instance.  For each
relationship role and compound class we deal tuple slots to instances
round-robin through a cursor shared by all compound relationships of
the same relationship, so each instance ends up with ``⌊T/c⌋`` or
``⌈T/c⌉`` tuples — inside ``[minc, maxc]`` because the disequations
guarantee ``minc·c ≤ T ≤ maxc·c``.

**Tuple distinctness.**  Relationship extensions are *sets* of labelled
tuples: the same component combination cannot be used twice.  Plain
round-robin repeats after ``lcm`` of the role counts, so the solution
is first scaled uniformly (homogeneity keeps it a solution and scaling
preserves acceptability) until every compound relationship count fits
``lcm(counts of the non-pivot roles) · count(pivot role)`` for its best
pivot role, and then a **block-shift** is applied: tuples are generated
in blocks of ``Λ = lcm(all role counts)``; within a block every
coordinate advances round-robin; between blocks the pivot coordinate is
shifted by one.  Shifts live below ``g = gcd(Λ/·, pivot count)``, which
makes blocks pairwise disjoint, while shifting permutes the pivot
coordinate's slot multiset without changing it — so balance is
untouched.  The partial final block keeps shift 0, which makes the
pivot multiset exactly the contiguous-window multiset the balance
argument needs.

Every model produced here is re-validated by the Definition-2.2 checker
in the test-suite (and can be re-validated by callers via
``repro.cr.checker.check_model``).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.cr.expansion import CompoundRelationship
from repro.cr.interpretation import Interpretation, LabeledTuple
from repro.cr.satisfiability import SatisfiabilityResult, is_acceptable
from repro.cr.system import CRSystem
from repro.errors import ReproError


def construct_model(
    cr_system: CRSystem, solution: Mapping[str, int]
) -> Interpretation:
    """Build a finite model realising an acceptable integer solution.

    The model's compound-class sizes equal the (possibly uniformly
    scaled) solution values.  Raises :class:`ReproError` if the solution
    does not satisfy ``Ψ_S`` or is not acceptable.
    """
    _validate_solution(cr_system, solution)
    counts = _scaled_counts(cr_system, solution)

    # Individuals: one disjoint pool per consistent compound class.
    individuals: dict[str, list[str]] = {}
    for compound in cr_system.expansion.consistent_compound_classes():
        name = cr_system.class_var[compound]
        individuals[name] = [
            f"{name}_{index}" for index in range(counts.get(name, 0))
        ]

    class_extensions: dict[str, set[str]] = {
        cls: set() for cls in cr_system.expansion.schema.classes
    }
    for compound in cr_system.expansion.consistent_compound_classes():
        pool = individuals[cr_system.class_var[compound]]
        for cls in compound.members:
            class_extensions[cls].update(pool)

    # Shared cursors: one per (relationship, role, compound class).
    cursors: dict[tuple[str, str, str], int] = {}
    relationship_extensions: dict[str, set[LabeledTuple]] = {
        rel.name: set() for rel in cr_system.expansion.schema.relationships
    }

    for compound_rel in cr_system.expansion.consistent_compound_relationships():
        unknown = cr_system.rel_var[compound_rel]
        tuple_count = counts.get(unknown, 0)
        role_names = [role for role, _ in compound_rel.signature]
        class_names = [
            cr_system.class_var[component]
            for _, component in compound_rel.signature
        ]
        offsets = []
        for role, class_name in zip(role_names, class_names):
            key = (compound_rel.rel, role, class_name)
            offsets.append(cursors.get(key, 0))
            cursors[key] = cursors.get(key, 0) + tuple_count
        if tuple_count == 0:
            continue
        pools = [individuals[class_name] for class_name in class_names]
        tuples = _distinct_balanced_tuples(
            compound_rel, tuple_count, [len(pool) for pool in pools], offsets
        )
        extension = relationship_extensions[compound_rel.rel]
        for combination in tuples:
            extension.add(
                LabeledTuple(
                    {
                        role: pools[position][index]
                        for position, (role, index) in enumerate(
                            zip(role_names, combination)
                        )
                    }
                )
            )

    domain = {
        individual for pool in individuals.values() for individual in pool
    }
    return Interpretation(
        domain=frozenset(domain),
        class_extensions={
            cls: frozenset(members)
            for cls, members in class_extensions.items()
        },
        relationship_extensions={
            name: frozenset(tuples)
            for name, tuples in relationship_extensions.items()
        },
    )


def construct_model_for_result(result: SatisfiabilityResult) -> Interpretation:
    """Model witnessing a satisfiable :class:`SatisfiabilityResult`."""
    if not result.satisfiable or result.solution is None:
        raise ReproError(
            f"class {result.cls!r} is unsatisfiable; no model witnesses it"
        )
    return construct_model(result.cr_system, result.solution)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _validate_solution(
    cr_system: CRSystem, solution: Mapping[str, int]
) -> None:
    for name, value in solution.items():
        if value < 0:
            raise ReproError(f"solution assigns a negative count to {name!r}")
    violated = cr_system.system.violated_constraints(
        {name: solution.get(name, 0) for name in cr_system.system.variables}
    )
    blocking = [c for c in violated if not c.relation.is_strict]
    if blocking:
        raise ReproError(
            "the given assignment does not solve Psi_S; first violated "
            f"disequation: {blocking[0].pretty()}"
        )
    if not is_acceptable(solution, cr_system.dependencies):
        raise ReproError(
            "the given solution is not acceptable: some relationship "
            "unknown is positive while a class unknown it depends on is zero"
        )


def _capacity(role_counts: list[int]) -> int:
    """Max distinct-tuple capacity of the block-shift scheme (best pivot)."""
    best = 0
    for pivot in range(len(role_counts)):
        others = [
            count for index, count in enumerate(role_counts) if index != pivot
        ]
        best = max(best, math.lcm(*others) * role_counts[pivot])
    return best


def _scaled_counts(
    cr_system: CRSystem, solution: Mapping[str, int]
) -> dict[str, int]:
    """Scale the solution until every compound relationship fits its capacity.

    Scaling a homogeneous-system solution by a positive integer keeps it
    a solution and keeps it acceptable; capacity grows quadratically
    with the scale while the tuple count grows linearly, so the factor
    below always suffices (asserted after the fact).
    """
    scale = 1
    for compound_rel in cr_system.expansion.consistent_compound_relationships():
        tuple_count = solution.get(cr_system.rel_var[compound_rel], 0)
        if tuple_count == 0:
            continue
        role_counts = [
            solution.get(cr_system.class_var[component], 0)
            for _, component in compound_rel.signature
        ]
        capacity = _capacity(role_counts)
        assert capacity > 0  # acceptability guarantees positive role counts
        scale = max(scale, -(-tuple_count // capacity))
    counts = {name: value * scale for name, value in solution.items()}
    for compound_rel in cr_system.expansion.consistent_compound_relationships():
        tuple_count = counts.get(cr_system.rel_var[compound_rel], 0)
        if tuple_count == 0:
            continue
        role_counts = [
            counts.get(cr_system.class_var[component], 0)
            for _, component in compound_rel.signature
        ]
        if tuple_count > _capacity(role_counts):  # pragma: no cover
            raise ReproError(
                "internal error: scaling did not reach tuple capacity for "
                f"{compound_rel.pretty()}"
            )
    return counts


def _distinct_balanced_tuples(
    compound_rel: CompoundRelationship,
    tuple_count: int,
    role_counts: list[int],
    offsets: list[int],
) -> list[tuple[int, ...]]:
    """``tuple_count`` distinct index combinations with window-balanced slots.

    Coordinate ``k`` of tuple ``i`` is ``(offsets[k] + i) mod role_counts[k]``
    except on the chosen pivot coordinate, where blocks of
    ``Λ = lcm(role_counts)`` consecutive tuples are shifted: full blocks
    take shifts 1, 2, ... (or 0, 1, ... when there is no partial block)
    and the partial final block keeps shift 0, preserving the
    contiguous-window slot multiset on the pivot.  See the module
    docstring for the disjointness invariant.
    """
    arity = len(role_counts)
    pivot = max(
        range(arity),
        key=lambda p: math.lcm(
            *(count for index, count in enumerate(role_counts) if index != p)
        )
        * role_counts[p],
    )
    non_pivot_lcm = math.lcm(
        *(count for index, count in enumerate(role_counts) if index != pivot)
    )
    block_length = math.lcm(non_pivot_lcm, role_counts[pivot])
    shift_modulus = math.gcd(non_pivot_lcm, role_counts[pivot])

    full_blocks, remainder = divmod(tuple_count, block_length)
    has_partial = remainder > 0
    total_blocks = full_blocks + (1 if has_partial else 0)
    if total_blocks > shift_modulus:  # pragma: no cover - capacity guard
        raise ReproError(
            f"internal error: {total_blocks} blocks exceed the shift "
            f"modulus {shift_modulus} for {compound_rel.pretty()}"
        )

    def pivot_shift(block: int) -> int:
        if block == full_blocks:  # the partial block keeps the window shape
            return 0
        return block + 1 if has_partial else block

    tuples: list[tuple[int, ...]] = []
    for i in range(tuple_count):
        block = i // block_length
        combination = []
        for k in range(arity):
            value = offsets[k] + i
            if k == pivot:
                value += pivot_shift(block)
            combination.append(value % role_counts[k])
        tuples.append(tuple(combination))
    if len(set(tuples)) != tuple_count:  # pragma: no cover - invariant
        raise ReproError(
            f"internal error: duplicate tuples generated for "
            f"{compound_rel.pretty()}"
        )
    return tuples
