"""The Lenzerini–Nobili (1990) baseline: cardinality reasoning without ISA.

The paper positions itself against [15] (Lenzerini & Nobili,
*On the satisfiability of dependency constraints in entity-relationship
schemata*, Information Systems 15(4), 1990), which handles cardinality
constraints but **no inclusion dependencies**: with classes pairwise
non-overlapping there is no need for compound classes, and one unknown
per class and per relationship suffices.

This module implements that simpler procedure directly.  It doubles as

* the ablation baseline of experiment E11/E12 (how much does the
  expansion cost once ISA enters?), and
* a differential-testing oracle: on ISA-free schemas the full
  procedure and this baseline must agree (the expansion degenerates —
  every relevant compound class is a singleton-closure).

The baseline *rejects* schemas with ISA statements or refined
cardinalities: that is precisely the gap the paper closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.cr.schema import CRSchema
from repro.errors import SchemaError
from repro.solver.homogeneous import integerize, maximal_support
from repro.solver.linear import Constraint, LinearSystem, Relation, term


@dataclass(frozen=True)
class BaselineSystem:
    """One unknown per class / relationship, plus the dependency map."""

    schema: CRSchema
    system: LinearSystem
    class_var: dict[str, str]
    rel_var: dict[str, str]
    dependencies: dict[str, tuple[str, ...]]


def lenzerini_nobili_system(schema: CRSchema) -> BaselineSystem:
    """Build the [15]-style disequation system for an ISA-free schema.

    For each relationship ``R`` and role ``U`` with primary class ``C``:
    ``minc(C,R,U) · Var(C) ≤ Var(R)`` and, when bounded,
    ``maxc(C,R,U) · Var(C) ≥ Var(R)``.
    """
    if schema.isa_statements:
        raise SchemaError(
            "the Lenzerini-Nobili baseline handles no ISA constraints; "
            "use repro.cr.satisfiability for this schema"
        )
    if schema.disjointness_groups or schema.coverings:
        raise SchemaError(
            "the Lenzerini-Nobili baseline predates disjointness/covering "
            "constraints"
        )

    class_var = {cls: f"n_{cls}" for cls in schema.classes}
    rel_var = {rel.name: f"n_{rel.name}" for rel in schema.relationships}
    system = LinearSystem(
        variables=list(class_var.values()) + list(rel_var.values())
    )
    for name in class_var.values():
        system.add(Constraint(term(name), Relation.GE, label=f"nonneg:{name}"))
    for name in rel_var.values():
        system.add(Constraint(term(name), Relation.GE, label=f"nonneg:{name}"))

    for rel in schema.relationships:
        for role, primary in rel.signature:
            card = schema.card(primary, rel.name, role)
            class_term = term(class_var[primary])
            rel_term = term(rel_var[rel.name])
            if card.minc > 0:
                system.add(
                    Constraint(
                        card.minc * class_term - rel_term,
                        Relation.LE,
                        label=f"min:{rel.name}:{role}",
                    )
                )
            if card.maxc is not None:
                system.add(
                    Constraint(
                        card.maxc * class_term - rel_term,
                        Relation.GE,
                        label=f"max:{rel.name}:{role}",
                    )
                )

    dependencies = {
        rel_var[rel.name]: tuple(
            class_var[primary] for _, primary in rel.signature
        )
        for rel in schema.relationships
    }
    return BaselineSystem(schema, system, class_var, rel_var, dependencies)


def baseline_satisfiable_classes(schema: CRSchema) -> dict[str, bool]:
    """Per-class satisfiability via the baseline (ISA-free schemas only).

    Uses the same acceptability fixpoint as the full procedure, on the
    much smaller baseline system.
    """
    baseline = lenzerini_nobili_system(schema)
    forced_zero: set[str] = set()
    while True:
        constrained = baseline.system.with_constraints(
            Constraint(term(name), Relation.EQ, label=f"forced-zero:{name}")
            for name in sorted(forced_zero)
        )
        support, _solution = maximal_support(constrained)
        newly_forced = {
            rel_unknown
            for rel_unknown, class_unknowns in baseline.dependencies.items()
            if rel_unknown not in forced_zero
            and any(c not in support for c in class_unknowns)
        }
        if not newly_forced:
            break
        forced_zero |= newly_forced
    return {
        cls: baseline.class_var[cls] in support for cls in schema.classes
    }


def baseline_witness(schema: CRSchema) -> dict[str, int]:
    """An integer point of the baseline system's maximal acceptable support."""
    baseline = lenzerini_nobili_system(schema)
    forced_zero: set[str] = set()
    solution: dict[str, Fraction]
    while True:
        constrained = baseline.system.with_constraints(
            Constraint(term(name), Relation.EQ) for name in sorted(forced_zero)
        )
        support, solution = maximal_support(constrained)
        newly_forced = {
            rel_unknown
            for rel_unknown, class_unknowns in baseline.dependencies.items()
            if rel_unknown not in forced_zero
            and any(c not in support for c in class_unknowns)
        }
        if not newly_forced:
            return integerize(solution)
        forced_zero |= newly_forced
