"""Finite interpretations of CR-schemas (database states).

An interpretation assigns a finite domain, a set of instances to every
class, and a set of labelled tuples to every relationship
(Definition 2.2's ``I = (Δ, ·^I)``).  Whether the interpretation is a
*model* — satisfies conditions (A)–(C) — is decided by
:mod:`repro.cr.checker`; this module only provides the data structure
and the derived *compound* extensions of Section 3.1.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.cr.schema import CRSchema
from repro.errors import InterpretationError

Individual = Hashable


class LabeledTuple:
    """A labelled tuple ``<U1: d1, ..., Uk: dk>`` (a role → individual map).

    Immutable and hashable; equality is by role-value content, matching
    the paper's set semantics for relationship extensions.
    """

    __slots__ = ("_items",)

    def __init__(self, components: Mapping[str, Individual]) -> None:
        if not components:
            raise InterpretationError("a labelled tuple cannot be empty")
        self._items = tuple(sorted(components.items()))

    @property
    def roles(self) -> tuple[str, ...]:
        return tuple(role for role, _ in self._items)

    def __getitem__(self, role: str) -> Individual:
        for candidate, value in self._items:
            if candidate == role:
                return value
        raise KeyError(role)

    def get(self, role: str, default: Individual | None = None) -> Individual | None:
        for candidate, value in self._items:
            if candidate == role:
                return value
        return default

    def as_dict(self) -> dict[str, Individual]:
        return dict(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledTuple):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __lt__(self, other: LabeledTuple) -> bool:
        return self._items < other._items

    def pretty(self) -> str:
        inner = ", ".join(f"{role}: {value}" for role, value in self._items)
        return f"<{inner}>"

    def __repr__(self) -> str:
        return f"LabeledTuple({self.pretty()})"


@dataclass(frozen=True)
class Interpretation:
    """A finite interpretation: domain, class and relationship extensions.

    Missing entries in either mapping denote empty extensions, so the
    all-empty interpretation of a schema is ``Interpretation.empty()``.
    """

    domain: frozenset[Individual]
    class_extensions: Mapping[str, frozenset[Individual]] = field(
        default_factory=dict
    )
    relationship_extensions: Mapping[str, frozenset[LabeledTuple]] = field(
        default_factory=dict
    )

    @classmethod
    def empty(cls) -> Interpretation:
        """The interpretation with empty domain (trivially a model)."""
        return cls(frozenset(), {}, {})

    @classmethod
    def build(
        cls,
        classes: Mapping[str, Iterable[Individual]],
        relationships: Mapping[str, Iterable[Mapping[str, Individual]]] = {},
        extra_domain: Iterable[Individual] = (),
    ) -> Interpretation:
        """Convenience constructor from plain dicts/lists.

        The domain is the union of everything mentioned plus
        ``extra_domain``; relationship tuples are given as role → value
        mappings.
        """
        class_ext = {
            name: frozenset(members) for name, members in classes.items()
        }
        rel_ext = {
            name: frozenset(LabeledTuple(components) for components in tuples)
            for name, tuples in relationships.items()
        }
        domain = set(extra_domain)
        for members in class_ext.values():
            domain.update(members)
        for tuples in rel_ext.values():
            for labelled in tuples:
                domain.update(labelled.as_dict().values())
        return cls(frozenset(domain), class_ext, rel_ext)

    # -- accessors -------------------------------------------------------

    def instances_of(self, cls: str) -> frozenset[Individual]:
        """Extension of a class (empty if the class is not mentioned)."""
        return self.class_extensions.get(cls, frozenset())

    def tuples_of(self, rel: str) -> frozenset[LabeledTuple]:
        """Extension of a relationship (empty if not mentioned)."""
        return self.relationship_extensions.get(rel, frozenset())

    def participation_count(
        self, rel: str, role: str, individual: Individual
    ) -> int:
        """``|{r in rel : r[role] == individual}|`` (Definition 2.2 (C))."""
        return sum(
            1
            for labelled in self.tuples_of(rel)
            if labelled.get(role) == individual
        )

    def compound_extension(
        self, members: frozenset[str], all_classes: Iterable[str]
    ) -> frozenset[Individual]:
        """Extension of the compound class ``members`` (Section 3.1).

        Individuals belonging to *all* classes in ``members`` and to
        *none* of the remaining classes of the schema.
        """
        if not members:
            raise InterpretationError("a compound class is a nonempty subset")
        result: set[Individual] | None = None
        for cls in members:
            extension = self.instances_of(cls)
            result = set(extension) if result is None else result & extension
        assert result is not None
        for cls in all_classes:
            if cls not in members:
                result -= self.instances_of(cls)
        return frozenset(result)

    def compound_tuples(
        self,
        rel: str,
        role_members: Mapping[str, frozenset[str]],
        all_classes: Iterable[str],
    ) -> frozenset[LabeledTuple]:
        """Extension of a compound relationship (Section 3.1).

        ``role_members`` maps each role to the member set of its
        compound class; a tuple belongs to the compound relationship
        when each component lies in the corresponding compound
        extension.
        """
        class_list = tuple(all_classes)
        extensions = {
            role: self.compound_extension(members, class_list)
            for role, members in role_members.items()
        }
        return frozenset(
            labelled
            for labelled in self.tuples_of(rel)
            if all(
                labelled.get(role) in extension
                for role, extension in extensions.items()
            )
        )

    # -- statistics --------------------------------------------------------

    def summary(self) -> str:
        """One-line size summary for logs and reports."""
        classes = ", ".join(
            f"|{name}|={len(ext)}"
            for name, ext in sorted(self.class_extensions.items())
        )
        relationships = ", ".join(
            f"|{name}|={len(ext)}"
            for name, ext in sorted(self.relationship_extensions.items())
        )
        return f"domain={len(self.domain)}; {classes}; {relationships}"

    def check_well_formed(self, schema: CRSchema) -> None:
        """Raise :class:`InterpretationError` if not evaluable against ``schema``.

        Checks that only declared symbols are used, extensions stay
        inside the domain, and every relationship tuple carries exactly
        the roles of the relationship's signature.  (Constraint
        *violations* are the checker's business, not an error here.)
        """
        declared_classes = set(schema.classes)
        for name, extension in self.class_extensions.items():
            if name not in declared_classes:
                raise InterpretationError(f"unknown class {name!r} in interpretation")
            if not extension <= self.domain:
                raise InterpretationError(
                    f"class {name!r} has instances outside the domain"
                )
        declared_rels = {rel.name: rel for rel in schema.relationships}
        for name, tuples in self.relationship_extensions.items():
            rel = declared_rels.get(name)
            if rel is None:
                raise InterpretationError(
                    f"unknown relationship {name!r} in interpretation"
                )
            expected_roles = tuple(sorted(rel.roles))
            for labelled in tuples:
                if labelled.roles != expected_roles:
                    raise InterpretationError(
                        f"tuple {labelled.pretty()} of {name!r} does not match "
                        f"signature roles {expected_roles}"
                    )
                for value in labelled.as_dict().values():
                    if value not in self.domain:
                        raise InterpretationError(
                            f"tuple {labelled.pretty()} of {name!r} mentions an "
                            "individual outside the domain"
                        )
