"""Model checking: does an interpretation satisfy a CR-schema?

Implements conditions (A)–(C) of Definition 2.2, the Section-5
extensions (disjointness, covering), and — for the expansion — the
conditions (A')–(C') of Lemma 3.2.  The checker is the ground truth the
rest of the library is tested against: every model produced by
:mod:`repro.cr.construction` must pass it, and every counter-model
produced by the implication engine must violate exactly the queried
constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cr.expansion import Expansion
from repro.cr.interpretation import Interpretation
from repro.cr.schema import CRSchema


@dataclass(frozen=True)
class Violation:
    """One violated condition, with a human-readable explanation.

    ``condition`` names the Definition 2.2 / Lemma 3.2 condition
    (``"A"``, ``"B"``, ``"C"``, ``"A'"``, ``"B'"``, ``"C'"``,
    ``"disjointness"``, ``"covering"``).
    """

    condition: str
    message: str

    def __str__(self) -> str:
        return f"[{self.condition}] {self.message}"


def check_model(schema: CRSchema, interpretation: Interpretation) -> list[Violation]:
    """All violations of Definition 2.2 (plus extensions); empty = model."""
    interpretation.check_well_formed(schema)
    violations: list[Violation] = []
    violations.extend(_check_isa(schema, interpretation))
    violations.extend(_check_typing(schema, interpretation))
    violations.extend(_check_cardinalities(schema, interpretation))
    violations.extend(_check_disjointness(schema, interpretation))
    violations.extend(_check_covering(schema, interpretation))
    return violations


def is_model(schema: CRSchema, interpretation: Interpretation) -> bool:
    """Whether the interpretation satisfies every schema condition."""
    return not check_model(schema, interpretation)


def _check_isa(schema: CRSchema, interpretation: Interpretation) -> list[Violation]:
    """Condition (A): each declared ``C1 ≼ C2`` gives ``C1^I ⊆ C2^I``."""
    violations: list[Violation] = []
    for sub, sup in schema.isa_statements:
        stray = interpretation.instances_of(sub) - interpretation.instances_of(sup)
        if stray:
            example = sorted(map(repr, stray))[0]
            violations.append(
                Violation(
                    "A",
                    f"{sub} isa {sup} violated: {example} is in {sub} "
                    f"but not in {sup}",
                )
            )
    return violations


def _check_typing(schema: CRSchema, interpretation: Interpretation) -> list[Violation]:
    """Condition (B): tuple components are instances of the primary classes."""
    violations: list[Violation] = []
    for rel in schema.relationships:
        for labelled in interpretation.tuples_of(rel.name):
            for role, primary in rel.signature:
                value = labelled[role]
                if value not in interpretation.instances_of(primary):
                    violations.append(
                        Violation(
                            "B",
                            f"tuple {labelled.pretty()} of {rel.name}: component "
                            f"{role} = {value!r} is not an instance of the "
                            f"primary class {primary}",
                        )
                    )
    return violations


def _check_cardinalities(
    schema: CRSchema, interpretation: Interpretation
) -> list[Violation]:
    """Condition (C), checked for every *declared* cardinality.

    Undeclared triples carry the default ``(0, ∞)``, which no finite
    count can violate, so iterating the declarations is exhaustive.
    """
    violations: list[Violation] = []
    for (cls, rel, role), card in sorted(schema.declared_cards.items()):
        for individual in sorted(interpretation.instances_of(cls), key=repr):
            count = interpretation.participation_count(rel, role, individual)
            if not card.admits(count):
                violations.append(
                    Violation(
                        "C",
                        f"instance {individual!r} of {cls} appears {count} "
                        f"time(s) as {role} of {rel}; required "
                        f"{card.pretty()}",
                    )
                )
    return violations


def _check_disjointness(
    schema: CRSchema, interpretation: Interpretation
) -> list[Violation]:
    violations: list[Violation] = []
    for group in schema.disjointness_groups:
        members = sorted(group)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                shared = interpretation.instances_of(
                    first
                ) & interpretation.instances_of(second)
                if shared:
                    example = sorted(map(repr, shared))[0]
                    violations.append(
                        Violation(
                            "disjointness",
                            f"{first} and {second} are declared disjoint but "
                            f"share {example}",
                        )
                    )
    return violations


def _check_covering(
    schema: CRSchema, interpretation: Interpretation
) -> list[Violation]:
    violations: list[Violation] = []
    for covered, coverers in schema.coverings:
        uncovered = set(interpretation.instances_of(covered))
        for coverer in coverers:
            uncovered -= interpretation.instances_of(coverer)
        if uncovered:
            example = sorted(map(repr, uncovered))[0]
            violations.append(
                Violation(
                    "covering",
                    f"{covered} is covered by {sorted(coverers)} but "
                    f"{example} is in none of the coverers",
                )
            )
    return violations


# -- expansion-level checking (Lemma 3.2) --------------------------------


def check_expansion_model(
    expansion: Expansion, interpretation: Interpretation
) -> list[Violation]:
    """All violations of Lemma 3.2's conditions (A')–(C').

    The lemma states these are equivalent to Definition 2.2's (A)–(C);
    the test-suite exercises that equivalence on random interpretations.
    """
    schema = expansion.schema
    interpretation.check_well_formed(schema)
    classes = schema.classes
    violations: list[Violation] = []

    # (A') inconsistent compound classes are empty.
    for compound in expansion.all_compound_classes():
        if expansion.is_consistent_class(compound):
            continue
        extension = interpretation.compound_extension(compound.members, classes)
        if extension:
            example = sorted(map(repr, extension))[0]
            violations.append(
                Violation(
                    "A'",
                    f"inconsistent compound class {compound.pretty()} is "
                    f"non-empty (contains {example})",
                )
            )

    # (B') tuples of a compound relationship have components in the
    # matching compound classes (true by construction of the derived
    # extensions), and inconsistent compound relationships are empty.
    for compound_rel in expansion.all_compound_relationships():
        if expansion.is_consistent_relationship(compound_rel):
            continue
        tuples = interpretation.compound_tuples(
            compound_rel.rel,
            {role: cc.members for role, cc in compound_rel.signature},
            classes,
        )
        if tuples:
            example = sorted(tuples)[0]
            violations.append(
                Violation(
                    "B'",
                    f"inconsistent compound relationship "
                    f"{compound_rel.pretty()} is non-empty "
                    f"(contains {example.pretty()})",
                )
            )

    # (C') lifted cardinalities hold for instances of consistent
    # compound classes.
    for rel in schema.relationships:
        for role, primary in rel.signature:
            for compound in expansion.consistent_compound_classes():
                if primary not in compound.members:
                    continue
                card = expansion.lifted_card(compound, rel.name, role)
                extension = interpretation.compound_extension(
                    compound.members, classes
                )
                for individual in sorted(extension, key=repr):
                    count = interpretation.participation_count(
                        rel.name, role, individual
                    )
                    if not card.admits(count):
                        violations.append(
                            Violation(
                                "C'",
                                f"instance {individual!r} of compound class "
                                f"{compound.pretty()} appears {count} time(s) "
                                f"as {role} of {rel.name}; lifted bound is "
                                f"{card.pretty()}",
                            )
                        )
    return violations
