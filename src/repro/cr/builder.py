"""Fluent construction of CR-schemas.

The builder collects declarations in any order and validates everything
once at :meth:`SchemaBuilder.build`, so mutually referring statements
("Discussant isa Speaker" before Speaker's cardinalities, say) can be
written naturally.  All methods return ``self`` for chaining::

    schema = (
        SchemaBuilder("Meeting")
        .cls("Speaker").cls("Discussant").cls("Talk")
        .isa("Discussant", "Speaker")
        .relationship("Holds", U1="Speaker", U2="Talk")
        .relationship("Participates", U3="Discussant", U4="Talk")
        .card("Speaker", "Holds", "U1", minc=1)
        .card("Discussant", "Holds", "U1", maxc=2)
        .card("Talk", "Holds", "U2", minc=1, maxc=1)
        .card("Discussant", "Participates", "U3", minc=1, maxc=1)
        .card("Talk", "Participates", "U4", minc=1)
        .build()
    )

which is exactly the paper's Figure 3.
"""

from __future__ import annotations

from repro.cr.schema import Card, CRSchema, Relationship, UNBOUNDED
from repro.errors import DuplicateSymbolError, SchemaError


class SchemaBuilder:
    """Accumulates declarations and produces an immutable :class:`CRSchema`."""

    def __init__(self, name: str = "S") -> None:
        self._name = name
        self._classes: list[str] = []
        self._relationships: list[Relationship] = []
        self._isa: list[tuple[str, str]] = []
        self._cards: dict[tuple[str, str, str], Card] = {}
        self._disjointness: list[frozenset[str]] = []
        self._coverings: list[tuple[str, frozenset[str]]] = []

    # -- declarations ---------------------------------------------------

    def cls(self, name: str) -> SchemaBuilder:
        """Declare a class symbol."""
        if name in self._classes:
            raise DuplicateSymbolError(f"class {name!r} declared twice")
        self._classes.append(name)
        return self

    def classes(self, *names: str) -> SchemaBuilder:
        """Declare several class symbols at once."""
        for name in names:
            self.cls(name)
        return self

    def relationship(self, name: str, **roles: str) -> SchemaBuilder:
        """Declare a relationship; keyword order gives the signature order.

        ``roles`` maps role name → primary class, e.g.
        ``relationship("Holds", U1="Speaker", U2="Talk")``.
        """
        if any(rel.name == name for rel in self._relationships):
            raise DuplicateSymbolError(f"relationship {name!r} declared twice")
        self._relationships.append(
            Relationship(name, tuple(roles.items()))
        )
        return self

    def isa(self, sub: str, sup: str) -> SchemaBuilder:
        """Declare ``sub ≼ sup``."""
        self._isa.append((sub, sup))
        return self

    def card(
        self,
        cls: str,
        rel: str,
        role: str,
        minc: int = 0,
        maxc: int | None = UNBOUNDED,
    ) -> SchemaBuilder:
        """Declare ``minc``/``maxc`` for a (class, relationship, role) triple.

        Declaring the same triple twice intersects the constraints (the
        tightest of both applies), mirroring how refinements accumulate.
        """
        key = (cls, rel, role)
        new = Card(minc, maxc)
        existing = self._cards.get(key)
        self._cards[key] = new if existing is None else existing.intersect(new)
        return self

    def disjoint(self, *classes: str) -> SchemaBuilder:
        """Declare the given classes pairwise disjoint (Section 5 extension)."""
        if len(classes) < 2:
            raise SchemaError("disjoint() needs at least two classes")
        self._disjointness.append(frozenset(classes))
        return self

    def cover(self, covered: str, *coverers: str) -> SchemaBuilder:
        """Declare that ``coverers`` jointly cover ``covered`` (Section 5)."""
        if not coverers:
            raise SchemaError("cover() needs at least one coverer")
        self._coverings.append((covered, frozenset(coverers)))
        return self

    # -- finalisation -----------------------------------------------------

    def build(self) -> CRSchema:
        """Validate everything and return the immutable schema."""
        return CRSchema(
            self._classes,
            self._relationships,
            self._isa,
            self._cards,
            self._disjointness,
            self._coverings,
            name=self._name,
        )
