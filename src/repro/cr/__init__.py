"""The CR data model and the paper's decision procedures.

This package is the reproduction of the paper's technical content:

* :mod:`repro.cr.schema` / :mod:`repro.cr.builder` — the CR data model
  (Definition 2.1): classes, n-ary relationships with named roles, ISA
  statements, cardinality constraints with refinement along ISA edges;
* :mod:`repro.cr.interpretation` / :mod:`repro.cr.checker` — finite
  interpretations and the model conditions (A)–(C) of Definition 2.2
  plus the expansion conditions (A')–(C') of Lemma 3.2;
* :mod:`repro.cr.expansion` — compound classes and compound
  relationships (Section 3.1);
* :mod:`repro.cr.system` — the system of linear disequations `Ψ_S`
  (Section 3.2);
* :mod:`repro.cr.satisfiability` — class satisfiability (Theorems 3.3
  and 3.4), with both the literal zero-set enumeration engine and a
  polynomial-per-expansion fixpoint engine;
* :mod:`repro.cr.construction` — builds an explicit finite model from
  an acceptable solution (the constructive half of completeness);
* :mod:`repro.cr.implication` — implication of ISA and cardinality
  constraints (Section 4).
"""

from repro.cr.builder import SchemaBuilder
from repro.cr.constraints import (
    CardinalityDeclaration,
    CoveringStatement,
    DisjointnessStatement,
    IsaStatement,
    MaxCardinalityStatement,
    MinCardinalityStatement,
)
from repro.cr.checker import Violation, check_model, is_model
from repro.cr.construction import construct_model
from repro.cr.expansion import CompoundClass, CompoundRelationship, Expansion
from repro.cr.implication import (
    ImplicationResult,
    implies_disjointness,
    implies_isa,
    implies_max_cardinality,
    implies_min_cardinality,
)
from repro.cr.interpretation import Interpretation, LabeledTuple
from repro.cr.satisfiability import (
    SatisfiabilityResult,
    is_class_satisfiable,
    satisfiable_classes,
)
from repro.cr.schema import Card, CRSchema, Relationship, UNBOUNDED

__all__ = [
    "SchemaBuilder",
    "CRSchema",
    "Relationship",
    "Card",
    "UNBOUNDED",
    "IsaStatement",
    "CardinalityDeclaration",
    "MinCardinalityStatement",
    "MaxCardinalityStatement",
    "DisjointnessStatement",
    "CoveringStatement",
    "Interpretation",
    "LabeledTuple",
    "Violation",
    "check_model",
    "is_model",
    "CompoundClass",
    "CompoundRelationship",
    "Expansion",
    "SatisfiabilityResult",
    "is_class_satisfiable",
    "satisfiable_classes",
    "construct_model",
    "ImplicationResult",
    "implies_isa",
    "implies_min_cardinality",
    "implies_max_cardinality",
    "implies_disjointness",
]
