"""Expansion of a CR-schema (Section 3.1 of the paper).

Because classes may share instances, the instance counts of the classes
themselves cannot serve as system unknowns (a single individual would be
counted twice).  The expansion fixes this by switching to **compound
classes** — non-empty subsets ``C̄ ⊆ C`` standing for the individuals
that belong to *exactly* the classes in ``C̄`` — whose extensions
partition the domain, and **compound relationships** — role-labelled
tuples of compound classes — whose extensions partition each
relationship.

A compound class is *consistent* when it is upward-closed along the
declared ISA statements (and, with the Section-5 extensions enabled,
respects disjointness and covering); a compound relationship is
consistent when every role carries a consistent compound class
containing that role's primary class.  Inconsistent compounds are
forced empty by Lemma 3.2 and appear in the literal disequation system
only as ``Var = 0`` rows.

The lifted cardinalities of Definition 3.1 are the intersections of the
member classes' constraints: ``minc`` is the largest member minimum,
``maxc`` the smallest member maximum.

Everything here enumerates deterministically.  Compound classes are
numbered the way the paper's Figure 4 numbers them: by size first, then
lexicographically in class-declaration order — so for the meeting
schema the numbering is exactly ``C̄1={S} ... C̄7={S,D,T}``.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import combinations, product

from repro.cr.schema import Card, CRSchema, Relationship
from repro.errors import LimitExceededError, ReproError
from repro.runtime.budget import current_budget


@dataclass(frozen=True)
class CompoundClass:
    """A non-empty set of class symbols (one cell of the type partition)."""

    members: frozenset[str]

    def __post_init__(self) -> None:
        if not self.members:
            raise ReproError("a compound class is a NONEMPTY subset of C")

    def contains(self, cls: str) -> bool:
        return cls in self.members

    def pretty(self) -> str:
        return "{" + ",".join(sorted(self.members)) + "}"

    def __repr__(self) -> str:
        return f"CompoundClass({self.pretty()})"


@dataclass(frozen=True)
class CompoundRelationship:
    """A relationship symbol with a compound class attached to each role."""

    rel: str
    signature: tuple[tuple[str, CompoundClass], ...]

    def component(self, role: str) -> CompoundClass:
        for candidate, compound in self.signature:
            if candidate == role:
                return compound
        raise KeyError(role)

    @property
    def roles(self) -> tuple[str, ...]:
        return tuple(role for role, _ in self.signature)

    def pretty(self) -> str:
        inner = ", ".join(
            f"{role}: {compound.pretty()}" for role, compound in self.signature
        )
        return f"<{inner}>_{self.rel}"

    def __repr__(self) -> str:
        return f"CompoundRelationship({self.pretty()})"


@dataclass(frozen=True)
class ExpansionLimits:
    """Guards against the expansion's inherent exponential blow-up.

    The decision procedure is exponential in the schema size (the paper
    notes the problem is intractable in general); these limits turn a
    runaway computation into a clear, *typed*
    :class:`~repro.errors.LimitExceededError` instead of an apparent
    hang — so callers can distinguish "the input is too large for the
    configured limits" from genuine bugs or usage errors.  For
    wall-clock and work budgets shared across the whole pipeline, see
    :class:`repro.runtime.Budget`.
    """

    max_all_compound_classes: int = 1 << 16
    max_consistent_compound_classes: int = 1 << 14
    max_consistent_compound_relationships: int = 1 << 17

    def check_all_classes(self, count: int) -> None:
        if count > self.max_all_compound_classes:
            raise LimitExceededError(
                f"the schema has {count} compound classes, above the limit of "
                f"{self.max_all_compound_classes}; add disjointness "
                "constraints to prune the expansion or raise ExpansionLimits"
            )

    def check_consistent_classes(self, count: int) -> None:
        if count > self.max_consistent_compound_classes:
            raise LimitExceededError(
                f"the schema has more than {self.max_consistent_compound_classes} "
                "consistent compound classes; add disjointness constraints "
                "to prune the expansion or raise ExpansionLimits"
            )

    def check_consistent_relationships(self, count: int) -> None:
        if count > self.max_consistent_compound_relationships:
            raise LimitExceededError(
                f"the schema has {count} consistent compound relationships, "
                f"above the limit of {self.max_consistent_compound_relationships}; "
                "add disjointness constraints to prune the expansion or raise "
                "ExpansionLimits"
            )


class Expansion:
    """The expansion ``S̄`` of a CR-schema ``S`` (Definition 3.1).

    Consistent compound classes and relationships are materialised
    eagerly (they are what the disequation system quantifies over); the
    full — inconsistent-including — enumerations are generators, used
    only by the literal Figure-4/Figure-5 renderings and the
    Lemma-3.2 checker.

    ``build_count`` is a process-wide counter of ``Expansion``
    constructions; the session layer's tests and benchmarks use it to
    assert that warm cached queries never rebuild the expansion.
    ``nodes_visited`` counts the search nodes entered by the pruned
    enumeration (the E9/E13 cost metric).
    """

    build_count: int = 0

    def __init__(
        self, schema: CRSchema, limits: ExpansionLimits | None = None
    ) -> None:
        Expansion.build_count += 1
        self.schema = schema
        self.limits = limits or ExpansionLimits()
        self.nodes_visited = 0
        self._class_position = {
            cls: index for index, cls in enumerate(schema.classes)
        }
        self._consistent_classes = self._enumerate_consistent_classes()
        self._consistent_class_set = frozenset(self._consistent_classes)
        self._consistent_relationships = self._enumerate_consistent_relationships()
        self._lifted_cache: dict[tuple[CompoundClass, str, str], Card] = {}

    # -- enumeration of compound classes ---------------------------------

    def all_compound_classes(self) -> Iterator[CompoundClass]:
        """Every non-empty subset of ``C``, in paper (Figure 4) order.

        Exponential in the number of classes; guarded by the limits.
        """
        classes = self.schema.classes
        self.limits.check_all_classes((1 << len(classes)) - 1)
        budget = current_budget()
        for size in range(1, len(classes) + 1):
            for subset in combinations(classes, size):
                if budget is not None:
                    budget.charge_expansion()
                yield CompoundClass(frozenset(subset))

    def _enumerate_consistent_classes(self) -> tuple[CompoundClass, ...]:
        """Closure-guided generation of the consistent compound classes.

        A backtracking search over membership decisions with **unit
        propagation** along the precomputed ``≼*`` closure: including a
        class immediately forces all its (transitive) ancestors in and
        its declared-disjoint partners out; excluding a class forces all
        its descendants out.  A branch is abandoned the moment
        propagation hits a contradiction, so the search never reaches a
        completed assignment that is ISA-inconsistent — only consistent
        compound classes are ever materialised.

        On an ISA chain of ``n`` classes this enters ``O(n)`` search
        nodes where the naive filter of the ``2^n`` power set is
        exponential and a depth-first walk without propagation is
        quadratic; on an ISA antichain the work stays proportional to
        the output, which the paper proves is unavoidable.  The node
        count is recorded in :attr:`nodes_visited` (experiments E9/E13).
        """
        schema = self.schema
        classes = schema.classes
        n = len(classes)
        position = self._class_position

        ancestors = [
            tuple(
                sorted(
                    position[sup]
                    for sup in schema.ancestors(cls)
                    if sup != cls
                )
            )
            for cls in classes
        ]
        descendants = [
            tuple(
                sorted(
                    position[sub]
                    for sub in schema.descendants(cls)
                    if sub != cls
                )
            )
            for cls in classes
        ]
        partners: list[tuple[int, ...]] = []
        partner_sets: list[set[int]] = [set() for _ in range(n)]
        for group in schema.disjointness_groups:
            indices = [position[cls] for cls in group]
            for index in indices:
                partner_sets[index].update(
                    other for other in indices if other != index
                )
        partners = [tuple(sorted(group)) for group in partner_sets]
        coverings = [
            (position[covered], tuple(position[cls] for cls in coverers))
            for covered, coverers in schema.coverings
        ]

        UNDECIDED, OUT, IN = -1, 0, 1
        state = [UNDECIDED] * n
        trail: list[int] = []
        results: list[frozenset[str]] = []
        budget = current_budget()

        def assign(pos: int, value: int) -> bool:
            """Set ``pos`` and propagate forced consequences; False on
            contradiction (the trail records every change either way)."""
            stack = [(pos, value)]
            while stack:
                current, wanted = stack.pop()
                existing = state[current]
                if existing != UNDECIDED:
                    if existing != wanted:
                        return False
                    continue
                state[current] = wanted
                trail.append(current)
                if wanted == IN:
                    for sup in ancestors[current]:
                        stack.append((sup, IN))
                    for partner in partners[current]:
                        stack.append((partner, OUT))
                else:
                    for sub in descendants[current]:
                        stack.append((sub, OUT))
            return True

        def covering_violated() -> bool:
            """A covering is certainly violated once its covered class is
            in and every coverer is already out (complete at leaves)."""
            for covered, coverers in coverings:
                if state[covered] == IN and all(
                    state[cls] == OUT for cls in coverers
                ):
                    return True
            return False

        def recurse(start: int) -> None:
            self.nodes_visited += 1
            if budget is not None:
                budget.charge_expansion()
            pos = start
            while pos < n and state[pos] != UNDECIDED:
                pos += 1
            if pos == n:
                selected = frozenset(
                    classes[i] for i in range(n) if state[i] == IN
                )
                if selected:
                    results.append(selected)
                    self.limits.check_consistent_classes(len(results))
                return
            for value in (OUT, IN):
                mark = len(trail)
                if assign(pos, value) and not covering_violated():
                    recurse(pos + 1)
                while len(trail) > mark:
                    state[trail.pop()] = UNDECIDED

        recurse(0)
        ordered = sorted(
            results, key=lambda members: self._order_key(members)
        )
        return tuple(CompoundClass(members) for members in ordered)

    def _order_key(self, members: frozenset[str]) -> tuple[int, tuple[int, ...]]:
        positions = tuple(sorted(self._class_position[cls] for cls in members))
        return (len(members), positions)

    def consistent_compound_classes(self) -> tuple[CompoundClass, ...]:
        """The consistent compound classes, in Figure-4 order."""
        return self._consistent_classes

    def is_consistent_class(self, compound: CompoundClass) -> bool:
        return compound in self._consistent_class_set

    def consistent_classes_containing(self, cls: str) -> tuple[CompoundClass, ...]:
        """Consistent compound classes whose member set contains ``cls``."""
        return tuple(
            compound
            for compound in self._consistent_classes
            if cls in compound.members
        )

    # -- numbering (matches the paper's Figure 4) -------------------------

    def class_index(self, compound: CompoundClass) -> int:
        """1-based index of a compound class in the full Figure-4 order.

        Computed combinatorially (no power-set enumeration): all smaller
        subsets come first, then the lexicographic rank among subsets of
        equal size.
        """
        n = len(self.schema.classes)
        positions = sorted(self._class_position[cls] for cls in compound.members)
        size = len(positions)
        index = sum(math.comb(n, s) for s in range(1, size))
        # Lexicographic rank of the combination `positions` among
        # `size`-subsets of {0..n-1}.
        rank = 0
        previous = -1
        for slot, value in enumerate(positions):
            for smaller in range(previous + 1, value):
                rank += math.comb(n - smaller - 1, size - slot - 1)
            previous = value
        return index + rank + 1

    # -- compound relationships -------------------------------------------

    def all_compound_relationships(self) -> Iterator[CompoundRelationship]:
        """Every compound relationship (exponential; rendering/tests only)."""
        all_classes = list(self.all_compound_classes())
        for rel in self.schema.relationships:
            for assignment in product(all_classes, repeat=rel.arity):
                yield CompoundRelationship(
                    rel.name, tuple(zip(rel.roles, assignment))
                )

    def _enumerate_consistent_relationships(
        self,
    ) -> tuple[CompoundRelationship, ...]:
        results: list[CompoundRelationship] = []
        budget = current_budget()
        for rel in self.schema.relationships:
            candidate_lists = [
                self.consistent_classes_containing(rel.primary_class(role))
                for role in rel.roles
            ]
            count = math.prod(len(candidates) for candidates in candidate_lists)
            self.limits.check_consistent_relationships(len(results) + count)
            for assignment in product(*candidate_lists):
                if budget is not None:
                    budget.charge_expansion()
                results.append(
                    CompoundRelationship(
                        rel.name, tuple(zip(rel.roles, assignment))
                    )
                )
        return tuple(results)

    def consistent_compound_relationships(self) -> tuple[CompoundRelationship, ...]:
        """The consistent compound relationships, grouped by relationship."""
        return self._consistent_relationships

    def consistent_relationships_of(
        self, rel: str
    ) -> tuple[CompoundRelationship, ...]:
        return tuple(
            compound
            for compound in self._consistent_relationships
            if compound.rel == rel
        )

    def is_consistent_relationship(self, compound: CompoundRelationship) -> bool:
        """Consistency per Section 3.1: each role's compound class is
        consistent and contains the role's primary class."""
        rel = self.schema.relationship(compound.rel)
        for role, compound_class in compound.signature:
            if not self.is_consistent_class(compound_class):
                return False
            if rel.primary_class(role) not in compound_class.members:
                return False
        return True

    # -- lifted cardinalities (Definition 3.1) -----------------------------

    def lifted_card(self, compound: CompoundClass, rel: str, role: str) -> Card:
        """``(minc(C̄,R,U), maxc(C̄,R,U))``: intersection over the members.

        Only members that are ``≼*``-subclasses of the role's primary
        class carry a constraint; the compound class is required to
        contain the primary class (so the set of contributing members is
        non-empty).
        """
        key = (compound, rel, role)
        cached = self._lifted_cache.get(key)
        if cached is not None:
            return cached
        relationship: Relationship = self.schema.relationship(rel)
        primary = relationship.primary_class(role)
        if primary not in compound.members:
            raise ReproError(
                f"lifted cardinality of {compound.pretty()} on "
                f"({rel}, {role}) is undefined: the compound class does not "
                f"contain the primary class {primary!r}"
            )
        lifted = Card.default()
        for member in compound.members:
            if self.schema.is_subclass(member, primary):
                lifted = lifted.intersect(self.schema.card(member, rel, role))
        self._lifted_cache[key] = lifted
        return lifted

    # -- statistics -----------------------------------------------------------

    def size_summary(self) -> dict[str, int]:
        """Counts used by reports and the E8/E9 benchmarks."""
        n = len(self.schema.classes)
        total_relationships = 0
        all_compound_classes = (1 << n) - 1
        for rel in self.schema.relationships:
            total_relationships += all_compound_classes ** rel.arity
        return {
            "classes": n,
            "relationships": len(self.schema.relationships),
            "all_compound_classes": all_compound_classes,
            "consistent_compound_classes": len(self._consistent_classes),
            "all_compound_relationships": total_relationships,
            "consistent_compound_relationships": len(
                self._consistent_relationships
            ),
            "expansion_nodes_visited": self.nodes_visited,
        }

    def __repr__(self) -> str:
        summary = self.size_summary()
        return (
            f"Expansion({self.schema.name!r}: "
            f"{summary['consistent_compound_classes']} consistent compound "
            f"classes, {summary['consistent_compound_relationships']} "
            "consistent compound relationships)"
        )
