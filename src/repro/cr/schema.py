"""The CR data model (Definition 2.1 of the paper).

A **CR-schema** consists of class symbols, relationship symbols with
role-labelled signatures, ISA statements between classes, and
cardinality declarations ``(minc, maxc)`` attached to a class /
relationship / role triple — where the class may be any ``≼*``-subclass
of the role's primary class (*refinement* of inherited cardinalities,
the dashed edges of the paper's Figure 2).

This module also carries the two Section-5 extensions (disjointness and
covering statements): the base model of the paper is recovered by
leaving them empty, and the expansion machinery consults them in a
single place (:meth:`CRSchema.is_consistent_compound`) so the core
algorithms need no special cases.

Schemas are immutable; build them with
:class:`repro.cr.builder.SchemaBuilder` or the DSL
(:func:`repro.dsl.parse_schema`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError, UnknownSymbolError
from repro.utils.naming import is_identifier

UNBOUNDED: None = None
"""Sentinel for an unbounded ``maxc`` (the paper's ∞)."""


def _reflexive_transitive_ancestors(
    classes: Sequence[str], isa: Iterable[tuple[str, str]]
) -> dict[str, frozenset[str]]:
    """``≼*`` as class → ancestor set (every class is its own ancestor)."""
    parents: dict[str, set[str]] = {cls: set() for cls in classes}
    for sub, sup in isa:
        parents[sub].add(sup)
    ancestors: dict[str, frozenset[str]] = {}
    for cls in classes:
        reached = {cls}
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for parent in parents[current]:
                if parent not in reached:
                    reached.add(parent)
                    frontier.append(parent)
        ancestors[cls] = frozenset(reached)
    return ancestors


@dataclass(frozen=True)
class Card:
    """A ``(minc, maxc)`` pair; ``maxc is None`` means unbounded (∞).

    The paper allows ``minc > maxc`` — such a declaration is not a
    syntax error, it simply forces the class to be empty — so no
    ordering is enforced here.
    """

    minc: int = 0
    maxc: int | None = UNBOUNDED

    def __post_init__(self) -> None:
        if self.minc < 0:
            raise SchemaError(f"minc must be non-negative, got {self.minc}")
        if self.maxc is not None and self.maxc < 0:
            raise SchemaError(f"maxc must be non-negative or None, got {self.maxc}")

    @classmethod
    def default(cls) -> Card:
        """The implicit constraint ``(0, ∞)`` of undeclared triples."""
        return cls(0, UNBOUNDED)

    def is_default(self) -> bool:
        return self.minc == 0 and self.maxc is UNBOUNDED

    def admits(self, count: int) -> bool:
        """Whether a participation count satisfies this constraint."""
        if count < self.minc:
            return False
        return self.maxc is None or count <= self.maxc

    def intersect(self, other: Card) -> Card:
        """The tightest constraint implied by both (max of mins, min of maxs).

        This is exactly the lifting rule of Definition 3.1 applied to a
        pair of declarations.
        """
        if self.maxc is None:
            maxc = other.maxc
        elif other.maxc is None:
            maxc = self.maxc
        else:
            maxc = min(self.maxc, other.maxc)
        return Card(max(self.minc, other.minc), maxc)

    def pretty(self) -> str:
        upper = "inf" if self.maxc is None else str(self.maxc)
        return f"({self.minc},{upper})"


@dataclass(frozen=True)
class Relationship:
    """A relationship symbol with its role-labelled signature.

    ``signature`` lists ``(role, primary_class)`` pairs in declaration
    order; Definition 2.1 requires at least two roles and roles that are
    specific to a single relationship (enforced by the schema).
    """

    name: str
    signature: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if len(self.signature) < 2:
            raise SchemaError(
                f"relationship {self.name!r} must have arity >= 2 "
                f"(Definition 2.1), got {len(self.signature)}"
            )
        roles = [role for role, _ in self.signature]
        if len(set(roles)) != len(roles):
            raise SchemaError(
                f"relationship {self.name!r} declares a duplicate role"
            )

    @property
    def roles(self) -> tuple[str, ...]:
        """Role names in signature order."""
        return tuple(role for role, _ in self.signature)

    @property
    def arity(self) -> int:
        return len(self.signature)

    def primary_class(self, role: str) -> str:
        """The primary class for ``role`` in this relationship."""
        for candidate, cls in self.signature:
            if candidate == role:
                return cls
        raise UnknownSymbolError(
            f"relationship {self.name!r} has no role {role!r}"
        )

    def pretty(self) -> str:
        inner = ", ".join(f"{role}: {cls}" for role, cls in self.signature)
        return f"{self.name} = <{inner}>"


class CRSchema:
    """An immutable CR-schema with precomputed derived structure.

    Construction validates the whole schema (Definition 2.1 plus the
    refinement side-condition on cardinality declarations) and
    precomputes the reflexive-transitive ISA closure, so the hot paths
    of the decision procedure are dictionary lookups.
    """

    def __init__(
        self,
        classes: Sequence[str],
        relationships: Sequence[Relationship],
        isa: Iterable[tuple[str, str]] = (),
        cards: Mapping[tuple[str, str, str], Card] | None = None,
        disjointness: Iterable[frozenset[str]] = (),
        coverings: Iterable[tuple[str, frozenset[str]]] = (),
        name: str = "S",
    ) -> None:
        self.name = name
        self._classes = tuple(classes)
        self._relationships = {rel.name: rel for rel in relationships}
        self._isa = tuple(dict.fromkeys(tuple(pair) for pair in isa))
        self._cards = dict(cards or {})
        self._disjointness = tuple(frozenset(group) for group in disjointness)
        self._coverings = tuple(
            (covered, frozenset(coverers)) for covered, coverers in coverings
        )
        self._validate()
        self._ancestors = self._compute_ancestors()
        self._validate_cards()
        self._role_owner = {
            role: rel.name
            for rel in self._relationships.values()
            for role in rel.roles
        }

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        if len(set(self._classes)) != len(self._classes):
            raise SchemaError("duplicate class declaration")
        for cls in self._classes:
            if not is_identifier(cls):
                raise SchemaError(f"invalid class name {cls!r}")
        class_set = set(self._classes)

        if len(self._relationships) != len(
            set(self._relationships)
        ):  # pragma: no cover - dict keys are unique by construction
            raise SchemaError("duplicate relationship declaration")
        seen_roles: dict[str, str] = {}
        for rel in self._relationships.values():
            if not is_identifier(rel.name):
                raise SchemaError(f"invalid relationship name {rel.name!r}")
            if rel.name in class_set:
                raise SchemaError(
                    f"name {rel.name!r} is used for both a class and a relationship"
                )
            for role, cls in rel.signature:
                if not is_identifier(role):
                    raise SchemaError(f"invalid role name {role!r}")
                if role in seen_roles:
                    raise SchemaError(
                        f"role {role!r} is declared in both "
                        f"{seen_roles[role]!r} and {rel.name!r}; roles are "
                        "specific to one relationship (Definition 2.1)"
                    )
                seen_roles[role] = rel.name
                if cls not in class_set:
                    raise UnknownSymbolError(
                        f"relationship {rel.name!r} uses undeclared class {cls!r}"
                    )

        for sub, sup in self._isa:
            if sub not in class_set:
                raise UnknownSymbolError(f"ISA uses undeclared class {sub!r}")
            if sup not in class_set:
                raise UnknownSymbolError(f"ISA uses undeclared class {sup!r}")

        for group in self._disjointness:
            if len(group) < 2:
                raise SchemaError(
                    "a disjointness statement needs at least two classes"
                )
            for cls in group:
                if cls not in class_set:
                    raise UnknownSymbolError(
                        f"disjointness uses undeclared class {cls!r}"
                    )
        for covered, coverers in self._coverings:
            if covered not in class_set:
                raise UnknownSymbolError(
                    f"covering uses undeclared class {covered!r}"
                )
            if not coverers:
                raise SchemaError("a covering statement needs coverers")
            for cls in coverers:
                if cls not in class_set:
                    raise UnknownSymbolError(
                        f"covering uses undeclared class {cls!r}"
                    )

    def _validate_cards(self) -> None:
        for (cls, rel_name, role), card in self._cards.items():
            rel = self._relationships.get(rel_name)
            if rel is None:
                raise UnknownSymbolError(
                    f"cardinality declared on undeclared relationship {rel_name!r}"
                )
            primary = rel.primary_class(role)
            if cls not in set(self._classes):
                raise UnknownSymbolError(
                    f"cardinality declared on undeclared class {cls!r}"
                )
            if not self.is_subclass(cls, primary):
                raise SchemaError(
                    f"cardinality on ({cls!r}, {rel_name!r}, {role!r}) is "
                    f"illegal: {cls!r} is not a (transitive) subclass of the "
                    f"primary class {primary!r} (Definition 2.1)"
                )
            assert isinstance(card, Card)

    # -- ISA closure ----------------------------------------------------

    def _compute_ancestors(self) -> dict[str, frozenset[str]]:
        """Reflexive-transitive closure ``≼*`` as class → ancestor set."""
        return _reflexive_transitive_ancestors(self._classes, self._isa)

    # -- accessors -------------------------------------------------------

    @property
    def classes(self) -> tuple[str, ...]:
        """Class symbols in declaration order."""
        return self._classes

    @property
    def relationships(self) -> tuple[Relationship, ...]:
        """Relationship declarations in declaration order."""
        return tuple(self._relationships.values())

    def relationship(self, name: str) -> Relationship:
        rel = self._relationships.get(name)
        if rel is None:
            raise UnknownSymbolError(f"unknown relationship {name!r}")
        return rel

    def has_class(self, name: str) -> bool:
        return name in self._ancestors

    def require_class(self, name: str) -> None:
        if not self.has_class(name):
            raise UnknownSymbolError(f"unknown class {name!r}")

    @property
    def isa_statements(self) -> tuple[tuple[str, str], ...]:
        """The declared (direct) ISA statements, in declaration order."""
        return self._isa

    @property
    def disjointness_groups(self) -> tuple[frozenset[str], ...]:
        return self._disjointness

    @property
    def coverings(self) -> tuple[tuple[str, frozenset[str]], ...]:
        return self._coverings

    def relationship_of_role(self, role: str) -> Relationship:
        """The unique relationship declaring ``role``."""
        name = self._role_owner.get(role)
        if name is None:
            raise UnknownSymbolError(f"unknown role {role!r}")
        return self._relationships[name]

    def ancestors(self, cls: str) -> frozenset[str]:
        """All ``D`` with ``cls ≼* D`` (including ``cls`` itself)."""
        self.require_class(cls)
        return self._ancestors[cls]

    def descendants(self, cls: str) -> frozenset[str]:
        """All ``D`` with ``D ≼* cls`` (including ``cls`` itself)."""
        self.require_class(cls)
        return frozenset(
            other for other in self._classes if cls in self._ancestors[other]
        )

    def is_subclass(self, sub: str, sup: str) -> bool:
        """Whether ``sub ≼* sup`` holds by the declared statements."""
        self.require_class(sub)
        self.require_class(sup)
        return sup in self._ancestors[sub]

    def isa_path(self, sub: str, sup: str) -> tuple[str, ...] | None:
        """A shortest chain of *declared* ISA edges witnessing ``sub ≼* sup``.

        Returns ``(sub, ..., sup)`` where every consecutive pair is a
        declared statement, ``(sub,)`` when ``sub == sup``, and ``None``
        when ``sub ≼* sup`` does not hold.  This is the machine-checkable
        form of :meth:`is_subclass` used by the static analyzer's
        witnesses (:mod:`repro.analysis`): a checker needs only walk the
        returned path and look each edge up in :attr:`isa_statements`.
        """
        self.require_class(sub)
        self.require_class(sup)
        if sub == sup:
            return (sub,)
        parents: dict[str, list[str]] = {cls: [] for cls in self._classes}
        for lower, upper in self._isa:
            parents[lower].append(upper)
        previous: dict[str, str] = {}
        frontier = [sub]
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for parent in parents[current]:
                    if parent in previous or parent == sub:
                        continue
                    previous[parent] = current
                    if parent == sup:
                        path = [sup]
                        while path[-1] != sub:
                            path.append(previous[path[-1]])
                        return tuple(reversed(path))
                    next_frontier.append(parent)
            frontier = next_frontier
        return None

    # -- cardinalities -----------------------------------------------------

    @property
    def declared_cards(self) -> dict[tuple[str, str, str], Card]:
        """Copy of the explicit declarations keyed by (class, rel, role)."""
        return dict(self._cards)

    def card(self, cls: str, rel: str, role: str) -> Card:
        """The declared constraint, or the default ``(0, ∞)``.

        Raises :class:`SchemaError` if ``cls`` is not a subclass of the
        role's primary class (the triple carries no constraint then —
        not even the default one).
        """
        relationship = self.relationship(rel)
        primary = relationship.primary_class(role)
        if not self.is_subclass(cls, primary):
            raise SchemaError(
                f"({cls!r}, {rel!r}, {role!r}) carries no cardinality: "
                f"{cls!r} is not a subclass of the primary class {primary!r}"
            )
        return self._cards.get((cls, rel, role), Card.default())

    def effective_card_sources(
        self, cls: str, rel: str, role: str
    ) -> tuple[tuple[str, Card], ...]:
        """The declarations *inherited* by ``cls`` on ``(rel, role)``.

        Every instance of ``cls`` is an instance of each of its
        ``≼*``-ancestors, so any cardinality declared on an ancestor for
        the same (relationship, role) slot constrains the instance too.
        Returns the contributing ``(ancestor, declared_card)`` pairs in
        class-declaration order — the refinement chain the static
        analyzer cites as a witness.  Empty when no ancestor declares a
        constraint on the slot.
        """
        self.relationship(rel).primary_class(role)
        ancestors = self.ancestors(cls)
        return tuple(
            (ancestor, self._cards[(ancestor, rel, role)])
            for ancestor in self._classes
            if ancestor in ancestors and (ancestor, rel, role) in self._cards
        )

    def effective_card(self, cls: str, rel: str, role: str) -> Card:
        """The tightest constraint ``cls`` inherits on ``(rel, role)``.

        Intersection (Definition 3.1's lifting rule) of every declared
        card in :meth:`effective_card_sources`, starting from the
        default ``(0, ∞)``.  An effective ``minc > maxc`` forces ``cls``
        empty in every model — the polynomial-time unsatisfiability
        precheck of :mod:`repro.analysis`.
        """
        effective = Card.default()
        for _, declared in self.effective_card_sources(cls, rel, role):
            effective = effective.intersect(declared)
        return effective

    # -- consistency of compound classes (Sections 3.1 and 5) -------------

    def is_consistent_compound(self, members: frozenset[str]) -> bool:
        """Whether a compound class is consistent.

        Base condition (Section 3.1): membership is upward-closed along
        declared ISA statements.  Extension conditions (Section 5): no
        two members are declared disjoint, and for every covering whose
        covered class is a member, some coverer is a member too.
        """
        if not members:
            return False
        for sub, sup in self._isa:
            if sub in members and sup not in members:
                return False
        for group in self._disjointness:
            if len(group & members) >= 2:
                return False
        for covered, coverers in self._coverings:
            if covered in members and not (coverers & members):
                return False
        return True

    # -- constraint inventory / surgery (used by the debugger) -----------

    def constraints(self) -> list:
        """Every removable constraint statement in the schema.

        The structural part (class and relationship declarations) is not
        listed: it cannot cause unsatisfiability on its own.
        """
        from repro.cr.constraints import (
            CardinalityDeclaration,
            CoveringStatement,
            DisjointnessStatement,
            IsaStatement,
        )

        statements: list = [IsaStatement(sub, sup) for sub, sup in self._isa]
        statements.extend(
            CardinalityDeclaration(cls, rel, role, card)
            for (cls, rel, role), card in sorted(self._cards.items())
        )
        statements.extend(
            DisjointnessStatement(group) for group in self._disjointness
        )
        statements.extend(
            CoveringStatement(covered, coverers)
            for covered, coverers in self._coverings
        )
        return statements

    def without_constraints(self, removed: Iterable) -> CRSchema:
        """A copy of the schema with the given statements removed.

        Structure (classes, relationships, signatures) is preserved.
        Statements not present are ignored, which lets the debugger pass
        arbitrary candidate subsets.
        """
        from repro.cr.constraints import (
            CardinalityDeclaration,
            CoveringStatement,
            DisjointnessStatement,
            IsaStatement,
        )

        removed_set = set(removed)
        isa = [
            pair
            for pair in self._isa
            if IsaStatement(pair[0], pair[1]) not in removed_set
        ]
        cards = {
            key: card
            for key, card in self._cards.items()
            if CardinalityDeclaration(key[0], key[1], key[2], card)
            not in removed_set
        }
        # Removing an ISA statement can orphan a cardinality refinement
        # (its class is no longer a subclass of the role's primary class);
        # such declarations depend on the removed statement and go with it.
        ancestors = _reflexive_transitive_ancestors(self._classes, isa)
        cards = {
            (cls, rel_name, role): card
            for (cls, rel_name, role), card in cards.items()
            if self._relationships[rel_name].primary_class(role)
            in ancestors[cls]
        }
        disjointness = [
            group
            for group in self._disjointness
            if DisjointnessStatement(group) not in removed_set
        ]
        coverings = [
            (covered, coverers)
            for covered, coverers in self._coverings
            if CoveringStatement(covered, coverers) not in removed_set
        ]
        return CRSchema(
            self._classes,
            tuple(self._relationships.values()),
            isa,
            cards,
            disjointness,
            coverings,
            name=self.name,
        )

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"CRSchema({self.name!r}: {len(self._classes)} classes, "
            f"{len(self._relationships)} relationships, "
            f"{len(self._isa)} isa, {len(self._cards)} cardinalities)"
        )
