"""Satisfiability in *unrestricted* (possibly infinite) models.

The paper restricts attention to finite models — the right notion for
databases — precisely because the two notions differ: its Figure 1
schema has **no finite model** with a populated class, yet it has an
infinite one (take countably many ``C``-instances; infinite cardinal
arithmetic absorbs the ``2:1`` ratio that kills every finite
population).  This module decides the unrestricted notion, making the
paper's motivating distinction executable.

The procedure is the classical *type elimination* (greatest fixpoint)
rather than a disequation system — counting arguments have no force
over infinite sets, only local supply matters:

* a consistent compound relationship is **usable** while all its
  components are viable and every role's lifted ``maxc`` is at least 1
  (a fresh witness instance must be allowed to carry the tuple);
* a consistent compound class stays **viable** while, for every
  relationship role whose primary class it contains, the lifted bounds
  satisfy ``minc ≤ maxc`` and a positive ``minc`` is backed by some
  usable compound relationship carrying it in that role.

Eliminate until stable; a class is satisfiable in an unrestricted model
iff some viable compound class contains it.

*Soundness* is a countable chase: satisfy every instance's minimum
demands with fresh witnesses stage by stage — fresh witnesses carry one
tuple (allowed since ``maxc ≥ 1``), and an instance's own demands never
exceed its ``maxc`` because ``minc ≤ maxc``.  *Completeness*: the type
of any instance of any model survives elimination, by induction on the
elimination order (a real tuple exhibits a usable compound
relationship).  The property-based tests check the one-way implication
against the finite-model engine (finitely satisfiable ⇒ unrestricted
satisfiable) and the strictness of the inclusion on Figure 1.
"""

from __future__ import annotations

from repro.cr.expansion import (
    CompoundClass,
    CompoundRelationship,
    Expansion,
    ExpansionLimits,
)
from repro.cr.schema import CRSchema


def _usable(
    expansion: Expansion,
    compound_rel: CompoundRelationship,
    viable: set[CompoundClass],
) -> bool:
    for role, component in compound_rel.signature:
        if component not in viable:
            return False
        lifted = expansion.lifted_card(component, compound_rel.rel, role)
        if lifted.maxc is not None and lifted.maxc < 1:
            return False
    return True


def _locally_supported(
    expansion: Expansion,
    compound: CompoundClass,
    viable: set[CompoundClass],
) -> bool:
    schema = expansion.schema
    for rel in schema.relationships:
        for role, primary in rel.signature:
            if primary not in compound.members:
                continue
            lifted = expansion.lifted_card(compound, rel.name, role)
            if lifted.maxc is not None and lifted.minc > lifted.maxc:
                return False
            if lifted.minc >= 1:
                supplier = any(
                    compound_rel.component(role) == compound
                    and _usable(expansion, compound_rel, viable)
                    for compound_rel in expansion.consistent_relationships_of(
                        rel.name
                    )
                )
                if not supplier:
                    return False
    return True


def viable_compound_classes(
    expansion: Expansion,
) -> frozenset[CompoundClass]:
    """The greatest fixpoint of the local-support condition."""
    viable = set(expansion.consistent_compound_classes())
    changed = True
    while changed:
        changed = False
        for compound in list(viable):
            if not _locally_supported(expansion, compound, viable):
                viable.discard(compound)
                changed = True
    return frozenset(viable)


def unrestricted_satisfiable_classes(
    schema: CRSchema,
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
) -> dict[str, bool]:
    """Per-class satisfiability over unrestricted (finite or infinite) models."""
    if expansion is None:
        expansion = Expansion(schema, limits)
    viable = viable_compound_classes(expansion)
    return {
        cls: any(cls in compound.members for compound in viable)
        for cls in schema.classes
    }


def is_class_unrestricted_satisfiable(
    schema: CRSchema,
    cls: str,
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
) -> bool:
    """Whether ``cls`` can be populated when infinite states are allowed."""
    schema.require_class(cls)
    return unrestricted_satisfiable_classes(schema, expansion, limits)[cls]


def finitely_controllable_classes(
    schema: CRSchema,
    finite_verdicts: dict[str, bool],
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
) -> dict[str, bool]:
    """Which classes behave the same finitely and unrestrictedly.

    ``False`` entries are exactly the paper's motivating pathology:
    classes whose only models are infinite (Figure 1's ``C`` and ``D``).
    ``finite_verdicts`` comes from
    :func:`repro.cr.satisfiability.satisfiable_classes`.
    """
    unrestricted = unrestricted_satisfiable_classes(schema, expansion, limits)
    return {
        cls: finite_verdicts[cls] == unrestricted[cls]
        for cls in schema.classes
    }
