"""Class satisfiability in CR (Section 3.3 of the paper).

Theorem 3.3 reduces satisfiability of a class ``C_s`` to the existence
of an **acceptable** solution of ``Ψ'_S = Ψ_S ∪ {Σ_{C̄ ∋ C_s} Var(C̄) > 0}``,
where a solution is acceptable when every relationship unknown that
depends on a zero class unknown is itself zero.  Theorem 3.4 makes this
decidable by enumerating the zero-set ``Z`` of class unknowns.

Three engines implement the test:

``naive``
    The literal Theorem-3.4 procedure: for every subset ``Z`` of the
    class unknowns, check feasibility of ``Ψ_Z`` (one exact LP each).
    Exponential in the number of *consistent compound classes* — i.e.
    doubly exponential in the schema — but it is the theorem verbatim,
    and serves as the differential-testing oracle for the fast engine.

``pruned``
    The same enumeration with two admissible prunes — orbit symmetry
    reduction and Farkas-nogood learning (:mod:`repro.solver.pruned`).
    Verdict, witness, and support are byte-identical to ``naive``; only
    the number of LPs solved shrinks.

``fixpoint``
    Exploits the cone structure of homogeneous systems: the set of
    unknowns positive in *some* solution is closed under union (sum the
    witnesses), so there is a unique maximal support, computable with
    one LP per unknown.  Acceptability is then enforced by a fixpoint:
    any relationship unknown depending on a class unknown that can
    never be positive is forced to zero, the support is recomputed, and
    so on until stable.  The final support is exactly the union of the
    supports of all acceptable solutions, so:

    * class ``C`` is satisfiable  iff  some consistent compound class
      containing ``C`` has its unknown in the final support;
    * the accumulated full-support solution is itself acceptable and
      witnesses every satisfiable class at once.

    This needs polynomially many LP calls in the size of the expansion
    (the expansion itself remains exponential in the schema, as the
    paper proves is unavoidable).

**Resource governance.**  Both engines run under the ambient
:class:`repro.runtime.Budget` (the hot loops charge it; exhaustion
raises :class:`~repro.errors.BudgetExceededError`), and the public
entry points accept a ``budget=`` parameter that additionally turns
exhaustion into a graceful UNKNOWN verdict instead of an exception.
Solver faults degrade along the chain of
:mod:`repro.runtime.fallback`: each LP of the fixpoint retries on the
Fourier–Motzkin backend, and if the fixpoint run still faults the
whole query falls back to the naive engine — provided the system has
at most ``naive_limit`` class unknowns (the naive engine enumerates
``2^n`` zero-sets).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.analyzer import analyze
from repro.analysis.diagnostics import Diagnostic
from repro.cr.expansion import Expansion, ExpansionLimits
from repro.cr.schema import CRSchema
from repro.cr.system import CRSystem, build_system
from repro.errors import (
    BudgetExceededError,
    ReproError,
    SolverError,
)
from repro.pipeline import (
    STAGE_BUILD_SYSTEM,
    STAGE_EXPAND,
    STAGE_SOLVE,
    STAGE_VERDICT,
    stage,
)
from repro.runtime.budget import (
    Budget,
    ProgressSnapshot,
    run_governed,
)
from repro.runtime.fallback import (
    DEFAULT_FALLBACK,
    FallbackPolicy,
    chain_for,
)
from repro.runtime.outcome import Verdict
from repro.solver.homogeneous import integerize
from repro.solver.registry import (
    DEFAULT_NAIVE_LIMIT,
    AcceptabilityProblem,
    active_backend_name,
    fixpoint_support,
    get_backend,
)


@dataclass(frozen=True)
class SatisfiabilityResult:
    """Outcome of a class-satisfiability check.

    ``verdict`` is the three-valued answer: ``SAT``, ``UNSAT``, or —
    only when the caller supplied a budget that ran out — ``UNKNOWN``,
    in which case ``unknown_reason`` explains why and ``snapshot``
    records how far the computation got.  ``satisfiable`` stays the
    two-valued view (UNKNOWN reads as ``False``, conservatively).

    ``solution`` is an acceptable non-negative *integer* solution of
    ``Ψ'_S`` when satisfiable (the paper's Figure 6 object), from which
    :func:`repro.cr.construction.construct_model` builds an explicit
    finite model.  ``support`` is the set of unknowns the witness makes
    positive.  On an UNKNOWN verdict ``cr_system`` may be ``None`` (the
    budget can run out before the system is even built).

    ``diagnostic`` is set when the verdict was served by the static
    analyzer's precheck (engine :data:`ANALYSIS_ENGINE`): the
    ``error``-level :class:`repro.analysis.Diagnostic` whose witness
    proves the class empty in every model — no expansion was built, so
    ``cr_system``/``solution`` are ``None``.
    """

    cls: str
    satisfiable: bool
    engine: str
    cr_system: CRSystem | None
    solution: dict[str, int] | None
    support: frozenset[str] | None
    verdict: Verdict | None = None
    unknown_reason: str | None = None
    snapshot: ProgressSnapshot | None = None
    diagnostic: Diagnostic | None = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            object.__setattr__(
                self, "verdict", Verdict.from_bool(self.satisfiable)
            )

    def witness_count(self, unknown: str) -> int:
        """Convenience accessor into the witness solution."""
        if self.solution is None:
            raise ReproError("no witness: the class is unsatisfiable")
        return self.solution.get(unknown, 0)


ANALYSIS_ENGINE = "analysis"
"""Engine tag on results short-circuited by the static analyzer."""


def diagnostic_result(cls: str, diagnostic: Diagnostic) -> SatisfiabilityResult:
    """An UNSAT verdict served from a static-analysis error diagnostic.

    Sound by the witness contract of :mod:`repro.analysis`: the carried
    witness proves ``cls`` empty in every model, so the Theorem-3.3
    procedure would answer UNSAT too — without us paying for the
    expansion (``cr_system`` stays ``None``).
    """
    return SatisfiabilityResult(
        cls=cls,
        satisfiable=False,
        engine=ANALYSIS_ENGINE,
        cr_system=None,
        solution=None,
        support=frozenset(),
        diagnostic=diagnostic,
    )


def _unknown_result(
    cls: str, engine: str, error: BudgetExceededError
) -> SatisfiabilityResult:
    snapshot = error.snapshot
    return SatisfiabilityResult(
        cls=cls,
        satisfiable=False,
        engine=engine,
        cr_system=None,
        solution=None,
        support=None,
        verdict=Verdict.UNKNOWN,
        unknown_reason=str(error),
        snapshot=snapshot if isinstance(snapshot, ProgressSnapshot) else None,
    )


def is_acceptable(
    solution: Mapping[str, Fraction | int],
    dependencies: Mapping[str, tuple[str, ...]],
) -> bool:
    """Section 3.3's acceptability condition on a solution.

    Every relationship unknown depending (via some role) on a class
    unknown valued 0 must be 0.
    """
    for rel_unknown, class_unknowns in dependencies.items():
        if solution.get(rel_unknown, 0) == 0:
            continue
        if any(solution.get(c, 0) == 0 for c in class_unknowns):
            return False
    return True


def class_targets(cr_system: CRSystem, cls: str) -> frozenset[str]:
    """Theorem 3.3 targets: unknowns of the consistent compound classes
    containing ``cls``.

    ``cls`` is satisfiable exactly when some acceptable solution makes
    one of these unknowns positive — equivalently, when the set meets
    the maximal acceptable support.  Shared by the satisfiability entry
    points here and the cached :class:`repro.session.ReasoningSession`.
    """
    expansion = cr_system.expansion
    return frozenset(
        cr_system.class_var[compound]
        for compound in expansion.consistent_classes_containing(cls)
    )


def support_verdicts(
    cr_system: CRSystem, support: frozenset[str]
) -> dict[str, bool]:
    """Per-class verdicts read off a maximal acceptable support.

    The support settles every class at once (module docstring): a class
    is satisfiable iff its Theorem-3.3 target set meets the support.
    """
    return {
        cls: bool(class_targets(cr_system, cls) & support)
        for cls in cr_system.expansion.schema.classes
    }


# ---------------------------------------------------------------------------
# Fixpoint engine
# ---------------------------------------------------------------------------


def _fixpoint_problem(
    cr_system: CRSystem, targets: frozenset[str] = frozenset()
) -> AcceptabilityProblem:
    """The interned Theorem-3.3 decision input for the fixpoint engine.

    Probing only the class unknowns suffices: the fixpoint forces out
    every relationship unknown that depends on an unreachable class,
    and at the fixpoint the witness is positive on every reachable
    class unknown, which makes it acceptable regardless of which
    relationship unknowns it happens to use.  Fewer probes mean a much
    smaller LP (one shadow variable and two rows per probe).
    """
    return AcceptabilityProblem(
        system=cr_system.interned,
        class_unknowns=tuple(cr_system.class_var.values()),
        dependencies=cr_system.dependencies,
        targets=targets,
    )


def _naive_problem(
    cr_system: CRSystem, targets: frozenset[str]
) -> AcceptabilityProblem:
    """The decision input for the naive engine, whose zero-set universe
    is the *consistent* class unknowns."""
    return AcceptabilityProblem(
        system=cr_system.interned,
        class_unknowns=cr_system.consistent_class_unknowns(),
        dependencies=cr_system.dependencies,
        targets=targets,
    )


def decision_problem(
    cr_system: CRSystem, targets: frozenset[str]
) -> AcceptabilityProblem:
    """Public form of the Theorem-3.4 decision input (zero-set universe
    = the consistent class unknowns) for callers outside the engine
    dispatch: ``repro explain --nogoods``, benchmarks, and tests that
    drive :func:`repro.solver.pruned.pruned_zero_set_search` directly."""
    return _naive_problem(cr_system, targets)


def _resolve_engine(engine: str) -> str:
    """Honour a pinned decision procedure: pinning ``naive`` or
    ``pruned`` via ``--backend`` / ``REPRO_BACKEND`` switches the
    engine, since neither is an LP backend the fixpoint could run on
    (both declare ``capabilities.exponential``)."""
    if engine == "fixpoint":
        active = active_backend_name()
        if get_backend(active).capabilities.exponential:
            return active
    return engine


def acceptable_support(
    cr_system: CRSystem,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
) -> tuple[frozenset[str], dict[str, Fraction]]:
    """Maximal support over all *acceptable* solutions, with a witness.

    The witness is a single acceptable solution positive on exactly the
    returned support.  See the module docstring for why the fixpoint is
    sound and complete.  Each support LP runs on the policy's backend
    chain (:func:`repro.runtime.fallback.chain_for` — the active
    primary backend with Fourier–Motzkin retry by default); the ambient
    budget is checked once per fixpoint iteration on top of the
    per-pivot charges inside the solvers.
    """
    support, solution = fixpoint_support(
        _fixpoint_problem(cr_system), chain_for(fallback)
    )
    assert is_acceptable(solution, cr_system.dependencies)
    return support, solution


def acceptable_with_positive(
    cr_system: CRSystem,
    targets: frozenset[str],
    engine: str = "fixpoint",
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """Is there an acceptable solution making some ``targets`` unknown positive?

    This is the common core of Theorem 3.3 (``targets`` = unknowns of
    the compound classes containing the queried class) and of the
    Section-4 implication checks (``targets`` = unknowns of the
    counterexample compound classes).  Returns
    ``(found, integer_witness, support)``.

    With a ``fallback`` policy, a fixpoint run whose solver faults even
    after per-LP down-chain retries falls back to the naive engine —
    but only when the system has at most ``naive_limit`` class
    unknowns; otherwise the original fault propagates.  Budget
    exhaustion is never absorbed by the chain.

    ``jobs > 1`` parallelises the naive engine's zero-set enumeration
    (bit-identical results including the witness, see
    :mod:`repro.parallel.fanout`).  The fixpoint path ignores ``jobs``:
    its witness comes out of one shadow LP, and the parallel probe
    union — while provably the same *support* — would be a different
    (equally valid) solution, so the witness-returning path stays
    serial to remain the oracle.
    """
    engine = _resolve_engine(engine)
    if engine == "fixpoint":
        try:
            support, solution = acceptable_support(cr_system, fallback)
        except BudgetExceededError:
            raise
        except SolverError:
            if (
                fallback is None
                or not fallback.use_naive
                or len(cr_system.consistent_class_unknowns()) > naive_limit
            ):
                raise
            return _naive_with_positive(
                cr_system, targets, naive_limit, fallback, jobs
            )
        if not (targets & support):
            return False, None, support
        return True, integerize(solution), support
    if engine in ("naive", "pruned"):
        return _naive_with_positive(
            cr_system, targets, naive_limit, fallback, jobs, engine=engine
        )
    raise ReproError(f"unknown engine {engine!r}")


# ---------------------------------------------------------------------------
# Naive engine (Theorem 3.4 verbatim, provided by the registry)
# ---------------------------------------------------------------------------


def _naive_with_positive(
    cr_system: CRSystem,
    targets: frozenset[str],
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    jobs: int = 1,
    engine: str = "naive",
) -> tuple[bool, dict[str, int] | None, frozenset[str]]:
    """Run the registry's Theorem-3.4 decision procedure (``naive`` or
    ``pruned``); per-zero-set strict probes run on the policy's LP chain
    (the naivety is the enumeration strategy, not the arithmetic)."""
    return get_backend(engine).decide_acceptable(
        _naive_problem(cr_system, targets),
        chain=chain_for(fallback),
        naive_limit=naive_limit,
        jobs=jobs,
    )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def is_class_satisfiable(
    schema: CRSchema,
    cls: str,
    engine: str = "fixpoint",
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    precheck: bool = False,
    jobs: int = 1,
) -> SatisfiabilityResult:
    """Decide whether ``cls`` can be populated in some finite model.

    Parameters
    ----------
    schema:
        The CR-schema.
    cls:
        The class whose satisfiability is queried.
    engine:
        ``"fixpoint"`` (default), ``"naive"``, or ``"pruned"`` — see
        the module
        docstring.
    expansion:
        Optionally a precomputed expansion of ``schema`` (reused by the
        implication engine to amortise the exponential step).
    limits:
        Expansion guards; ignored when ``expansion`` is given.
    budget:
        A :class:`repro.runtime.Budget`.  When given, it governs the
        whole pipeline (expansion, system generation, solving) and the
        result degrades to an UNKNOWN verdict — instead of raising —
        if it runs out.  Without one, any *ambient* budget still
        applies but exhaustion propagates as
        :class:`~repro.errors.BudgetExceededError`.
    naive_limit:
        Cap on class unknowns for the naive engine (it enumerates
        ``2^n`` zero-sets); also bounds the fixpoint→naive fallback.
    fallback:
        Solver degradation policy (``None`` disables the chain).
    precheck:
        Run the polynomial-time static analyzer first and serve the
        verdict from an ``error`` diagnostic when one proves ``cls``
        empty — skipping the exponential expansion entirely.  Off by
        default so this function remains the analyzer-free oracle the
        differential soundness suite compares against.
    jobs:
        Worker processes for the naive engine's zero-set enumeration
        (:mod:`repro.parallel`); 1 (the default) stays serial, and the
        fixpoint engine always does — see
        :func:`acceptable_with_positive`.
    """
    schema.require_class(cls)
    engine = _resolve_engine(engine)

    def compute() -> SatisfiabilityResult:
        if precheck:
            diagnostic = analyze(schema).unsat_witness(cls)
            if diagnostic is not None:
                with stage(STAGE_VERDICT):
                    return diagnostic_result(cls, diagnostic)
        with stage(STAGE_EXPAND, phase="expansion"):
            local_expansion = expansion
            if local_expansion is None:
                local_expansion = Expansion(schema, limits)
        with stage(STAGE_BUILD_SYSTEM, phase="system"):
            cr_system = build_system(local_expansion, mode="pruned")
            targets = class_targets(cr_system, cls)
        with stage(STAGE_SOLVE, phase=f"decide:{engine}"):
            satisfiable, solution, support = acceptable_with_positive(
                cr_system, targets, engine, naive_limit, fallback, jobs
            )
        with stage(STAGE_VERDICT):
            return SatisfiabilityResult(
                cls=cls,
                satisfiable=satisfiable,
                engine=engine,
                cr_system=cr_system,
                solution=solution,
                support=support if satisfiable else frozenset(),
            )

    return run_governed(
        budget, compute, lambda error: _unknown_result(cls, engine, error)
    )


def satisfiable_classes(
    schema: CRSchema,
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
    naive_limit: int = DEFAULT_NAIVE_LIMIT,
    fallback: FallbackPolicy | None = DEFAULT_FALLBACK,
    precheck: bool = False,
    jobs: int = 1,
) -> dict[str, bool | Verdict]:
    """Satisfiability of every class with a single fixpoint run.

    The final acceptable support settles all classes at once: a class is
    satisfiable exactly when some consistent compound class containing
    it has a positive unknown in the support.

    Decided classes map to plain booleans.  When a caller-supplied
    ``budget`` runs out, every class maps to
    :data:`repro.runtime.Verdict.UNKNOWN` instead (which is falsy, so
    aggregate truthiness checks stay conservative).  A solver fault
    that survives the per-LP Fourier–Motzkin retries re-runs the whole
    question on the naive engine when the system is small enough.

    With ``precheck=True`` the static analyzer runs first; when it
    proves *every* class empty the whole table is served from the
    diagnostics and the expansion is skipped (a partial precheck cannot
    skip the expansion — the remaining classes need it — and by
    soundness the full run agrees on the statically-settled ones).

    ``jobs > 1`` fans each fixpoint iteration's per-class strict probes
    across worker processes (:mod:`repro.parallel`).  This sweep only
    reports verdicts — never a witness solution — so the probe-union
    support is observably identical to the serial shadow-LP support,
    and the verdict map is bit-identical at any job count.
    """

    def compute() -> dict[str, bool | Verdict]:
        if precheck:
            report = analyze(schema)
            if set(schema.classes) <= report.unsat_classes:
                with stage(STAGE_VERDICT):
                    return {cls: False for cls in schema.classes}
        with stage(STAGE_EXPAND, phase="expansion"):
            local_expansion = expansion
            if local_expansion is None:
                local_expansion = Expansion(schema, limits)
        with stage(STAGE_BUILD_SYSTEM, phase="system"):
            cr_system = build_system(local_expansion, mode="pruned")
        try:
            if jobs > 1:
                from repro.parallel.fanout import parallel_fixpoint_support

                with stage(STAGE_SOLVE, phase="decide:fixpoint"):
                    support = parallel_fixpoint_support(
                        _fixpoint_problem(cr_system),
                        chain_for(fallback),
                        jobs,
                    )
            else:
                with stage(STAGE_SOLVE, phase="decide:fixpoint"):
                    support, _solution = acceptable_support(
                        cr_system, fallback
                    )
        except BudgetExceededError:
            raise
        except SolverError:
            if (
                fallback is None
                or not fallback.use_naive
                or len(cr_system.consistent_class_unknowns()) > naive_limit
            ):
                raise
            with stage(STAGE_SOLVE, phase="decide:naive"):
                return {
                    cls: _naive_with_positive(
                        cr_system,
                        class_targets(cr_system, cls),
                        naive_limit,
                        fallback,
                        jobs,
                    )[0]
                    for cls in schema.classes
                }
        with stage(STAGE_VERDICT):
            return support_verdicts(cr_system, support)

    return run_governed(
        budget,
        compute,
        lambda error: {cls: Verdict.UNKNOWN for cls in schema.classes},
    )


def is_schema_fully_satisfiable(
    schema: CRSchema,
    expansion: Expansion | None = None,
    limits: ExpansionLimits | None = None,
    budget: Budget | None = None,
) -> bool:
    """Whether *every* class of the schema is satisfiable.

    The paper's notion of a well-formed design: no class is forced
    empty by the interaction of ISA and cardinality constraints (the
    pathology of Figure 1).  Under an exhausted ``budget`` the answer
    is conservatively ``False`` (UNKNOWN verdicts are falsy).
    """
    return all(satisfiable_classes(schema, expansion, limits, budget).values())
