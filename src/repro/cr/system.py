"""The system of linear disequations ``Ψ_S`` (Section 3.2 of the paper).

One unknown per compound class and per compound relationship; the
disequations encode, for every relationship role and every consistent
compound class containing the role's primary class, that the total
number of compound-relationship tuples carrying that compound class in
that role lies between ``minc · |C̄|`` and ``maxc · |C̄|``.

Two build modes:

* ``literal`` — reproduces the paper's Figure 5 exactly: unknowns for
  **all** compound classes and relationships, with explicit ``= 0``
  rows for the inconsistent ones.  Exponential in a second way (the
  inconsistent unknowns), so only sensible on small schemas; used by
  the figure-rendering layer and the literal tests.
* ``pruned`` (default) — unknowns only for consistent compounds.  The
  inconsistent unknowns are identically zero in every model, so the
  two modes have the same solutions on the shared unknowns; the
  satisfiability engines use this mode.

The generated system is homogeneous with integer coefficients
(the paper's observation at the end of Section 3.2), which the solver
layer exploits: rational feasibility equals integer feasibility.

The generator emits the *interned sparse form*
(:class:`repro.solver.core.InternedSystem`) directly — integer unknown
indices and native-``int`` coefficients, the representation the solver
backends consume.  The pretty string-keyed
:class:`~repro.solver.linear.LinearSystem` (Figure-5 unknown names like
``c3`` and ``h13``) is derived lazily via :attr:`CRSystem.system` and
exists only at the render/explain boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cr.expansion import CompoundClass, CompoundRelationship, Expansion
from repro.errors import ReproError
from repro.solver.core import Coeff, InternedSystem, VariableTable
from repro.solver.linear import Constraint, LinearSystem, LinExpr, Relation, term


def _relationship_prefixes(expansion: Expansion) -> dict[str, str]:
    """Short unknown prefixes per relationship, Figure-5 style.

    The paper abbreviates ``Holds`` to ``h`` and ``Participates`` to
    ``p``.  We use the lowercase initial when the initials are unique
    and none is ``c`` (reserved for class unknowns); otherwise the full
    lowercase relationship name.
    """
    names = [rel.name for rel in expansion.schema.relationships]
    initials = [name[0].lower() for name in names]
    if len(set(initials)) == len(initials) and "c" not in initials:
        return dict(zip(names, initials))
    return {name: f"{name.lower()}_" for name in names}


@dataclass
class CRSystem:
    """``Ψ_S`` together with the unknown ↔ compound bookkeeping.

    ``dependencies`` maps each relationship unknown to the class
    unknowns it *depends on* (Section 3.3): the unknowns of the compound
    classes appearing in its roles.  Acceptability of a solution —
    relationship unknowns vanish whenever a class unknown they depend on
    does — is phrased entirely in terms of this map.

    ``interned`` is the canonical sparse form the solver backends
    consume; :attr:`system` projects it to the string-keyed
    :class:`~repro.solver.linear.LinearSystem` on first access (the
    render/explain boundary — row order, labels, and origins are
    preserved, so Figure-5 output is byte-identical).
    """

    expansion: Expansion
    interned: InternedSystem
    mode: str
    class_var: dict[CompoundClass, str]
    rel_var: dict[CompoundRelationship, str]
    dependencies: dict[str, tuple[str, ...]]
    var_class: dict[str, CompoundClass] = field(init=False)
    var_rel: dict[str, CompoundRelationship] = field(init=False)
    _linear: LinearSystem | None = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.var_class = {name: cc for cc, name in self.class_var.items()}
        self.var_rel = {name: cr for cr, name in self.rel_var.items()}

    @property
    def system(self) -> LinearSystem:
        """The string-keyed ``Ψ_S`` (derived from ``interned`` on demand)."""
        if self._linear is None:
            self._linear = self.interned.to_linear()
        return self._linear

    # -- unknown inventories ------------------------------------------------

    def class_unknowns(self) -> tuple[str, ...]:
        return tuple(self.class_var.values())

    def relationship_unknowns(self) -> tuple[str, ...]:
        return tuple(self.rel_var.values())

    def consistent_class_unknowns(self) -> tuple[str, ...]:
        return tuple(
            name
            for compound, name in self.class_var.items()
            if self.expansion.is_consistent_class(compound)
        )

    # -- derived expressions (Theorem 3.3 / Section 4) -----------------------

    def class_population_expr(self, cls: str) -> LinExpr:
        """``Σ Var(C̄)`` over consistent compound classes containing ``cls``.

        This is the left-hand side of Theorem 3.3's side condition
        ``Σ_{C̄ ∋ C_s} Var(C̄) > 0`` (inconsistent compound classes are
        omitted — their unknowns are identically zero).
        """
        self.expansion.schema.require_class(cls)
        expr = LinExpr()
        for compound in self.expansion.consistent_classes_containing(cls):
            expr = expr + term(self.class_var[compound])
        return expr

    def class_positivity(self, cls: str) -> Constraint:
        """The Theorem-3.3 disequation ``Σ_{C̄ ∋ cls} Var(C̄) > 0``."""
        expr = self.class_population_expr(cls)
        if expr.is_constant():
            # No consistent compound class contains cls: the class is
            # trivially unsatisfiable; 0 > 0 encodes that faithfully.
            return Constraint(LinExpr(), Relation.GT, label=f"positivity:{cls}")
        return Constraint(expr, Relation.GT, label=f"positivity:{cls}")

    def isa_counterexample_positivity(self, sub: str, sup: str) -> Constraint:
        """``Σ Var(C̄) > 0`` over consistent ``C̄`` with ``sub ∈ C̄, sup ∉ C̄``.

        Section 4: ``S ⊨ sub ≼ sup`` iff ``Ψ_S`` extended with this
        disequation admits no acceptable solution.
        """
        self.expansion.schema.require_class(sub)
        self.expansion.schema.require_class(sup)
        expr = LinExpr()
        for compound in self.expansion.consistent_classes_containing(sub):
            if sup not in compound.members:
                expr = expr + term(self.class_var[compound])
        return Constraint(expr, Relation.GT, label=f"not-isa:{sub}:{sup}")

    def joint_population_expr(self, classes: tuple[str, ...]) -> LinExpr:
        """``Σ Var(C̄)`` over consistent compound classes containing all of
        ``classes`` — used for disjointness implication."""
        expr = LinExpr()
        for compound in self.expansion.consistent_compound_classes():
            if all(cls in compound.members for cls in classes):
                expr = expr + term(self.class_var[compound])
        return expr


def build_system(expansion: Expansion, mode: str = "pruned") -> CRSystem:
    """Generate ``Ψ_S`` from an expansion.

    ``mode`` is ``"pruned"`` (consistent unknowns only; used for
    solving) or ``"literal"`` (all unknowns plus explicit ``= 0`` rows,
    matching Figure 5 of the paper).
    """
    if mode not in ("pruned", "literal"):
        raise ReproError(f"unknown system mode {mode!r}")
    schema = expansion.schema
    prefixes = _relationship_prefixes(expansion)

    if mode == "literal":
        compound_classes = list(expansion.all_compound_classes())
        compound_relationships = list(expansion.all_compound_relationships())
    else:
        compound_classes = list(expansion.consistent_compound_classes())
        compound_relationships = list(
            expansion.consistent_compound_relationships()
        )

    compact = all(
        expansion.class_index(compound) <= 9 for compound in compound_classes
    )

    def class_name(compound: CompoundClass) -> str:
        return f"c{expansion.class_index(compound)}"

    def rel_name(compound: CompoundRelationship) -> str:
        prefix = prefixes[compound.rel]
        indices = [
            expansion.class_index(component)
            for _, component in compound.signature
        ]
        if compact and not prefix.endswith("_"):
            return prefix + "".join(str(index) for index in indices)
        body = "_".join(str(index) for index in indices)
        joiner = "" if prefix.endswith("_") else "_"
        return f"{prefix}{joiner}{body}"

    class_var = {compound: class_name(compound) for compound in compound_classes}
    rel_var = {
        compound: rel_name(compound) for compound in compound_relationships
    }
    all_names = list(class_var.values()) + list(rel_var.values())
    if len(set(all_names)) != len(all_names):  # pragma: no cover - defensive
        raise ReproError("internal error: unknown names collide")

    table = VariableTable(all_names)
    interned = InternedSystem(table)
    class_index = {
        compound: table.index(name) for compound, name in class_var.items()
    }
    rel_index = {
        compound: table.index(name) for compound, name in rel_var.items()
    }

    # Group 1 (literal mode only): inconsistent unknowns are zero.
    if mode == "literal":
        for compound in compound_classes:
            if not expansion.is_consistent_class(compound):
                interned.add(
                    {class_index[compound]: 1},
                    Relation.EQ,
                    label=f"zero-class:{class_var[compound]}",
                    origin=compound,
                )
        for compound in compound_relationships:
            if not expansion.is_consistent_relationship(compound):
                interned.add(
                    {rel_index[compound]: 1},
                    Relation.EQ,
                    label=f"zero-rel:{rel_var[compound]}",
                    origin=compound,
                )

    # Index the consistent compound relationships by (rel, role, compound
    # class) for the sums of group 2.
    tuples_with_component: dict[tuple[str, str, CompoundClass], list[int]] = {}
    for compound in expansion.consistent_compound_relationships():
        for role, component in compound.signature:
            key = (compound.rel, role, component)
            tuples_with_component.setdefault(key, []).append(
                rel_index[compound]
            )

    # Group 2: lifted cardinality disequations —
    # ``minc·Var(C̄) − Σ tuples ≤ 0`` and ``maxc·Var(C̄) − Σ tuples ≥ 0``.
    for rel in schema.relationships:
        for role, _primary in rel.signature:
            for compound in expansion.consistent_compound_classes():
                if rel.primary_class(role) not in compound.members:
                    continue
                lifted = expansion.lifted_card(compound, rel.name, role)
                columns = tuples_with_component.get(
                    (rel.name, role, compound), []
                )
                index = expansion.class_index(compound)
                if lifted.minc > 0:
                    entries: dict[int, Coeff] = {
                        class_index[compound]: lifted.minc
                    }
                    for column in columns:
                        entries[column] = entries.get(column, 0) - 1
                    interned.add(
                        entries,
                        Relation.LE,
                        label=f"min:{rel.name}:{role}:{index}",
                        origin=(compound, rel.name, role, lifted),
                    )
                if lifted.maxc is not None:
                    entries = {class_index[compound]: lifted.maxc}
                    for column in columns:
                        entries[column] = entries.get(column, 0) - 1
                    interned.add(
                        entries,
                        Relation.GE,
                        label=f"max:{rel.name}:{role}:{index}",
                        origin=(compound, rel.name, role, lifted),
                    )

    # Group 3: non-negativity of the consistent unknowns.  (In literal
    # mode the inconsistent ones are already pinned to zero.)
    for compound in compound_classes:
        if expansion.is_consistent_class(compound):
            interned.add(
                {class_index[compound]: 1},
                Relation.GE,
                label=f"nonneg:{class_var[compound]}",
            )
    for compound in compound_relationships:
        if expansion.is_consistent_relationship(compound):
            interned.add(
                {rel_index[compound]: 1},
                Relation.GE,
                label=f"nonneg:{rel_var[compound]}",
            )

    dependencies = {
        rel_var[compound]: tuple(
            class_var[component] for _, component in compound.signature
        )
        for compound in compound_relationships
        if expansion.is_consistent_relationship(compound)
    }

    return CRSystem(
        expansion=expansion,
        interned=interned,
        mode=mode,
        class_var=class_var,
        rel_var=rel_var,
        dependencies=dependencies,
    )
