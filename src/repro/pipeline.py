"""The staged pipeline IR: Normalize → Decompose → Analyze → Expand → BuildSystem → Solve → Verdict → Combine.

Every decision procedure in the library runs the same conceptual
pipeline:

==============  ==========================================================
``normalize``   parse / validate the input schema (the CLI's DSL front
                door; programmatic callers usually arrive normalized)
``decompose``   split the schema along its constraint-graph islands
                (:mod:`repro.components`); the stages below then run
                once per touched component instead of once per schema
``analyze``     the polynomial-time static battery (:mod:`repro.analysis`);
                an ``error`` diagnostic short-circuits everything below
``expand``      the Section-3.1 expansion ``S̄`` (the exponential step)
``build-system``  generate the interned disequation system ``Ψ_S``
``solve``       the acceptability fixpoint / naive enumeration — all LP
                work lives here
``verdict``     read the answer off the support, build witnesses and
                counter-models
``combine``     fold per-component verdicts into the whole-schema
                answer (and build merged sub-schemas for queries whose
                classes span islands); skipped for single-island schemas
==============  ==========================================================

Historically each layer marked progress by mutating the ambient
:class:`~repro.runtime.budget.Budget`'s ``phase`` string directly.
This module reifies the stage structure into a small IR so that the
structure is *observable*, not just advisory:

:func:`stage`
    A context manager entered around each pipeline step.  It (a)
    records the budget phase label — preserving the historical label
    vocabulary (``"expansion"``, ``"system"``, ``"decide:fixpoint"``,
    ``"session:fixpoint"``, ...) so budget snapshots and their tests
    are unchanged — and (b) charges wall-clock time to the ambient
    :class:`PipelineRun`, if one is active.

:class:`PipelineRun`
    Per-run accounting: for each canonical stage, how many times it ran
    and how much wall-clock it consumed.  Installed ambiently
    (:func:`activate_run`) exactly like budgets, so the deep layers
    need no signature changes; ``repro batch --stats`` activates one
    around the whole batch and prints the per-stage table.

A ``stage`` without an active run and without an ambient budget is a
few attribute reads — the hot paths stay hot.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.runtime.budget import current_budget

STAGE_NORMALIZE = "normalize"
STAGE_DECOMPOSE = "decompose"
STAGE_ANALYZE = "analyze"
STAGE_EXPAND = "expand"
STAGE_BUILD_SYSTEM = "build-system"
STAGE_SOLVE = "solve"
STAGE_VERDICT = "verdict"
STAGE_COMBINE = "combine"

CANONICAL_STAGES: tuple[str, ...] = (
    STAGE_NORMALIZE,
    STAGE_DECOMPOSE,
    STAGE_ANALYZE,
    STAGE_EXPAND,
    STAGE_BUILD_SYSTEM,
    STAGE_SOLVE,
    STAGE_VERDICT,
    STAGE_COMBINE,
)
"""Pipeline order; :meth:`PipelineRun.as_dict` reports in this order."""


@dataclass
class StageTiming:
    """Accumulated cost of one stage across a run.

    ``runs`` counts completed *entries* of the stage (a satisfiability
    query and a later implication query each enter ``solve`` once;
    a fixpoint→naive degradation enters it twice — honestly counted).
    """

    name: str
    runs: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {"runs": self.runs, "seconds": self.seconds}


class PipelineRun:
    """Wall-clock accounting for the stages executed under one run.

    Install with :func:`activate_run`; read with :meth:`as_dict` /
    :meth:`pretty`.  The clock is injectable
    (:func:`time.perf_counter` by default) so tests can make timings
    deterministic.  Like budgets, runs are thread-compatible rather
    than thread-safe.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.stages: dict[str, StageTiming] = {}

    def record(self, name: str, seconds: float) -> None:
        timing = self.stages.get(name)
        if timing is None:
            timing = self.stages[name] = StageTiming(name)
        timing.runs += 1
        timing.seconds += seconds

    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.stages.values())

    def merge(self, stages: dict[str, dict[str, float | int]]) -> None:
        """Fold another run's :meth:`as_dict` export into this one.

        The parallel execution layer runs stages inside worker
        processes, each under its own :class:`PipelineRun`; the parent
        merges the workers' exported timings here so ``batch --stats``
        reports the work actually performed rather than the parent's
        time spent *waiting* on the pool (which belongs to no stage and
        would double-count every overlapping worker).
        """
        for name, timing in stages.items():
            entry = self.stages.get(name)
            if entry is None:
                entry = self.stages[name] = StageTiming(name)
            entry.runs += int(timing.get("runs", 0))
            entry.seconds += float(timing.get("seconds", 0.0))

    def _ordered(self) -> list[StageTiming]:
        canonical = [
            self.stages[name]
            for name in CANONICAL_STAGES
            if name in self.stages
        ]
        extra = [
            timing
            for name, timing in self.stages.items()
            if name not in CANONICAL_STAGES
        ]
        return canonical + extra

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """Stage → ``{"runs": n, "seconds": s}``, in pipeline order."""
        return {timing.name: timing.as_dict() for timing in self._ordered()}

    def pretty(self) -> str:
        """One line per stage: ``solve: 3 run(s), 12.4ms``."""
        if not self.stages:
            return "(no stages ran)"
        return "\n".join(
            f"{timing.name}: {timing.runs} run(s), "
            f"{timing.seconds * 1000.0:.1f}ms"
            for timing in self._ordered()
        )

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{timing.name}×{timing.runs}" for timing in self._ordered()
        )
        return f"PipelineRun({summary or 'empty'})"


_ACTIVE_RUN: ContextVar[PipelineRun | None] = ContextVar(
    "repro_pipeline_run", default=None
)


def current_run() -> PipelineRun | None:
    """The pipeline run collecting stage timings, or ``None``."""
    return _ACTIVE_RUN.get()


@contextmanager
def activate_run(run: PipelineRun | None) -> Iterator[PipelineRun | None]:
    """Install ``run`` as the ambient stage-timing collector.

    ``activate_run(None)`` is a no-op (an enclosing run, if any, keeps
    collecting); nested activations shadow the outer run.
    """
    if run is None:
        yield None
        return
    token = _ACTIVE_RUN.set(run)
    try:
        yield run
    finally:
        _ACTIVE_RUN.reset(token)


@contextmanager
def stage(name: str, phase: str | None = None) -> Iterator[None]:
    """Execute a block as one pipeline stage.

    ``name`` is the canonical stage charged on the ambient
    :class:`PipelineRun`.  ``phase`` is the budget phase label recorded
    for the block on the ambient :class:`~repro.runtime.budget.Budget`
    — entering runs a full budget check, exactly like
    :func:`~repro.runtime.budget.scoped_phase`, and the previous label
    is restored on exit.  ``phase=None`` means timing only (the stage
    does no budget-visible work of its own, e.g. ``verdict``).

    Timing is charged even when the block raises (a stage that dies of
    budget exhaustion still consumed its wall-clock), but not when the
    budget check at entry refuses the stage.
    """
    budget = current_budget()
    previous_phase: str | None = None
    if budget is not None and phase is not None:
        previous_phase = budget.phase
        budget.enter_phase(phase)
    run = current_run()
    started = run.clock() if run is not None else 0.0
    try:
        yield
    finally:
        if run is not None:
            run.record(name, run.clock() - started)
        if budget is not None and phase is not None:
            budget.phase = previous_phase


__all__ = [
    "CANONICAL_STAGES",
    "PipelineRun",
    "STAGE_ANALYZE",
    "STAGE_BUILD_SYSTEM",
    "STAGE_COMBINE",
    "STAGE_DECOMPOSE",
    "STAGE_EXPAND",
    "STAGE_NORMALIZE",
    "STAGE_SOLVE",
    "STAGE_VERDICT",
    "StageTiming",
    "activate_run",
    "current_run",
    "stage",
]
