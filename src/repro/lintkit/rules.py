"""Rule registry for the repo contract checker.

A :class:`Rule` couples a stable id (``R1`` … ``R12``) with the scope
it patrols and a check callable.  Two kinds exist:

* **module rules** (``check_module(module) -> findings``) — pure AST
  pattern rules; the registry applies the scope filter and exemptions
  before calling them.  R1–R7, migrated byte-for-byte from
  ``tools/check_invariants.py``, are module rules.
* **project rules** (``check_project(project) -> findings``) — the
  dataflow detectors that need the call graph; they receive the whole
  :class:`~repro.lintkit.loader.Project` and self-scope, because one
  rule may treat different packages differently.

:func:`run_rules` executes a rule subset over a project and returns
findings in canonical order.  Importing this module pulls in the rule
modules so the registry is always fully populated.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ReproError
from repro.lintkit.findings import Finding, sort_findings
from repro.lintkit.loader import Project
from repro.lintkit.model import ModuleModel

ModuleCheck = Callable[[ModuleModel], list[Finding]]
ProjectCheck = Callable[[Project], list[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered contract rule."""

    rule_id: str
    title: str
    contract: str
    scope: tuple[str, ...]
    exempt: tuple[str, ...] = ()
    check_module: ModuleCheck | None = None
    check_project: ProjectCheck | None = None

    @property
    def is_project_rule(self) -> bool:
        return self.check_project is not None

    def run(self, project: Project) -> list[Finding]:
        if self.check_project is not None:
            return self.check_project(project)
        assert self.check_module is not None
        findings: list[Finding] = []
        for module in project.modules_in_scope(self.scope, self.exempt):
            findings.extend(self.check_module(module))
        return findings


RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.rule_id in RULES:
        raise ReproError(f"duplicate lint rule id {rule.rule_id!r}")
    RULES[rule.rule_id] = rule
    return rule


def all_rule_ids() -> tuple[str, ...]:
    _ensure_loaded()
    return tuple(sorted(RULES, key=_rule_order))


def _rule_order(rule_id: str) -> tuple[int, str]:
    digits = "".join(ch for ch in rule_id if ch.isdigit())
    return (int(digits) if digits else 0, rule_id)


def _ensure_loaded() -> None:
    # Importing the rule modules populates the registry exactly once.
    from repro.lintkit import astrules, dataflow  # noqa: F401


def run_rules(
    project: Project, rule_ids: tuple[str, ...] | None = None
) -> list[Finding]:
    """Run ``rule_ids`` (default: every rule) over ``project``."""
    _ensure_loaded()
    selected = rule_ids if rule_ids is not None else all_rule_ids()
    findings: list[Finding] = []
    for rule_id in selected:
        rule = RULES.get(rule_id)
        if rule is None:
            raise ReproError(f"unknown lint rule id {rule_id!r}")
        findings.extend(rule.run(project))
    return sort_findings(findings)
