"""repro.lintkit — dataflow-aware static analysis of the repo itself.

The package turns the repo's hand-enforced contracts (exact rational
arithmetic, budget-governed termination, deterministic fan-out,
crash-safe persistence, lock-disciplined serving) into machine-checked
rules over a shared analysis core:

* :mod:`repro.lintkit.model` — per-module AST models (scopes, call
  sites, writes, lock regions, unbounded loops);
* :mod:`repro.lintkit.loader` — project discovery, order-independent;
* :mod:`repro.lintkit.callgraph` — call graph + worklist-fixpoint
  function summaries and deterministic witness chains;
* :mod:`repro.lintkit.rules` — the rule registry (R1–R12);
* :mod:`repro.lintkit.astrules` / :mod:`repro.lintkit.dataflow` — the
  migrated pattern rules and the new dataflow detectors;
* :mod:`repro.lintkit.baseline` / :mod:`repro.lintkit.runner` — the
  "no new findings" gate behind ``repro lint --repo``;
* :mod:`repro.lintkit.compat` — the byte-compatible API of the
  retired ``tools/check_invariants.py``.
"""

from repro.lintkit.baseline import Baseline, Suppression
from repro.lintkit.findings import Finding, sort_findings
from repro.lintkit.loader import (
    Project,
    default_src_root,
    iter_project_files,
    load_project,
)
from repro.lintkit.rules import RULES, all_rule_ids, run_rules
from repro.lintkit.runner import (
    RepoLintReport,
    default_baseline_path,
    lint_repo,
)

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "RULES",
    "RepoLintReport",
    "Suppression",
    "all_rule_ids",
    "default_baseline_path",
    "default_src_root",
    "iter_project_files",
    "lint_repo",
    "load_project",
    "run_rules",
    "sort_findings",
]
