"""Byte-compatible API of the retired ``tools/check_invariants.py``.

The historical single-file walker exposed four entry points that unit
tests and CI invoke directly; the shim left behind at
``tools/check_invariants.py`` forwards them here.  Diagnostics are
byte-identical — same rule ids, messages, line anchors, scoping, and
``(path, line, rule)`` sort — only the implementation moved onto the
lintkit registry, which upgrades R2 from the same-scope name heuristic
to transitive budget-charge reachability (a strictly more permissive
check: every loop the old rule accepted is still accepted).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

from repro.lintkit.astrules import (
    COMPONENT_MODULES,
    EXACT_KERNEL,
    KERNEL_MODULES,
    PARALLEL_MODULES,
    STORE_MODULES,
)
from repro.lintkit.loader import Project, default_src_root
from repro.lintkit.model import build_module
from repro.lintkit.rules import run_rules

COMPAT_RULE_IDS = ("R1", "R2", "R3", "R4", "R5", "R6", "R7")
"""The rules the historical script enforced (and the shim still runs).
The dataflow-only rules R8–R12 are ``repro lint --repo`` territory."""


@dataclass(frozen=True)
class Violation:
    """One invariant breach, formatted ``file:line: RULE message``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def check_source(source: str, relative_path: str) -> list[Violation]:
    """Lint one module's source against every compat rule whose scope
    covers ``relative_path`` (relative to ``src/``)."""
    module = build_module(source, relative_path)
    project = Project([module])
    findings = run_rules(project, COMPAT_RULE_IDS)
    violations = [
        Violation(
            path=finding.path,
            line=finding.line,
            rule=finding.rule,
            message=finding.message,
        )
        for finding in findings
    ]
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def check_file(
    path: Path, src_root: Path | None = None
) -> list[Violation]:
    root = src_root if src_root is not None else default_src_root()
    relative = path.resolve().relative_to(root.resolve()).as_posix()
    return check_source(path.read_text(), relative)


def iter_checked_files(src_root: Path | None = None) -> list[Path]:
    """Every file a compat rule applies to, sorted for stable output."""
    root = src_root if src_root is not None else default_src_root()
    scoped: set[Path] = set()
    for entry in (
        EXACT_KERNEL
        + KERNEL_MODULES
        + PARALLEL_MODULES
        + STORE_MODULES
        + COMPONENT_MODULES
    ):
        target = root / entry
        if target.is_file():
            scoped.add(target)
        elif target.is_dir():
            scoped.update(target.rglob("*.py"))
    return sorted(scoped)


def main(argv: list[str] | None = None) -> int:
    """CLI of the historical script, output-compatible."""
    paths = [Path(arg) for arg in (argv or [])] or iter_checked_files()
    violations: list[Violation] = []
    for path in paths:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation.render(), file=sys.stderr)
    if violations:
        print(
            f"check_invariants: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_invariants: {len(paths)} file(s) clean")
    return 0
