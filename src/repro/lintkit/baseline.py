"""Baseline suppressions: the "no *new* findings" gate.

The checked-in baseline (``tools/lint_baseline.json``) lists findings
that are understood and accepted, each with a mandatory human
justification.  A suppression matches on ``(rule, path, scope)`` —
deliberately *not* on line number, so unrelated edits to a file do not
invalidate it — and covers every finding of that rule inside that
definition.

The gate semantics:

* a finding with a matching suppression is *baselined* — reported in
  JSON for transparency, but it does not fail the run;
* a finding without one is *new* — the run fails;
* a suppression matching no finding is *stale* — reported so the
  baseline shrinks as code improves (and fails the run under
  ``--strict``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.lintkit.findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One justified, accepted finding."""

    rule: str
    path: str
    scope: str
    justification: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.scope)

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "scope": self.scope,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class Baseline:
    """The loaded suppression set."""

    suppressions: tuple[Suppression, ...] = ()

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Load a baseline file; a missing file is an empty baseline
        (every finding counts as new)."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"unreadable lint baseline {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("suppressions"), list
        ):
            raise ReproError(
                f"lint baseline {path} must be an object with a "
                "'suppressions' list"
            )
        suppressions = []
        for index, entry in enumerate(payload["suppressions"]):
            if not isinstance(entry, dict):
                raise ReproError(
                    f"lint baseline {path}: suppression #{index} is "
                    "not an object"
                )
            missing = [
                field
                for field in ("rule", "path", "scope", "justification")
                if not str(entry.get(field, "")).strip()
            ]
            if missing:
                raise ReproError(
                    f"lint baseline {path}: suppression #{index} is "
                    f"missing {', '.join(missing)} — every accepted "
                    "finding needs a justification"
                )
            suppressions.append(
                Suppression(
                    rule=str(entry["rule"]),
                    path=str(entry["path"]),
                    scope=str(entry["scope"]),
                    justification=str(entry["justification"]),
                )
            )
        return cls(suppressions=tuple(suppressions))

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[Suppression]]:
        """Partition into (new, baselined, stale suppressions)."""
        by_key: dict[tuple[str, str, str], Suppression] = {}
        for suppression in self.suppressions:
            by_key[suppression.key()] = suppression
        used: set[tuple[str, str, str]] = set()
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.suppression_key()
            if key in by_key:
                used.add(key)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [s for s in self.suppressions if s.key() not in used]
        return new, baselined, stale
