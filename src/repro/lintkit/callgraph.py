"""Call graph with per-function summaries via a worklist fixpoint.

Resolution is a deliberate *may* over-approximation, tuned for the
dataflow rules rather than for completeness:

* ``name(...)`` resolves through the module's own definitions and its
  import alias table (``from repro.x import y``);
* ``ClassName(...)`` resolves to ``ClassName.__init__`` when defined;
* ``self.m(...)`` and ``super().m(...)`` resolve through the class
  hierarchy (bases resolved through imports across modules);
* any other ``obj.m(...)`` falls back to class-hierarchy analysis:
  every in-project *method* named ``m`` is a candidate target, unless
  ``m`` is a ubiquitous container/stdlib method name (the blocklist)
  — those would connect everything to everything.

Summaries are boolean facts closed under "calls a function that has
the fact" (:meth:`CallGraph.can_reach`, a reverse-edge worklist), and
witness chains come from a deterministic forward BFS over sorted
adjacency (:meth:`CallGraph.witness_chain`), so diagnostics are
stable under module discovery order.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from repro.lintkit.loader import Project
from repro.lintkit.model import CallSite, ClassInfo, FunctionInfo

CHA_BLOCKLIST = frozenset(
    {
        "acquire",
        "add",
        "append",
        "as_posix",
        "cancel",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "done",
        "encode",
        "endswith",
        "exists",
        "extend",
        "flush",
        "format",
        "get",
        "group",
        "groups",
        "index",
        "insert",
        "isoformat",
        "items",
        "join",
        "keys",
        "locked",
        "lower",
        "lstrip",
        "match",
        "mkdir",
        "move_to_end",
        "name",
        "open",
        "pop",
        "popitem",
        "put",
        "read",
        "recv",
        "release",
        "remove",
        "replace",
        "resolve",
        "result",
        "reverse",
        "rstrip",
        "run",
        "running",
        "search",
        "send",
        "set",
        "setdefault",
        "sort",
        "split",
        "start",
        "startswith",
        "stop",
        "strip",
        "submit",
        "unlink",
        "update",
        "upper",
        "values",
        "wait",
        "write",
    }
)
"""Method names too common to resolve by name alone — class-hierarchy
analysis on these would wire unrelated layers together."""


class CallGraph:
    """Edges and summaries over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._methods_by_name: dict[str, tuple[str, ...]] = {}
        for module in project.modules:
            for cls in module.classes.values():
                for method, qualname in cls.methods.items():
                    bucket = self._methods_by_name.setdefault(method, ())
                    self._methods_by_name[method] = bucket + (qualname,)
        for method, bucket in self._methods_by_name.items():
            self._methods_by_name[method] = tuple(sorted(bucket))
        # edges[f] = [(call_site, (sorted targets...)), ...]
        self.edges: dict[str, list[tuple[CallSite, tuple[str, ...]]]] = {}
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            module = project.modules_by_name[func.modname]
            resolved = []
            for call in func.calls:
                targets = self.resolve(module, func, call)
                if targets:
                    resolved.append((call, targets))
            self.edges[qualname] = resolved
        self._reverse: dict[str, tuple[str, ...]] = {}
        reverse: dict[str, set[str]] = {}
        for caller, resolved in self.edges.items():
            for _, targets in resolved:
                for target in targets:
                    reverse.setdefault(target, set()).add(caller)
        for target, callers in reverse.items():
            self._reverse[target] = tuple(sorted(callers))

    # -- resolution -------------------------------------------------

    def call_targets(self, qualname: str) -> dict[int, tuple[str, ...]]:
        """``id(call_site) -> resolved targets`` for one function."""
        return {
            id(call): targets
            for call, targets in self.edges.get(qualname, ())
        }

    def class_chain(self, cls: ClassInfo) -> list[ClassInfo]:
        """``cls`` plus its in-project bases, breadth-first."""
        module = self.project.modules_by_name.get(
            cls.qualname.rsplit(".", 1)[0]
        )
        chain = [cls]
        queue = deque([(cls, module)])
        while queue:
            current, mod = queue.popleft()
            for base_text in current.bases:
                base = None
                base_mod = None
                if mod is not None and base_text in mod.classes:
                    base = mod.classes[base_text]
                    base_mod = mod
                elif mod is not None and base_text in mod.imports:
                    dotted = mod.imports[base_text]
                    base = self.project.find_class(dotted)
                    if base is not None:
                        base_mod = self.project.modules_by_name.get(
                            dotted.rpartition(".")[0]
                        )
                if base is not None and base not in chain:
                    chain.append(base)
                    queue.append((base, base_mod))
        return chain

    def _resolve_symbol(self, dotted: str) -> tuple[str, ...]:
        """A dotted import target → function qualname(s), following a
        class to its ``__init__``."""
        func = self.project.find_function(dotted)
        if func is not None:
            return (dotted,)
        cls = self.project.find_class(dotted)
        if cls is not None and "__init__" in cls.methods:
            return (cls.methods["__init__"],)
        return ()

    def resolve(
        self, module, func: FunctionInfo, call: CallSite
    ) -> tuple[str, ...]:
        if call.name is not None:
            local = f"{module.modname}.{call.name}"
            if local in module.functions:
                return (local,)
            if call.name in module.classes:
                cls = module.classes[call.name]
                if "__init__" in cls.methods:
                    return (cls.methods["__init__"],)
                return ()
            dotted = module.imports.get(call.name)
            if dotted is not None:
                return self._resolve_symbol(dotted)
            return ()
        if call.attr is None:
            return ()
        if call.is_self_method or call.is_super:
            if func.cls is None:
                return ()
            cls = module.classes.get(func.cls)
            if cls is None:
                return ()
            chain = self.class_chain(cls)
            if call.is_super:
                chain = chain[1:]
            for candidate in chain:
                target = candidate.methods.get(call.attr)
                if target is not None:
                    return (target,)
            return ()
        if call.base is not None and call.text == (
            f"{call.base}.{call.attr}"
        ):
            dotted = module.imports.get(call.base)
            if dotted is not None:
                targets = self._resolve_symbol(f"{dotted}.{call.attr}")
                if targets:
                    return targets
        if call.attr in CHA_BLOCKLIST:
            return ()
        return self._methods_by_name.get(call.attr, ())

    # -- summaries --------------------------------------------------

    def can_reach(self, direct: Iterable[str]) -> frozenset[str]:
        """Every function that can reach a member of ``direct``
        through calls (members included) — reverse-edge worklist."""
        reached = set(direct)
        queue = deque(sorted(reached))
        while queue:
            target = queue.popleft()
            for caller in self._reverse.get(target, ()):
                if caller not in reached:
                    reached.add(caller)
                    queue.append(caller)
        return frozenset(reached)

    def forward_reachable(
        self,
        seeds: Iterable[tuple[str, str | None]],
        edge_ok: Callable[[CallSite], bool] | None = None,
    ) -> dict[str, tuple[str | None, int]]:
        """Forward BFS from ``(qualname, None)`` seeds.

        Returns ``{qualname: (parent_qualname, call_line)}`` parent
        pointers; seeds map to ``(None, 0)``.  Deterministic: seeds
        and adjacency are explored in sorted order.
        """
        parents: dict[str, tuple[str | None, int]] = {}
        queue: deque[str] = deque()
        for qualname, _ in sorted(seeds, key=lambda s: s[0]):
            if qualname not in parents:
                parents[qualname] = (None, 0)
                queue.append(qualname)
        while queue:
            current = queue.popleft()
            for call, targets in self.edges.get(current, ()):
                if edge_ok is not None and not edge_ok(call):
                    continue
                for target in targets:
                    if target not in parents:
                        parents[target] = (current, call.line)
                        queue.append(target)
        return parents

    def witness_chain(
        self,
        parents: dict[str, tuple[str | None, int]],
        qualname: str,
    ) -> tuple[str, ...]:
        """Render the BFS path to ``qualname`` as witness steps."""
        steps: list[str] = []
        current: str | None = qualname
        while current is not None:
            parent, line = parents[current]
            func = self.project.functions.get(current)
            where = (
                f"{func.path}:{func.line}" if func is not None else "?"
            )
            if parent is None:
                steps.append(f"{current} ({where})")
            else:
                steps.append(
                    f"{current} ({where}) called from line {line}"
                )
            current = parent
        return tuple(reversed(steps))

    def chain_between(
        self,
        start: str,
        targets: frozenset[str],
        first_call: CallSite | None = None,
    ) -> tuple[tuple[str, ...], str] | None:
        """Shortest call chain from ``start`` into ``targets``.

        Returns the rendered chain and the target qualname reached, or
        ``None``.  ``first_call`` restricts the first hop to one call
        site (used to scope a chain to a lock's held region).
        """
        if first_call is None:
            parents = self.forward_reachable([(start, None)])
        else:
            parents = {start: (None, 0)}
            queue: deque[str] = deque()
            for call, hop_targets in self.edges.get(start, ()):
                if call is not first_call:
                    continue
                for target in hop_targets:
                    if target not in parents:
                        parents[target] = (start, call.line)
                        queue.append(target)
            while queue:
                current = queue.popleft()
                for call, hop_targets in self.edges.get(current, ()):
                    for target in hop_targets:
                        if target not in parents:
                            parents[target] = (current, call.line)
                            queue.append(target)
        best: str | None = None
        for qualname in sorted(targets):
            if qualname in parents and qualname != start:
                best = qualname
                break
        if best is None:
            if start in targets:
                return self.witness_chain(parents, start), start
            return None
        return self.witness_chain(parents, best), best
