"""R1 and R3–R7: single-module AST rules, migrated byte-for-byte.

These are the pattern rules the retired ``tools/check_invariants.py``
walker enforced.  Messages, line anchors, and scoping are preserved
exactly — ``tests/test_check_invariants.py`` pins them through the
compatibility shim — only the housing changed: they now sit on the
lintkit registry next to the dataflow rules, and each finding carries
the enclosing-definition scope so baseline suppressions can target it.

R2 (budget-governed loops) also lived here historically; its dataflow
replacement — transitive budget-charge reachability — is in
:mod:`repro.lintkit.dataflow`.
"""

from __future__ import annotations

import ast

from repro.lintkit.findings import Finding
from repro.lintkit.model import ModuleModel
from repro.lintkit.rules import Rule, register

EXACT_KERNEL = ("repro/solver/core.py", "repro/linalg/")
"""Scope of R1 (float ban), repo-relative."""

KERNEL_MODULES = ("repro/solver/", "repro/linalg/")
"""Scope of R2 (budgeted loops) and R3 (popitem ban)."""

PARALLEL_MODULES = ("repro/parallel/",)
"""Scope of R4 (spawn-only start method) and R5 (deadlined waits)."""

STORE_MODULES = ("repro/store/",)
"""Scope of R6 (atomic writes only)."""

COMPONENT_MODULES = ("repro/components/",)
"""Scope of R7 (no whole-schema expansion)."""

STORE_WRITE_HELPER = "repro/store/atomic.py"
"""The one module allowed to open files for writing inside the store."""

_EXPANSION_CALLS = ("Expansion", "build_system")
_WRITE_MODE_CHARS = frozenset("wax+")
_WRITE_METHODS = ("write_text", "write_bytes")
_START_METHOD_CALLS = ("get_context", "set_start_method")
_WAIT_CALLS = ("result", "wait", "as_completed", "map")


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _finding(
    module: ModuleModel, line: int, rule: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=module.path,
        line=line,
        message=message,
        scope=module.scope_at(line),
    )


def check_floats(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(
            node.value, float
        ):
            findings.append(
                _finding(
                    module,
                    node.lineno,
                    "R1",
                    f"float literal {node.value!r} in the "
                    "exact-arithmetic kernel; use Fraction",
                )
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                findings.append(
                    _finding(
                        module,
                        node.lineno,
                        "R1",
                        "float() conversion in the exact-arithmetic "
                        "kernel; use Fraction",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"
            ):
                findings.append(
                    _finding(
                        module,
                        node.lineno,
                        "R1",
                        f"math.{func.attr}() in the exact-arithmetic "
                        "kernel; math operates on floats",
                    )
                )
    return findings


def check_popitem(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr == "popitem":
            findings.append(
                _finding(
                    module,
                    node.lineno,
                    "R3",
                    "popitem in a kernel module; kernels promise "
                    "deterministic iteration — pop an explicit key "
                    "instead",
                )
            )
    return findings


def check_start_method(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) not in _START_METHOD_CALLS:
            continue
        method: ast.expr | None = node.args[0] if node.args else None
        if method is None:
            for keyword in node.keywords:
                if keyword.arg == "method":
                    method = keyword.value
        if isinstance(method, ast.Constant) and method.value == "spawn":
            continue
        findings.append(
            _finding(
                module,
                node.lineno,
                "R4",
                "multiprocessing start method must be the literal "
                "'spawn'; fork copies ambient budgets, contextvars, "
                "and locks into workers",
            )
        )
    return findings


def check_undeadlined_waits(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _WAIT_CALLS:
            continue
        if any(keyword.arg == "timeout" for keyword in node.keywords):
            continue
        findings.append(
            _finding(
                module,
                node.lineno,
                "R5",
                f"{name}() without timeout= in repro.parallel; every "
                "pool wait must carry a deadline so a stuck worker "
                "cannot hang the parent",
            )
        )
    return findings


def _open_mode(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def check_nonatomic_writes(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is None:
                continue  # bare open(path) reads; reads are lock-free
            if isinstance(mode, ast.Constant) and isinstance(
                mode.value, str
            ):
                if not _WRITE_MODE_CHARS & set(mode.value):
                    continue
                detail = f"open(..., {mode.value!r})"
            else:
                detail = "open() with a computed mode"
            findings.append(
                _finding(
                    module,
                    node.lineno,
                    "R6",
                    f"{detail} in the store; all writes must go "
                    "through the atomic temp+fsync+rename helper "
                    "(repro.store.atomic.atomic_write_bytes)",
                )
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _WRITE_METHODS
        ):
            findings.append(
                _finding(
                    module,
                    node.lineno,
                    "R6",
                    f".{func.attr}() in the store; all writes must go "
                    "through the atomic temp+fsync+rename helper "
                    "(repro.store.atomic.atomic_write_bytes)",
                )
            )
    return findings


def check_whole_schema_expansion(module: ModuleModel) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _EXPANSION_CALLS:
            continue
        findings.append(
            _finding(
                module,
                node.lineno,
                "R7",
                f"{name}() in the component layer; expansion must "
                "happen per component through the session cache, "
                "never on the whole schema",
            )
        )
    return findings


register(
    Rule(
        rule_id="R1",
        title="exact arithmetic only",
        contract=(
            "no float literals, float() conversions, or math.* calls "
            "in the exact-arithmetic kernel"
        ),
        scope=EXACT_KERNEL,
        check_module=check_floats,
    )
)
register(
    Rule(
        rule_id="R3",
        title="deterministic iteration",
        contract="no popitem in kernel modules",
        scope=KERNEL_MODULES,
        check_module=check_popitem,
    )
)
register(
    Rule(
        rule_id="R4",
        title="spawn-only multiprocessing",
        contract=(
            "get_context()/set_start_method() must pass the literal "
            "'spawn'"
        ),
        scope=PARALLEL_MODULES,
        check_module=check_start_method,
    )
)
register(
    Rule(
        rule_id="R5",
        title="deadlined pool waits",
        contract=(
            "result()/wait()/as_completed()/map() must pass timeout= "
            "in repro.parallel"
        ),
        scope=PARALLEL_MODULES,
        check_module=check_undeadlined_waits,
    )
)
register(
    Rule(
        rule_id="R6",
        title="atomic writes only",
        contract=(
            "all store writes go through the temp+fsync+rename helper"
        ),
        scope=STORE_MODULES,
        exempt=(STORE_WRITE_HELPER,),
        check_module=check_nonatomic_writes,
    )
)
register(
    Rule(
        rule_id="R7",
        title="no whole-schema expansion",
        contract=(
            "the component layer never calls Expansion()/build_system()"
        ),
        scope=COMPONENT_MODULES,
        check_module=check_whole_schema_expansion,
    )
)
