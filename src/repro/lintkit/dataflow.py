"""R2 and R8–R12: dataflow rules powered by the call graph.

These are the detectors single-node AST matching cannot express.  Each
rule states the contract it protects, computes a may-analysis over the
:class:`~repro.lintkit.callgraph.CallGraph` summaries, and attaches a
witness chain — the call path or taint path that proves the finding —
to every diagnostic.

R2   budget-charge reachability: every unbounded loop in a kernel
     module (``while True:``, ``for`` over ``itertools.count`` /
     ``cycle`` / two-argument ``iter``) must reach a budget
     charge/check either in its own body or *transitively through the
     functions it calls* — replacing the historical same-scope name
     heuristic, which it keeps as a fast path.
R8   lock-discipline: fields of lock-owning serve-layer classes (and
     the session base classes they extend) must not be written on a
     path from a thread-pool entry point that holds no lock; mutate
     under the owning lock or through the ``bump()`` funnel.
R9   deadline discipline in ``repro/serve/`` + ``repro/session/``:
     blocking waits (``acquire``/``wait``/``join``/``result``) must
     carry a timeout, and a ``with <lock>:`` acquisition that holds
     the lock across unbounded reasoning work (anything that can
     reach a ``while True:`` kernel loop) must acquire with a
     deadline instead.
R10  event-loop hygiene: blocking calls (file I/O, ``subprocess``,
     ``time.sleep``, undeadlined waits) must not be reachable from an
     ``async def`` body except through the executor.
R11  determinism taint: iteration over a ``set``/``frozenset`` must
     not flow into ordered output (list/tuple/join accumulation)
     without an intervening ``sorted()`` in the solver, parallel, and
     component layers.  (``dict`` iteration is insertion-ordered in
     the kernels and therefore deterministic by construction.)
R12  spawn-payload pickle-safety: values flowing into the worker
     payload must be module-level picklable — no lambdas, no nested
     functions, no locks.
"""

from __future__ import annotations

import ast

from repro.lintkit.astrules import KERNEL_MODULES
from repro.lintkit.callgraph import CallGraph
from repro.lintkit.findings import Finding
from repro.lintkit.loader import Project
from repro.lintkit.model import (
    CallSite,
    FunctionInfo,
    ModuleModel,
    expr_text,
)
from repro.lintkit.rules import Rule, register

SERVE_MODULES = ("repro/serve/",)
SESSION_MODULES = ("repro/session/",)
DEADLINE_MODULES = SERVE_MODULES + SESSION_MODULES
DETERMINISM_MODULES = (
    "repro/solver/",
    "repro/parallel/",
    "repro/components/",
)
PARALLEL_MODULES = ("repro/parallel/",)

_WAIT_ATTRS = frozenset({"acquire", "wait", "join", "result"})

_OS_BLOCKING_ATTRS = frozenset(
    {
        "replace",
        "rename",
        "fsync",
        "remove",
        "unlink",
        "makedirs",
        "mkdir",
        "rmdir",
    }
)
_PATH_IO_ATTRS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

_SET_LAUNDER_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len"}
)
_ORDERED_CONSUMERS = frozenset({"list", "tuple"})
_UNPICKLABLE_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event"}
)


def _walk_scope(scope: ast.AST):
    """Pre-order child walk of one lexical scope, pruned at nested
    ``def`` boundaries — every function gets exactly one scan pass, so
    a snippet inside a function is never also reported by the
    enclosing scope's pass."""
    for child in ast.iter_child_nodes(scope):
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _walk_scope(child)


def _in_scope(path: str, scope: tuple[str, ...]) -> bool:
    return any(
        path == entry or path.startswith(entry) for entry in scope
    )


def _scoped_functions(
    project: Project, scope: tuple[str, ...]
) -> list[FunctionInfo]:
    selected = []
    for module in project.modules_in_scope(scope):
        for qualname in sorted(module.functions):
            selected.append(module.functions[qualname])
    return selected


# ----------------------------------------------------------------- R2


def check_budget_reachability(project: Project) -> list[Finding]:
    graph = project.callgraph
    budget_aware = graph.can_reach(
        sorted(
            qualname
            for qualname, func in project.functions.items()
            if func.has_budget_marker
        )
    )
    findings = []
    for func in _scoped_functions(project, KERNEL_MODULES):
        targets = graph.call_targets(func.qualname)
        for loop in func.loops:
            if loop.has_budget_marker:
                continue
            if any(
                target in budget_aware
                for call in loop.calls
                for target in targets.get(id(call), ())
            ):
                continue
            findings.append(
                Finding(
                    rule="R2",
                    path=func.path,
                    line=loop.line,
                    message=(
                        f"{loop.detail} without a budget charge/check "
                        "in its body; unbounded kernel loops must be "
                        "budget-governed"
                    ),
                    scope=func.label(),
                    witness=(
                        f"{func.qualname} ({func.path}:{loop.line}) "
                        f"{loop.detail}",
                        "no call in the loop body reaches a budget "
                        "charge/check transitively",
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------- R8


def _protected_classes(project: Project) -> frozenset[str]:
    """Lock-owning serve classes plus their in-project bases."""
    graph = project.callgraph
    protected: set[str] = set()
    for module in project.modules_in_scope(SERVE_MODULES):
        for cls in module.classes.values():
            chain = graph.class_chain(cls)
            if any(member.owns_lock for member in chain):
                protected.update(member.qualname for member in chain)
    return frozenset(protected)


def _serve_entry_points(project: Project) -> list[str]:
    seeds = []
    for func in _scoped_functions(project, SERVE_MODULES):
        if func.name == "<module>" or func.name.startswith("_"):
            continue
        seeds.append(func.qualname)
    return sorted(seeds)


def check_lock_discipline(project: Project) -> list[Finding]:
    graph = project.callgraph
    protected = _protected_classes(project)
    seeds = [(qualname, None) for qualname in _serve_entry_points(project)]
    unlocked = graph.forward_reachable(
        seeds, edge_ok=lambda call: not call.in_lock
    )
    findings = []
    for qualname in sorted(unlocked):
        func = project.functions.get(qualname)
        if func is None or func.cls is None:
            continue
        if func.name in ("__init__", "__post_init__"):
            continue
        cls_qualname = f"{func.modname}.{func.cls}"
        if cls_qualname not in protected:
            continue
        chain = graph.witness_chain(unlocked, qualname)
        for write in func.writes:
            if write.in_lock:
                continue
            findings.append(
                Finding(
                    rule="R8",
                    path=func.path,
                    line=write.line,
                    message=(
                        f"write to {write.target} is reachable from a "
                        "serving-layer entry point with no lock held; "
                        "shared state must be mutated under the owning "
                        "lock or through the stats bump() funnel"
                    ),
                    scope=func.label(),
                    witness=chain
                    + (f"unguarded write at {func.path}:{write.line}",),
                )
            )
    return findings


# ----------------------------------------------------------------- R9


def _deadlined_guard_targets(
    graph: CallGraph, func: FunctionInfo, call: CallSite
) -> bool:
    """Does a ``with <call>:`` context resolve to a helper that
    acquires its lock with a timeout (a deadlined guard)?"""
    targets = graph.call_targets(func.qualname).get(id(call), ())
    for target in targets:
        resolved = graph.project.functions.get(target)
        if (
            resolved is not None
            and resolved.is_contextmanager
            and resolved.has_deadlined_acquire()
        ):
            return True
    return False


def check_deadline_discipline(project: Project) -> list[Finding]:
    graph = project.callgraph
    long_running_direct = frozenset(
        qualname
        for qualname, func in project.functions.items()
        if func.has_while_true
    )
    long_running = graph.can_reach(sorted(long_running_direct))
    findings = []
    for func in _scoped_functions(project, DEADLINE_MODULES):
        targets = graph.call_targets(func.qualname)
        for call in func.calls:
            wait_name = call.attr if call.attr in _WAIT_ATTRS else None
            if wait_name is None and call.name in ("wait", "as_completed"):
                wait_name = call.name
            if wait_name is None or call.awaited or call.has_deadline:
                continue
            findings.append(
                Finding(
                    rule="R9",
                    path=func.path,
                    line=call.line,
                    message=(
                        f"{call.text}() without a deadline in the "
                        "serving layer; every blocking wait must carry "
                        "a timeout so a wedged peer degrades to an "
                        "error instead of a hang"
                    ),
                    scope=func.label(),
                    witness=(
                        f"{func.qualname} ({func.path}:{call.line}) "
                        f"calls {call.text}() with no timeout",
                    ),
                )
            )
        for site in func.with_locks:
            if site.callee is not None and _deadlined_guard_targets(
                graph, func, site.callee
            ):
                continue
            reaching_call = None
            for call in site.calls:
                if any(
                    target in long_running
                    for target in targets.get(id(call), ())
                ):
                    reaching_call = call
                    break
            if reaching_call is None and not site.has_while_true:
                continue
            witness: tuple[str, ...] = (
                f"{func.qualname} ({func.path}:{site.line}) "
                f"holds 'with {site.text}:'",
            )
            if reaching_call is not None:
                chained = graph.chain_between(
                    func.qualname,
                    long_running_direct,
                    first_call=reaching_call,
                )
                if chained is not None:
                    chain, reached = chained
                    witness = witness + chain[1:]
                    target_func = project.functions[reached]
                    witness = witness + (
                        "unbounded loop at "
                        f"{target_func.path}:"
                        f"{target_func.loops[0].line}"
                        if target_func.loops
                        else f"unbounded loop in {reached}",
                    )
            else:
                witness = witness + (
                    "unbounded loop directly inside the held region",
                )
            findings.append(
                Finding(
                    rule="R9",
                    path=func.path,
                    line=site.line,
                    message=(
                        f"'with {site.text}:' acquires a lock with no "
                        "deadline and holds it across unbounded "
                        "reasoning work; acquire with a bounded "
                        "timeout so a wedged build degrades to an "
                        "error instead of a pile-up"
                    ),
                    scope=func.label(),
                    witness=witness,
                )
            )
    return findings


# ---------------------------------------------------------------- R10


def _blocking_primitive(
    module: ModuleModel, call: CallSite
) -> str | None:
    if call.awaited:
        return None
    if call.name == "open":
        return "open()"
    if call.base == "os" and call.attr in _OS_BLOCKING_ATTRS:
        return f"os.{call.attr}()"
    if call.attr in _PATH_IO_ATTRS:
        return f".{call.attr}()"
    if call.base == "time" and call.attr == "sleep":
        return "time.sleep()"
    if (
        call.name is not None
        and module.imports.get(call.name, "").startswith("time.")
        and call.name == "sleep"
    ):
        return "time.sleep()"
    if call.base == "subprocess":
        return f"subprocess.{call.attr}()"
    if call.name is not None and module.imports.get(
        call.name, ""
    ).startswith("subprocess."):
        return f"subprocess {call.name}()"
    if call.attr in _WAIT_ATTRS and not call.has_deadline:
        # Only undeadlined waits: a deadline implies a bounded stall,
        # and requiring it also rules out ``str.join(iterable)``.
        return f".{call.attr}()"
    return None


def check_async_blocking(project: Project) -> list[Finding]:
    graph = project.callgraph
    roots = sorted(
        func.qualname
        for func in _scoped_functions(project, SERVE_MODULES)
        if func.is_async
    )
    findings = []
    reported: set[tuple[str, int]] = set()
    for root in roots:
        parents: dict[str, tuple[str | None, int]] = {root: (None, 0)}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for call, targets in graph.edges.get(current, ()):
                for target in targets:
                    if target in parents:
                        continue
                    resolved = project.functions.get(target)
                    if call.awaited and (
                        resolved is None or not resolved.is_async
                    ):
                        continue
                    parents[target] = (current, call.line)
                    queue.append(target)
        for qualname in sorted(parents):
            func = project.functions.get(qualname)
            if func is None:
                continue
            module = project.modules_by_name[func.modname]
            for call in func.calls:
                primitive = _blocking_primitive(module, call)
                if primitive is None:
                    continue
                key = (func.path, call.line)
                if key in reported:
                    continue
                reported.add(key)
                chain = graph.witness_chain(parents, qualname)
                root_func = project.functions[root]
                findings.append(
                    Finding(
                        rule="R10",
                        path=func.path,
                        line=call.line,
                        message=(
                            f"blocking call {primitive} is reachable "
                            f"from async {root_func.label()}(); the "
                            "event loop must never block — move it "
                            "into the executor"
                        ),
                        scope=func.label(),
                        witness=chain
                        + (
                            f"blocking {primitive} at "
                            f"{func.path}:{call.line}",
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------- R11


class _SetTaintVisitor(ast.NodeVisitor):
    """Per-module, per-scope local taint pass for R11."""

    def __init__(self, module: ModuleModel) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self.set_names: dict[str, int] = {}
        self.nonset_names: set[str] = set()
        self.parents: dict[int, ast.AST] = {}

    def run(self) -> list[Finding]:
        for node in ast.walk(self.module.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
        self._scan_scope(self.module.tree)
        for node in ast.walk(self.module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_scope(node)
        return self.findings

    def _scan_scope(self, scope: ast.AST) -> None:
        self.set_names = {}
        self.nonset_names = set()
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                self._track_assign(node)
        for node in _walk_scope(scope):
            self._check_node(node)

    def _track_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if self._is_set_expr(node.value):
                self.set_names.setdefault(target.id, node.lineno)
            else:
                self.nonset_names.add(target.id)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.Name):
            return (
                node.id in self.set_names
                and node.id not in self.nonset_names
            )
        return False

    def _set_source(self, node: ast.expr) -> tuple[str, int] | None:
        if not self._is_set_expr(node):
            return None
        if isinstance(node, ast.Name):
            return (node.id, self.set_names[node.id])
        return (expr_text(node), node.lineno)

    def _finding(
        self,
        line: int,
        source: tuple[str, int],
        sink: str,
        sink_line: int,
    ) -> None:
        name, source_line = source
        self.findings.append(
            Finding(
                rule="R11",
                path=self.module.path,
                line=line,
                message=(
                    "iteration over an unordered set flows into "
                    f"ordered output ({sink}) without sorted(); "
                    "determinism requires a canonical order at the "
                    "boundary"
                ),
                scope=self.module.scope_at(line),
                witness=(
                    f"set {name} constructed at "
                    f"{self.module.path}:{source_line}",
                    f"iterated at {self.module.path}:{line}",
                    f"ordered sink {sink} at "
                    f"{self.module.path}:{sink_line}",
                ),
            )
        )

    def _check_node(self, node: ast.AST) -> None:
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._check_comprehension(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_for(node)

    def _consumer(self, node: ast.AST) -> str | None:
        """The ordering-sensitive consumer wrapping ``node``."""
        parent = self.parents.get(id(node))
        if not isinstance(parent, ast.Call):
            return None
        func = parent.func
        if isinstance(func, ast.Name):
            if func.id in _SET_LAUNDER_CALLS:
                return None
            if func.id in _ORDERED_CONSUMERS:
                return f"{func.id}(...)"
            return None
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return ".join(...)"
        return None

    def _check_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp
    ) -> None:
        source = None
        for comp in node.generators:
            source = self._set_source(comp.iter)
            if source is not None:
                break
        if source is None:
            return
        if isinstance(node, ast.ListComp):
            parent = self.parents.get(id(node))
            if isinstance(parent, ast.Call) and isinstance(
                parent.func, ast.Name
            ):
                if parent.func.id in _SET_LAUNDER_CALLS:
                    return
            self._finding(
                node.lineno, source, "list comprehension", node.lineno
            )
            return
        consumer = self._consumer(node)
        if consumer is not None:
            self._finding(node.lineno, source, consumer, node.lineno)

    def _check_for(self, node: ast.For | ast.AsyncFor) -> None:
        source = self._set_source(node.iter)
        if source is None:
            return
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in ("append", "extend")
            ):
                self._finding(
                    node.lineno,
                    source,
                    f".{child.func.attr}(...)",
                    child.lineno,
                )
                return
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                self._finding(
                    node.lineno, source, "yield", child.lineno
                )
                return


def check_determinism_taint(project: Project) -> list[Finding]:
    findings = []
    for module in project.modules_in_scope(DETERMINISM_MODULES):
        findings.extend(_SetTaintVisitor(module).run())
    return findings


# ---------------------------------------------------------------- R12


def _nested_def_names(scope: ast.AST) -> frozenset[str]:
    names = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not scope:
                names.add(node.name)
    return frozenset(names)


def _unpicklable(
    node: ast.expr, nested: frozenset[str]
) -> str | None:
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            return "a lambda"
        if isinstance(child, ast.Name) and child.id in nested:
            return f"nested function {child.id}()"
        if isinstance(child, ast.Call):
            func = child.func
            factory = None
            if isinstance(func, ast.Name):
                factory = func.id
            elif isinstance(func, ast.Attribute):
                factory = func.attr
            if factory in _UNPICKLABLE_FACTORIES:
                return f"{factory}() (a synchronization primitive)"
    return None


class _PayloadVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleModel) -> None:
        self.module = module
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        scopes: list[ast.AST] = [self.module.tree]
        scopes.extend(
            node
            for node in ast.walk(self.module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            self._scan_scope(scope)
        return self.findings

    def _scan_scope(self, scope: ast.AST) -> None:
        nested = _nested_def_names(scope)
        dict_bindings: dict[str, ast.Dict] = {}
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Dict
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        dict_bindings[target.id] = node.value
        for node in _walk_scope(scope):
            if isinstance(node, ast.Call):
                self._check_call(node, nested, dict_bindings)

    def _payload_exprs(
        self, node: ast.Call, dict_bindings: dict[str, ast.Dict]
    ) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for keyword in node.keywords:
            if keyword.arg == "payload":
                exprs.append(keyword.value)
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "WorkerPool" and node.args:
            exprs.append(node.args[0])
        resolved: list[ast.expr] = []
        for expr in exprs:
            if isinstance(expr, ast.Name) and expr.id in dict_bindings:
                resolved.append(dict_bindings[expr.id])
            else:
                resolved.append(expr)
        return resolved

    def _check_call(
        self,
        node: ast.Call,
        nested: frozenset[str],
        dict_bindings: dict[str, ast.Dict],
    ) -> None:
        for expr in self._payload_exprs(node, dict_bindings):
            values: list[ast.expr]
            if isinstance(expr, ast.Dict):
                values = [v for v in expr.values if v is not None]
            else:
                values = [expr]
            for value in values:
                reason = _unpicklable(value, nested)
                if reason is None:
                    continue
                self.findings.append(
                    Finding(
                        rule="R12",
                        path=self.module.path,
                        line=node.lineno,
                        message=(
                            "non-picklable value flows into the spawn "
                            f"worker payload: {reason}; spawn workers "
                            "rebuild state from module-level callables "
                            "and plain data"
                        ),
                        scope=self.module.scope_at(node.lineno),
                        witness=(
                            f"payload constructed at "
                            f"{self.module.path}:{node.lineno}",
                            f"offending value at "
                            f"{self.module.path}:{value.lineno}: "
                            f"{reason}",
                        ),
                    )
                )


def check_pickle_safety(project: Project) -> list[Finding]:
    findings = []
    for module in project.modules_in_scope(PARALLEL_MODULES):
        findings.extend(_PayloadVisitor(module).run())
    return findings


# --------------------------------------------------------- registry


register(
    Rule(
        rule_id="R2",
        title="budget-charge reachability",
        contract=(
            "every unbounded loop in a kernel module reaches a budget "
            "charge/check, transitively through calls"
        ),
        scope=KERNEL_MODULES,
        check_project=check_budget_reachability,
    )
)
register(
    Rule(
        rule_id="R8",
        title="lock-disciplined shared state",
        contract=(
            "serve-layer shared fields are written under the owning "
            "lock or through bump()"
        ),
        scope=SERVE_MODULES + SESSION_MODULES,
        check_project=check_lock_discipline,
    )
)
register(
    Rule(
        rule_id="R9",
        title="deadlined waits and lock holds",
        contract=(
            "serving-layer waits carry timeouts; locks held across "
            "unbounded work are acquired with a deadline"
        ),
        scope=DEADLINE_MODULES,
        check_project=check_deadline_discipline,
    )
)
register(
    Rule(
        rule_id="R10",
        title="non-blocking event loop",
        contract=(
            "no blocking call is reachable from an async def outside "
            "the executor"
        ),
        scope=SERVE_MODULES,
        check_project=check_async_blocking,
    )
)
register(
    Rule(
        rule_id="R11",
        title="determinism taint",
        contract=(
            "set iteration never feeds ordered output without "
            "sorted()"
        ),
        scope=DETERMINISM_MODULES,
        check_project=check_determinism_taint,
    )
)
register(
    Rule(
        rule_id="R12",
        title="spawn-payload pickle-safety",
        contract=(
            "worker payloads carry only module-level picklable values"
        ),
        scope=PARALLEL_MODULES,
        check_project=check_pickle_safety,
    )
)
