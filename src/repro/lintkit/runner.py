"""Repo lint runner: load, analyze, gate against the baseline.

:func:`lint_repo` is the engine behind ``repro lint --repo``: it loads
every ``repro`` source module, runs the full rule registry, partitions
findings against the checked-in baseline, and returns a
:class:`RepoLintReport` with stable human and JSON renderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lintkit.baseline import Baseline, Suppression
from repro.lintkit.findings import Finding
from repro.lintkit.loader import (
    Project,
    default_src_root,
    load_project,
)
from repro.lintkit.rules import run_rules

REPORT_VERSION = 1


def default_baseline_path(src_root: Path | None = None) -> Path:
    root = src_root if src_root is not None else default_src_root()
    return root.parent / "tools" / "lint_baseline.json"


@dataclass
class RepoLintReport:
    """One ``repro lint --repo`` run."""

    files_checked: int
    new_findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_suppressions: list[Suppression] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.new_findings

    def as_dict(self) -> dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "files_checked": self.files_checked,
            "summary": {
                "new": len(self.new_findings),
                "baselined": len(self.baselined),
                "stale_suppressions": len(self.stale_suppressions),
            },
            "new_findings": [f.as_dict() for f in self.new_findings],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_suppressions": [
                s.as_dict() for s in self.stale_suppressions
            ],
        }

    def render_human(self) -> list[str]:
        lines: list[str] = []
        for finding in self.new_findings:
            lines.append(finding.render())
            lines.extend(finding.render_witness())
        for suppression in self.stale_suppressions:
            lines.append(
                "stale suppression: "
                f"{suppression.rule} {suppression.path} "
                f"[{suppression.scope}] no longer matches any finding"
            )
        lines.append(
            f"repo lint: {self.files_checked} file(s), "
            f"{len(self.new_findings)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.stale_suppressions)} stale suppression(s)"
        )
        return lines


def lint_repo(
    src_root: Path | None = None,
    baseline_path: Path | None = None,
    project: Project | None = None,
) -> RepoLintReport:
    """Lint the repo's own source against every registered rule."""
    if project is None:
        project = load_project(src_root)
    baseline = Baseline.load(
        baseline_path
        if baseline_path is not None
        else default_baseline_path(src_root)
    )
    findings = run_rules(project)
    new, baselined, stale = baseline.split(findings)
    return RepoLintReport(
        files_checked=len(project.modules),
        new_findings=new,
        baselined=baselined,
        stale_suppressions=stale,
    )
