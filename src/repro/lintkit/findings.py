"""Diagnostics emitted by the repo contract checker.

A :class:`Finding` is one contract breach: a stable rule id (``R1`` …
``R12``, see DESIGN §14 for the catalogue), the repo-relative file and
line, the enclosing definition (``scope``), a human-readable message,
and — for the dataflow rules — a *witness chain*: the call path or
taint path that proves the finding, rendered innermost-first so a
reader can replay the derivation.

Renderings are stable by construction: :meth:`Finding.render` is the
classic ``path:line: RULE message`` single line (byte-compatible with
the retired ``tools/check_invariants.py`` walker), :meth:`as_dict` is
the JSON encoding used by ``repro lint --repo --json``, and
:func:`sort_findings` fixes one canonical order so output never
depends on module discovery order.
"""

from __future__ import annotations

from dataclasses import dataclass

MODULE_SCOPE = "<module>"
"""Scope name for findings outside any function or method body."""


@dataclass(frozen=True)
class Finding:
    """One contract breach, formatted ``file:line: RULE message``."""

    rule: str
    path: str
    line: int
    message: str
    scope: str = MODULE_SCOPE
    witness: tuple[str, ...] = ()

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def render_witness(self) -> list[str]:
        """The witness chain as indented continuation lines."""
        return [f"    {step}" for step in self.witness]

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "message": self.message,
            "witness": list(self.witness),
        }

    def suppression_key(self) -> tuple[str, str, str]:
        """Key a baseline suppression matches on.

        Line numbers are deliberately absent: a suppression survives
        unrelated edits to the file, and goes *stale* (reported by the
        runner) only when the finding itself disappears.
        """
        return (self.rule, self.path, self.scope)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical order: by path, line, rule, then message."""
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )
